//! End-to-end test of `biorank serve`: a real TCP server on an
//! ephemeral port, exercised through the line protocol by real
//! clients — including the Table 1 acceptance query
//! (`protein_functions("GALT")` → 15 ranked answers) and its cached
//! repeat.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    Client, Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions, Server, ServerHandle,
    Trials,
};

fn start_server(workers: usize) -> ServerHandle {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServeOptions {
            workers,
            ..Default::default()
        },
    )
    .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

#[test]
fn galt_answers_fifteen_ranked_functions_and_caches_repeats() {
    let handle = start_server(4);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let spec = RankerSpec {
        method: Method::Reliability,
        trials: Trials::Fixed(1_000),
        seed: 42,
        parallel: false,
        estimator: None,
    };
    let cold = client
        .protein_functions("GALT", spec)
        .expect("GALT query succeeds");
    assert_eq!(cold.total_answers, 15, "Table 1: GALT → 15 functions");
    assert_eq!(cold.answers.len(), 15);
    assert!(!cold.cached_graph && !cold.cached_scores);
    assert!(cold.answers.iter().all(|a| a.key.starts_with("GO:")));
    // Rank intervals are 1-based, contiguous, and ordered best-first.
    assert_eq!(cold.answers[0].rank_lo, 1);
    for w in cold.answers.windows(2) {
        assert!(w[0].score >= w[1].score);
        assert!(w[0].rank_lo <= w[1].rank_lo);
    }

    // The identical query again: served from the result cache, with
    // exactly the same ranking.
    let warm = client.protein_functions("GALT", spec).expect("warm query");
    assert!(warm.cached_graph && warm.cached_scores);
    assert_eq!(warm.answers, cold.answers);

    handle.shutdown();
}

#[test]
fn pipelined_batches_and_separate_connections_agree() {
    let handle = start_server(4);
    let spec = RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Fixed(300),
        seed: 9,
        parallel: false,
        estimator: None,
    };
    let reqs: Vec<QueryRequest> = ["GALT", "CFTR", "EYA1", "GALT"]
        .iter()
        .map(|p| QueryRequest::protein_functions(p, spec))
        .collect();

    let mut a = Client::connect(handle.addr()).expect("client a");
    let batch_a: Vec<_> = a
        .query_batch(&reqs)
        .expect("batch a")
        .into_iter()
        .map(|r| r.expect("query ok").answers)
        .collect();

    let mut b = Client::connect(handle.addr()).expect("client b");
    let batch_b: Vec<_> = reqs
        .iter()
        .map(|r| b.query(r).expect("query ok").answers)
        .collect();

    // Same content ⇒ same rankings, regardless of pipelining, cache
    // state, or which worker served what.
    assert_eq!(batch_a, batch_b);
    // The in-batch repeat of GALT is identical to its first answer.
    assert_eq!(batch_a[0], batch_a[3]);

    handle.shutdown();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = start_server(2);
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let write = |line: &str| {
        (&stream)
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
    };
    let mut read = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line
    };

    // Malformed JSON.
    write("this is not json");
    assert!(read().contains("\"ok\":false"));

    // Valid JSON, bad request shape — id is still echoed.
    write("{\"id\":9,\"nope\":true}");
    let line = read();
    assert!(line.contains("\"ok\":false") && line.contains("\"id\":9"));

    // Unknown protein: a domain error, not a transport error.
    write(
        "{\"id\":10,\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
         \"value\":\"NOT_A_PROTEIN\",\"outputs\":[\"AmiGO\"],\"method\":\"inedge\"}",
    );
    let line = read();
    assert!(line.contains("\"ok\":false") && line.contains("NOT_A_PROTEIN"));

    // The connection still works for a good request afterwards.
    write(
        "{\"id\":11,\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
         \"value\":\"GALT\",\"outputs\":[\"AmiGO\"],\"method\":\"inedge\"}",
    );
    let line = read();
    assert!(
        line.contains("\"ok\":true") && line.contains("\"total\":15"),
        "{line}"
    );

    handle.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let handle = start_server(8);
    let addr = handle.addr();
    let expected: Vec<(&str, usize)> = vec![("GALT", 15), ("ABCC8", 97), ("CFTR", 90)];
    std::thread::scope(|s| {
        for t in 0..6usize {
            let expected = expected.clone();
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (protein, count) in expected {
                    let spec = RankerSpec {
                        method: Method::InEdge,
                        trials: Trials::Fixed(1),
                        seed: t as u64, // deterministic method: seed irrelevant
                        parallel: false,
                        estimator: None,
                    };
                    let resp = client
                        .protein_functions(protein, spec)
                        .expect("query succeeds");
                    assert_eq!(resp.total_answers, count, "{protein}");
                }
            });
        }
    });
    handle.shutdown();
}
