//! Regression tests pinning the paper's headline claims on the default
//! world. If a refactor or retune breaks the reproduced *shape* of the
//! evaluation (Figs. 5–8), these tests fail.
//!
//! Thresholds are deliberately loose — they encode orderings and coarse
//! gaps, not decimals.

use biorank::eval::{evaluate, random_baseline, Scenario};
use biorank::prelude::*;

fn scenario_aps(scenario: Scenario) -> (Vec<(String, f64)>, f64) {
    let world = World::generate(WorldParams::default());
    let cases = build_cases(&world, scenario).expect("cases build");
    let rankers = biorank::rank::paper_rankers(10_000, 0xB10_C0DE);
    let results = evaluate(&rankers, &cases).expect("evaluation succeeds");
    let aps = results
        .iter()
        .map(|m| (m.method.clone(), m.summary.mean))
        .collect();
    (aps, random_baseline(&cases).summary.mean)
}

fn ap(aps: &[(String, f64)], name: &str) -> f64 {
    aps.iter()
        .find(|(m, _)| m.starts_with(name))
        .unwrap_or_else(|| panic!("method {name} missing"))
        .1
}

#[test]
fn scenario1_deterministic_methods_hold_their_own() {
    // Paper Fig. 5a: InEdge/PathCount perform slightly better than
    // reliability/propagation on well-known functions; diffusion worst;
    // everything far above random.
    let (aps, random) = scenario_aps(Scenario::WellKnown);
    let (rel, prop, diff) = (ap(&aps, "Rel"), ap(&aps, "Prop"), ap(&aps, "Diff"));
    let (inedge, pathc) = (ap(&aps, "InEdge"), ap(&aps, "PathC"));
    assert!(inedge >= rel - 0.03, "InEdge {inedge} vs Rel {rel}");
    assert!(pathc >= rel - 0.05, "PathC {pathc} vs Rel {rel}");
    assert!(
        diff < rel - 0.05,
        "Diff {diff} must be clearly worst vs Rel {rel}"
    );
    for (name, v) in [
        ("Rel", rel),
        ("Prop", prop),
        ("InEdge", inedge),
        ("PathC", pathc),
    ] {
        assert!(v > 0.8, "{name} = {v} too low for scenario 1");
        assert!(v > random + 0.3, "{name} barely beats random");
    }
    assert!(
        (random - 0.42).abs() < 0.03,
        "random baseline {random} (paper: 0.42)"
    );
}

#[test]
fn scenario2_probabilistic_methods_win() {
    // Paper Fig. 5b: the probabilistic methods clearly beat the
    // deterministic ones on less-known functions; diffusion leads;
    // InEdge/PathCount do not significantly beat random.
    let (aps, random) = scenario_aps(Scenario::LessKnown);
    let (rel, prop, diff) = (ap(&aps, "Rel"), ap(&aps, "Prop"), ap(&aps, "Diff"));
    let (inedge, pathc) = (ap(&aps, "InEdge"), ap(&aps, "PathC"));
    assert!(rel > inedge + 0.1, "Rel {rel} must beat InEdge {inedge}");
    assert!(prop > pathc + 0.1, "Prop {prop} must beat PathC {pathc}");
    assert!(
        diff > rel,
        "Diff {diff} leads scenario 2 (paper: 0.62 vs 0.46)"
    );
    assert!(inedge < random + 0.1, "InEdge {inedge} ≈ random {random}");
    assert!(pathc < random + 0.1, "PathC {pathc} ≈ random {random}");
}

#[test]
fn scenario3_reliability_and_propagation_best() {
    // Paper Fig. 5c: reliability and propagation perform best on
    // hypothetical proteins.
    let (aps, random) = scenario_aps(Scenario::Hypothetical);
    let (rel, prop) = (ap(&aps, "Rel"), ap(&aps, "Prop"));
    let (inedge, pathc) = (ap(&aps, "InEdge"), ap(&aps, "PathC"));
    assert!(rel > inedge + 0.1, "Rel {rel} vs InEdge {inedge}");
    assert!(prop > pathc + 0.1, "Prop {prop} vs PathC {pathc}");
    assert!(rel >= prop - 0.02, "Rel {rel} at least matches Prop {prop}");
    assert!(inedge > random, "counting still beats random here");
    assert!(
        (random - 0.29).abs() < 0.03,
        "random baseline {random} (paper: 0.29)"
    );
}

#[test]
fn reductions_shrink_query_graphs_substantially() {
    // Paper §4: reductions remove ~78% of nodes+edges on the 20
    // scenario-1 graphs. The paper's figure includes dead-branch
    // deletion, which our mediator already performs during integration;
    // we require ≥25% from the rewrite rules alone and ≥40% combined.
    let world = World::generate(WorldParams::default());
    let cases = build_cases(&world, Scenario::WellKnown).expect("cases build");
    let mut rule_ratios = Vec::new();
    let mut combined_ratios = Vec::new();
    for case in &cases {
        let mut q = case.result.query.clone();
        let src = q.source();
        let answers = q.answers().to_vec();
        let stats = biorank::graph::reduction::reduce(q.graph_mut(), src, &answers);
        rule_ratios.push(stats.shrink_ratio());
        let raw = (case.result.stats.nodes_raw + case.result.stats.edges_raw) as f64;
        combined_ratios.push(1.0 - (stats.nodes_after + stats.edges_after) as f64 / raw);
    }
    let rule_avg = rule_ratios.iter().sum::<f64>() / rule_ratios.len() as f64;
    let combined_avg = combined_ratios.iter().sum::<f64>() / combined_ratios.len() as f64;
    assert!(
        rule_avg > 0.25,
        "rule-only shrink ratio {rule_avg} too small"
    );
    assert!(
        combined_avg > 0.4,
        "combined shrink ratio {combined_avg} too small"
    );
}

#[test]
fn monte_carlo_with_1000_trials_is_already_accurate() {
    // Paper Fig. 7: "already 1000 trials achieve high average accuracy".
    let world = World::generate(WorldParams::default());
    let cases = build_cases(&world, Scenario::WellKnown).expect("cases build");
    let thousand = evaluate(
        &[Box::new(ReducedMc::new(1_000, 5)) as Box<dyn Ranker + Send + Sync>],
        &cases,
    )
    .expect("1k evaluation")[0]
        .summary
        .mean;
    let exact = evaluate(
        &[Box::new(ClosedReliability::default()) as Box<dyn Ranker + Send + Sync>],
        &cases,
    )
    .expect("exact evaluation")[0]
        .summary
        .mean;
    assert!(
        (thousand - exact).abs() < 0.03,
        "1000-trial AP {thousand} vs exact AP {exact}"
    );
}

#[test]
fn theorem_31_bound_matches_paper_example() {
    let n = biorank::rank::bounds::trials_needed(0.02, 0.05).expect("valid");
    assert!(
        n <= 10_000,
        "paper: 10,000 trials should be enough (bound {n})"
    );
    assert!(n >= 5_000, "bound {n} suspiciously small");
}

#[test]
fn fig1_schema_reducibility_claims() {
    use biorank::schema::{check_query_reducible, check_reducible};
    let b = biorank::schema::biorank_schema();
    assert!(
        !check_reducible(&b.schema, b.query, &b.hints).is_reducible(),
        "whole Fig. 1 schema must NOT be reducible (final [n:m])"
    );
    assert!(
        check_query_reducible(&b.schema, b.query, b.amigo, &b.hints).is_reducible(),
        "per-answer queries must be reducible"
    );
}
