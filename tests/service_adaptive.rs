//! Adaptive trials end to end over the wire: an `mc` query carrying an
//! adaptive policy must certify with measurably fewer trials than the
//! fixed default, echo its certificate (including on cache hits), keep
//! distinct result-cache keys from fixed-trial requests, and honor a
//! server-level adaptive default for requests that omit `trials`.
//! `certify_top` requests additionally exercise the prefix-reuse cache
//! rule: one entry per (query, spec), hit iff the stored entry
//! certifies at least the requested k.

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::rank::{bounds, CertificateMode};
use biorank::service::{
    AdaptiveConfig, Client, Estimator, Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions,
    Server, ServerHandle, Trials,
};

fn start_server(opts: ServeOptions) -> ServerHandle {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind("127.0.0.1:0", engine, opts).expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

fn spec(trials: Trials, estimator: Option<Estimator>) -> RankerSpec {
    RankerSpec {
        method: Method::TraversalMc,
        trials,
        seed: 11,
        parallel: false,
        estimator,
    }
}

#[test]
fn adaptive_query_certifies_under_the_fixed_budget_and_echoes_certificate() {
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let adaptive = Trials::Adaptive(AdaptiveConfig::default());
    for estimator in [Some(Estimator::Word), Some(Estimator::Traversal)] {
        let response = client
            .protein_functions("GALT", spec(adaptive, estimator))
            .expect("adaptive query");
        let cert = response
            .certificate
            .expect("adaptive responses carry a certificate");
        assert!(cert.certified, "{cert:?}");
        assert!(
            cert.trials_used < RankerSpec::DEFAULT_TRIALS,
            "adaptive must beat the fixed 10k baseline, used {}",
            cert.trials_used
        );
        // The echoed ε is exactly the Theorem 3.1 inversion of the
        // trials spent — the bound and the certificate agree.
        let expect = bounds::resolvable_epsilon(u64::from(cert.trials_used), 0.05).unwrap();
        assert_eq!(cert.epsilon.to_bits(), expect.to_bits());

        // A repeat is a cache hit and echoes the SAME certificate.
        let warm = client
            .protein_functions("GALT", spec(adaptive, estimator))
            .expect("warm adaptive query");
        assert!(warm.cached_scores);
        assert_eq!(warm.certificate, response.certificate);
        assert_eq!(warm.answers, response.answers);
    }
    handle.shutdown();
}

#[test]
fn adaptive_and_fixed_requests_never_share_cache_entries() {
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let adaptive = Trials::Adaptive(AdaptiveConfig::default());
    let word = Some(Estimator::Word);
    let a = client
        .protein_functions("CFTR", spec(adaptive, word))
        .expect("adaptive");
    assert!(!a.cached_scores);

    // Same query, fixed trials: graph layer shared, ranking recomputed
    // — an adaptive (early-stopped) ranking must never answer a
    // fixed-trial request.
    let f = client
        .protein_functions("CFTR", spec(Trials::Fixed(10_000), word))
        .expect("fixed");
    assert!(f.cached_graph, "integration is shared");
    assert!(!f.cached_scores, "no adaptive→fixed cache hits");
    assert_eq!(f.certificate, None, "fixed runs carry no certificate");

    // A different (ε, δ) policy is a different schedule: own entry.
    let tighter = Trials::Adaptive(AdaptiveConfig {
        epsilon: 0.01,
        ..AdaptiveConfig::default()
    });
    let t = client
        .protein_functions("CFTR", spec(tighter, word))
        .expect("tighter adaptive");
    assert!(!t.cached_scores, "no cross-policy cache hits");

    handle.shutdown();
}

#[test]
fn certify_top_prefix_reuse_across_k_values() {
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let word = spec(
        Trials::Adaptive(AdaptiveConfig::default()),
        Some(Estimator::Word),
    );
    let topk = |k: usize| QueryRequest::protein_functions("GALT", word).certified_top(k);

    // Cold top-5: certifies only the prefix + boundary, tagged as such.
    let k5 = client.query(&topk(5)).expect("top-5 query");
    assert!(!k5.cached_scores);
    assert_eq!(k5.answers.len(), 5, "top shapes the response");
    let cert5 = k5.certificate.expect("certificate");
    assert!(cert5.certified);
    assert_eq!(cert5.mode, CertificateMode::TopK(5));

    // A shallower prefix is a hit off the stored top-5 entry, echoing
    // the *stored* certificate.
    let k3 = client.query(&topk(3)).expect("top-3 query");
    assert!(k3.cached_scores, "top-5-certified entry serves k' = 3");
    assert_eq!(k3.answers.len(), 3);
    assert_eq!(k3.certificate, Some(cert5));
    assert_eq!(k3.answers, k5.answers[..3].to_vec());

    // A deeper prefix recomputes and REPLACES the entry...
    let k8 = client.query(&topk(8)).expect("top-8 query");
    assert!(!k8.cached_scores, "k' = 8 exceeds the certified 5");
    let cert8 = k8.certificate.expect("certificate");
    assert_eq!(cert8.mode, CertificateMode::TopK(8));
    assert!(
        cert8.trials_used >= cert5.trials_used,
        "more gaps can only demand more trials: {} < {}",
        cert8.trials_used,
        cert5.trials_used
    );
    // ...so the old k now hits the replacement.
    let k5_again = client.query(&topk(5)).expect("top-5 again");
    assert!(k5_again.cached_scores);
    assert_eq!(k5_again.certificate, Some(cert8));

    // Full certification does not accept any top-k entry: recompute,
    // replace — and from then on every prefix is served from it.
    let full = client
        .protein_functions("GALT", word)
        .expect("full adaptive query");
    assert!(!full.cached_scores, "a top-k entry never answers full");
    let cert_full = full.certificate.expect("certificate");
    assert!(cert_full.certified);
    assert_eq!(cert_full.mode, CertificateMode::Full);
    assert!(
        cert_full.trials_used >= cert8.trials_used,
        "full certification resolves a superset of gaps"
    );
    let k3_off_full = client.query(&topk(3)).expect("top-3 off full");
    assert!(
        k3_off_full.cached_scores,
        "full certification serves any k'"
    );
    assert_eq!(k3_off_full.certificate, Some(cert_full));

    // The top-k prefix the cheap run certified is the same answer
    // *set* the fully certified ranking leads with (scores differ —
    // the runs stopped at different trial counts — and internal order
    // below the ε floor is not part of either claim).
    let key_set = |answers: &[biorank::service::RankedAnswer]| {
        let mut keys: Vec<String> = answers.iter().map(|a| a.key.clone()).collect();
        keys.sort_unstable();
        keys
    };
    assert_eq!(key_set(&k5.answers), key_set(&full.answers[..5]));

    handle.shutdown();
}

#[test]
fn top_k_certification_spends_fewer_trials_than_full() {
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    // ABCC8's 97-answer set is the wide-ranking case the feature
    // targets: separating rank 40 from 41 is pure waste for a top-1
    // client.
    let word = spec(
        Trials::Adaptive(AdaptiveConfig::default()),
        Some(Estimator::Word),
    );
    let top1 = client
        .query(&QueryRequest::protein_functions("ABCC8", word).certified_top(1))
        .expect("top-1 query");
    let cert1 = top1.certificate.expect("certificate");
    assert!(cert1.certified);
    let full = client
        .protein_functions("ABCC8", word)
        .expect("full adaptive query");
    let cert_full = full.certificate.expect("certificate");
    assert!(
        cert1.trials_used < cert_full.trials_used,
        "top-1 {} should beat full {} on a 97-answer ranking",
        cert1.trials_used,
        cert_full.trials_used
    );
    handle.shutdown();
}

#[test]
fn fixed_requests_differing_only_in_top_share_one_entry() {
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let fixed = spec(Trials::Fixed(400), Some(Estimator::Word));

    let mut shaped = QueryRequest::protein_functions("GALT", fixed);
    shaped.top = Some(5);
    let cold = client.query(&shaped).expect("top-5 fixed query");
    assert!(!cold.cached_scores);
    assert_eq!(cold.answers.len(), 5);

    // Different top, same spec: the fixed run computed the full
    // ranking, so this is a hit.
    let all = client
        .protein_functions("GALT", fixed)
        .expect("untruncated fixed query");
    assert!(all.cached_scores, "top is not a cache dimension");
    assert_eq!(all.answers.len(), 15);
    assert_eq!(all.answers[..5].to_vec(), cold.answers);

    // certify_top is meaningless under fixed trials: normalized to
    // full coverage, so it hits the same entry too.
    let certified = client
        .query(&QueryRequest::protein_functions("GALT", fixed).certified_top(3))
        .expect("certify_top fixed query");
    assert!(certified.cached_scores);
    assert_eq!(certified.certificate, None);
    assert_eq!(certified.answers.len(), 3);

    handle.shutdown();
}

#[test]
fn server_adaptive_default_applies_to_requests_without_trials() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let handle = start_server(ServeOptions {
        default_trials: Trials::Adaptive(AdaptiveConfig::default()),
        ..ServeOptions::default()
    });

    // A hand-written line with no `trials` field takes the server's
    // adaptive default and comes back certified.
    let stream = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream)
        .write_all(
            b"{\"id\":1,\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
              \"value\":\"GALT\",\"outputs\":[\"AmiGO\"],\"method\":\"mc\"}\n",
        )
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("\"certificate\"") && line.contains("\"certified\":true"),
        "server default should run adaptively: {line}"
    );

    // An explicit fixed-trial request on the same server stays fixed.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let fixed = client
        .protein_functions("GALT", spec(Trials::Fixed(400), None))
        .expect("fixed");
    assert_eq!(fixed.certificate, None);

    handle.shutdown();
}

#[test]
fn adaptive_reliability_method_certifies_too() {
    // The rel method (reduction + MC) rides the same incremental
    // contract: reduce once, then bound-certified traversal batches.
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let response = client
        .protein_functions(
            "GALT",
            RankerSpec {
                method: Method::Reliability,
                trials: Trials::Adaptive(AdaptiveConfig::default()),
                seed: 11,
                parallel: false,
                estimator: None,
            },
        )
        .expect("adaptive rel query");
    let cert = response.certificate.expect("certificate");
    assert!(cert.certified);
    assert!(cert.trials_used < RankerSpec::DEFAULT_TRIALS);
    assert_eq!(response.total_answers, 15, "Table 1: GALT → 15");
    handle.shutdown();
}
