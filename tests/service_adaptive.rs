//! Adaptive trials end to end over the wire: an `mc` query carrying an
//! adaptive policy must certify with measurably fewer trials than the
//! fixed default, echo its certificate (including on cache hits), keep
//! distinct result-cache keys from fixed-trial requests, and honor a
//! server-level adaptive default for requests that omit `trials`.

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::rank::bounds;
use biorank::service::{
    AdaptiveConfig, Client, Estimator, Method, QueryEngine, RankerSpec, ServeOptions, Server,
    ServerHandle, Trials,
};

fn start_server(opts: ServeOptions) -> ServerHandle {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind("127.0.0.1:0", engine, opts).expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

fn spec(trials: Trials, estimator: Option<Estimator>) -> RankerSpec {
    RankerSpec {
        method: Method::TraversalMc,
        trials,
        seed: 11,
        parallel: false,
        estimator,
    }
}

#[test]
fn adaptive_query_certifies_under_the_fixed_budget_and_echoes_certificate() {
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let adaptive = Trials::Adaptive(AdaptiveConfig::default());
    for estimator in [Some(Estimator::Word), Some(Estimator::Traversal)] {
        let response = client
            .protein_functions("GALT", spec(adaptive, estimator))
            .expect("adaptive query");
        let cert = response
            .certificate
            .expect("adaptive responses carry a certificate");
        assert!(cert.certified, "{cert:?}");
        assert!(
            cert.trials_used < RankerSpec::DEFAULT_TRIALS,
            "adaptive must beat the fixed 10k baseline, used {}",
            cert.trials_used
        );
        // The echoed ε is exactly the Theorem 3.1 inversion of the
        // trials spent — the bound and the certificate agree.
        let expect = bounds::resolvable_epsilon(u64::from(cert.trials_used), 0.05).unwrap();
        assert_eq!(cert.epsilon.to_bits(), expect.to_bits());

        // A repeat is a cache hit and echoes the SAME certificate.
        let warm = client
            .protein_functions("GALT", spec(adaptive, estimator))
            .expect("warm adaptive query");
        assert!(warm.cached_scores);
        assert_eq!(warm.certificate, response.certificate);
        assert_eq!(warm.answers, response.answers);
    }
    handle.shutdown();
}

#[test]
fn adaptive_and_fixed_requests_never_share_cache_entries() {
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let adaptive = Trials::Adaptive(AdaptiveConfig::default());
    let word = Some(Estimator::Word);
    let a = client
        .protein_functions("CFTR", spec(adaptive, word))
        .expect("adaptive");
    assert!(!a.cached_scores);

    // Same query, fixed trials: graph layer shared, ranking recomputed
    // — an adaptive (early-stopped) ranking must never answer a
    // fixed-trial request.
    let f = client
        .protein_functions("CFTR", spec(Trials::Fixed(10_000), word))
        .expect("fixed");
    assert!(f.cached_graph, "integration is shared");
    assert!(!f.cached_scores, "no adaptive→fixed cache hits");
    assert_eq!(f.certificate, None, "fixed runs carry no certificate");

    // A different (ε, δ) policy is a different schedule: own entry.
    let tighter = Trials::Adaptive(AdaptiveConfig {
        epsilon: 0.01,
        ..AdaptiveConfig::default()
    });
    let t = client
        .protein_functions("CFTR", spec(tighter, word))
        .expect("tighter adaptive");
    assert!(!t.cached_scores, "no cross-policy cache hits");

    handle.shutdown();
}

#[test]
fn server_adaptive_default_applies_to_requests_without_trials() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let handle = start_server(ServeOptions {
        default_trials: Trials::Adaptive(AdaptiveConfig::default()),
        ..ServeOptions::default()
    });

    // A hand-written line with no `trials` field takes the server's
    // adaptive default and comes back certified.
    let stream = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream)
        .write_all(
            b"{\"id\":1,\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
              \"value\":\"GALT\",\"outputs\":[\"AmiGO\"],\"method\":\"mc\"}\n",
        )
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("\"certificate\"") && line.contains("\"certified\":true"),
        "server default should run adaptively: {line}"
    );

    // An explicit fixed-trial request on the same server stays fixed.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let fixed = client
        .protein_functions("GALT", spec(Trials::Fixed(400), None))
        .expect("fixed");
    assert_eq!(fixed.certificate, None);

    handle.shutdown();
}

#[test]
fn adaptive_reliability_method_certifies_too() {
    // The rel method (reduction + MC) rides the same incremental
    // contract: reduce once, then bound-certified traversal batches.
    let handle = start_server(ServeOptions::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let response = client
        .protein_functions(
            "GALT",
            RankerSpec {
                method: Method::Reliability,
                trials: Trials::Adaptive(AdaptiveConfig::default()),
                seed: 11,
                parallel: false,
                estimator: None,
            },
        )
        .expect("adaptive rel query");
    let cert = response.certificate.expect("certificate");
    assert!(cert.certified);
    assert!(cert.trials_used < RankerSpec::DEFAULT_TRIALS);
    assert_eq!(response.total_answers, 15, "Table 1: GALT → 15");
    handle.shutdown();
}
