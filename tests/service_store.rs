//! Durable persistence over the wire: worlds loaded into a server
//! with an attached [`WorldStore`] survive a full server restart —
//! the recovered registry lists the same worlds under the same
//! generations, and the restarted server answers bit-identically
//! *from its snapshots* (result-cache hits with `warm.replayed > 0`),
//! never by re-running integration or Monte Carlo.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use biorank::service::persist;
use biorank::service::{
    AdaptiveConfig, Client, Estimator, Method, QueryRequest, QueryResponse, RankerSpec,
    ServeOptions, Server, ServerHandle, TenancyError, Trials, WorldManager, WorldSpec, WorldStore,
};

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "biorank-service-store-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn default_spec() -> WorldSpec {
    WorldSpec {
        seed: 41,
        extended: false,
        cache_capacity: 256,
    }
}

fn aux_spec() -> WorldSpec {
    WorldSpec {
        seed: 42,
        extended: false,
        cache_capacity: 256,
    }
}

/// The query mix replayed on both sides of the restart: a
/// deterministic ranker, a fixed-trial word-parallel MC run, and an
/// adaptive top-k run that carries a certificate.
fn requests() -> Vec<QueryRequest> {
    let mut out = vec![
        QueryRequest::protein_functions("GALT", RankerSpec::new(Method::InEdge)),
        QueryRequest::protein_functions(
            "GALT",
            RankerSpec {
                method: Method::TraversalMc,
                trials: Trials::Fixed(2_000),
                seed: 7,
                parallel: false,
                estimator: Some(Estimator::Word),
            },
        ),
    ];
    let mut certified = QueryRequest::protein_functions(
        "GALT",
        RankerSpec {
            method: Method::TraversalMc,
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            seed: 11,
            parallel: false,
            estimator: Some(Estimator::Word),
        },
    );
    certified.top = Some(5);
    certified.certify_top = true;
    out.push(certified);
    // The same deterministic query routed at the auxiliary world.
    let mut aux = QueryRequest::protein_functions("GALT", RankerSpec::new(Method::InEdge));
    aux.world = Some("aux".to_string());
    out.push(aux);
    out
}

fn start(manager: Arc<WorldManager>) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind_manager(
        "127.0.0.1:0",
        manager,
        ServeOptions {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

/// Polls until `world` resolves (restores install on worker threads).
fn wait_ready(manager: &WorldManager, world: Option<&str>) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match manager.resolve(world) {
            Ok(_) => return,
            Err(TenancyError::WorldLoading(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("world {world:?} never became ready: {e}"),
        }
    }
}

fn assert_bit_identical(before: &QueryResponse, after: &QueryResponse) {
    assert_eq!(before.total_answers, after.total_answers);
    assert_eq!(before.answers.len(), after.answers.len());
    for (b, a) in before.answers.iter().zip(&after.answers) {
        assert_eq!(b.key, a.key);
        assert_eq!((b.rank_lo, b.rank_hi), (a.rank_lo, a.rank_hi));
        assert_eq!(
            b.score.to_bits(),
            a.score.to_bits(),
            "score drifted across restart for {}",
            b.key
        );
    }
    assert_eq!(before.certificate, after.certificate);
}

#[test]
fn restarted_server_answers_bit_identically_from_snapshots() {
    let dir = fresh_dir();

    // ---- First life: durable server, two worlds, queries, checkpoint.
    let spec = default_spec();
    let manager = WorldManager::with_default(Arc::new(spec.build()), spec, 4);
    let store = Arc::new(WorldStore::open(&dir, manager.metrics()).expect("open data dir"));
    // Attaching the store WAL-logs the already-resident default world.
    let manager = Arc::new(
        manager
            .with_store(Arc::clone(&store))
            .expect("attach store"),
    );
    let (handle, join) = start(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("connect");

    let aux_generation = client.world_load("aux", aux_spec()).expect("load aux");
    let mut baseline = Vec::new();
    for req in requests() {
        baseline.push(client.query(&req).expect("first-life query"));
    }
    // The adaptive run must actually carry a certificate, or the
    // round-trip below proves nothing about certificate persistence.
    assert!(baseline.iter().any(|r| r.certificate.is_some()));

    let (worlds, bytes) = client.checkpoint().expect("checkpoint");
    assert_eq!(worlds, 2, "default + aux should both snapshot");
    assert!(bytes > 0);
    let listed: Vec<_> = client.world_list().expect("list");
    drop(client);
    handle.shutdown();
    join.join().expect("first server exits");

    // ---- Second life: recover the directory, restore in background.
    let manager2 = WorldManager::new(4);
    let store2 = Arc::new(WorldStore::open(&dir, manager2.metrics()).expect("reopen data dir"));
    let recovery = store2.recover().expect("recover");
    assert_eq!(recovery.worlds.len(), 2);
    // The checkpoint compacted the log: nothing left to replay.
    assert_eq!(recovery.wal_ops_replayed, 0);
    let manager2 = Arc::new(manager2.with_store(Arc::clone(&store2)).expect("reattach"));
    manager2.set_generation_floor(recovery.next_generation);
    for (name, world) in &recovery.worlds {
        let wspec = persist::world_spec(world.spec).expect("recovered spec");
        let snapshot = world
            .snapshot
            .as_deref()
            .map(|f| store2.load_snapshot(f).expect("snapshot payload"));
        manager2
            .restore_background(name, wspec, world.generation, snapshot)
            .expect("restore");
    }
    wait_ready(&manager2, None);
    wait_ready(&manager2, Some("aux"));

    let (handle2, join2) = start(Arc::clone(&manager2));
    let mut client2 = Client::connect(handle2.addr()).expect("reconnect");

    // Registry identity survived: same names, same generations, same
    // spec hashes as the pre-restart listing.
    let relisted = client2.world_list().expect("relist");
    assert_eq!(relisted.len(), listed.len());
    for (before, after) in listed.iter().zip(&relisted) {
        assert_eq!(before.name, after.name);
        assert_eq!(before.generation, after.generation);
        assert_eq!(before.spec.spec_hash(), after.spec.spec_hash());
    }
    let aux_after = relisted.iter().find(|w| w.name == "aux").expect("aux");
    assert_eq!(aux_after.generation, aux_generation);

    // Every answer comes back bit-identical — certificate included —
    // and *from the result cache*: the snapshot replay, not a re-run.
    for (req, before) in requests().iter().zip(&baseline) {
        let after = client2.query(req).expect("second-life query");
        assert!(
            after.cached_scores,
            "restarted server recomputed {req:?} instead of serving the snapshot"
        );
        assert_bit_identical(before, &after);
    }

    // The warm-restart counter proves the cache came back from disk.
    let report = client2.metrics(false).expect("metrics");
    let replayed: u64 = report
        .worlds
        .iter()
        .filter_map(|w| w.metrics.counters.get("warm.replayed"))
        .sum();
    assert!(replayed > 0, "no warm.replayed recorded: {report:?}");
    let restored = report
        .service
        .counters
        .get("tenancy.restore.snapshot")
        .copied()
        .unwrap_or(0);
    assert_eq!(restored, 2, "both worlds should restore from snapshots");

    // Generations handed out after recovery never collide with
    // recovered ones.
    let fresh_generation = client2
        .world_load(
            "fresh",
            WorldSpec {
                seed: 43,
                ..default_spec()
            },
        )
        .expect("post-recovery load");
    assert!(relisted.iter().all(|w| w.generation < fresh_generation));

    drop(client2);
    handle2.shutdown();
    join2.join().expect("second server exits");

    // The post-recovery load of "fresh" was WAL-logged (no checkpoint
    // ran since): a third recovery replays it on top of the manifest.
    let registry = biorank::service::MetricsRegistry::new();
    let store3 = WorldStore::open(&dir, &registry).expect("third open");
    let recovery3 = store3.recover().expect("third recover");
    assert_eq!(recovery3.worlds.len(), 3);
    assert!(recovery3.wal_ops_replayed > 0);
    assert_eq!(
        recovery3.worlds.get("fresh").map(|w| w.generation),
        Some(fresh_generation)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
