//! End-to-end pipeline tests: world generation → mediation → ranking →
//! evaluation, across crate boundaries.

use biorank::prelude::*;

fn world() -> World {
    World::generate(WorldParams::default())
}

fn mediator(world: &World) -> Mediator {
    Mediator::new(biorank_schema_with_ontology().schema, world.registry())
}

#[test]
fn full_pipeline_for_one_protein() {
    let w = world();
    let m = mediator(&w);
    let result = m
        .execute(&ExploratoryQuery::protein_functions("ABCC8"))
        .expect("integration succeeds");
    let q = &result.query;

    // Graph sanity.
    assert!(biorank::graph::topo::is_dag(q.graph()));
    assert_eq!(q.answers().len(), 97);
    q.graph().check_invariants();

    // Every ranking method produces a full ranking.
    let rankers: Vec<Box<dyn Ranker + Send + Sync>> = vec![
        Box::new(TraversalMc::new(2_000, 1)),
        Box::new(ReducedMc::new(2_000, 1)),
        Box::new(ClosedReliability::default()),
        Box::new(Propagation::auto()),
        Box::new(Diffusion::auto()),
        Box::new(InEdge),
        Box::new(PathCount),
    ];
    for r in rankers {
        let scores = r.score(q).unwrap_or_else(|e| panic!("{}: {e}", r.name()));
        let ranking = Ranking::rank(scores.answers(q));
        assert_eq!(ranking.len(), 97, "{}", r.name());
    }
}

#[test]
fn reliability_strategies_agree_end_to_end() {
    let w = world();
    let m = mediator(&w);
    let result = m
        .execute(&ExploratoryQuery::protein_functions("GCH1"))
        .expect("integration succeeds");
    let q = &result.query;
    let exact = ClosedReliability::default().score(q).expect("exact");
    let mc = TraversalMc::new(60_000, 3).score(q).expect("mc");
    let reduced = ReducedMc::new(60_000, 4).score(q).expect("reduced mc");
    for &a in q.answers() {
        let e = exact.get(a);
        assert!((e - mc.get(a)).abs() < 0.02, "MC vs exact at {a}");
        assert!((e - reduced.get(a)).abs() < 0.02, "R&MC vs exact at {a}");
    }
}

#[test]
fn every_protein_in_the_world_integrates() {
    let w = world();
    let m = mediator(&w);
    for profile in &w.profiles {
        let result = m
            .execute(&ExploratoryQuery::protein_functions(&profile.name))
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert_eq!(
            result.query.answers().len(),
            profile.functions.len(),
            "{}: answer set must match ground truth",
            profile.name
        );
    }
}

#[test]
fn scenario_evaluation_end_to_end() {
    let w = world();
    for scenario in Scenario::ALL {
        let cases = build_cases(&w, scenario).expect("cases build");
        let results = evaluate(
            &[Box::new(Propagation::auto()) as Box<dyn Ranker + Send + Sync>],
            &cases,
        )
        .expect("evaluation succeeds");
        let base = random_baseline(&cases);
        assert!(
            results[0].summary.mean > base.summary.mean,
            "{scenario:?}: propagation {} must beat random {}",
            results[0].summary.mean,
            base.summary.mean
        );
    }
}

#[test]
fn world_regeneration_is_fully_deterministic() {
    let w1 = world();
    let w2 = world();
    let m1 = mediator(&w1);
    let m2 = mediator(&w2);
    let q = ExploratoryQuery::protein_functions("RYR2");
    let r1 = m1.execute(&q).expect("first run");
    let r2 = m2.execute(&q).expect("second run");
    assert_eq!(r1.stats, r2.stats);
    let s1 = Propagation::auto().score(&r1.query).expect("scores");
    let s2 = Propagation::auto().score(&r2.query).expect("scores");
    for (&a1, &a2) in r1.query.answers().iter().zip(r2.query.answers()) {
        assert_eq!(s1.get(a1), s2.get(a2));
    }
}

#[test]
fn different_seeds_give_different_worlds() {
    let w1 = World::generate(WorldParams {
        seed: 1,
        ..WorldParams::default()
    });
    let w2 = World::generate(WorldParams {
        seed: 2,
        ..WorldParams::default()
    });
    // Population structure is pinned by the paper's tables...
    assert_eq!(w1.profiles.len(), w2.profiles.len());
    // ...but the evidence draws differ.
    assert_ne!(w1.blast.hits, w2.blast.hits);
}
