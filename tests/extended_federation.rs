//! Tests of the full 11-source federation (extended world mode):
//! PIRSF, SuperFamily, CDD, UniProt and PDB joining the Fig. 1 sources.

use biorank::prelude::*;
use biorank::schema::biorank_schema_full;

fn extended_world() -> World {
    World::generate(WorldParams {
        extended: true,
        ..WorldParams::default()
    })
}

#[test]
fn extended_schema_matches_catalog_names() {
    let b = biorank_schema_full();
    let catalog: Vec<&str> = biorank::schema::source_catalog()
        .iter()
        .map(|s| s.name)
        .collect();
    // Every catalog source except the matching-name differences
    // (TigrFam entity vs TIGRFAM source) is represented by an entity
    // set whose declared source is in the catalog.
    for (_, es) in b.schema.entity_sets() {
        if es.source == "Mediator" {
            continue; // the synthetic query entity set
        }
        assert!(
            catalog.contains(&es.source.as_str()),
            "entity set {} declares unknown source {}",
            es.name,
            es.source
        );
    }
    assert_eq!(b.schema.entity_set_count(), 12); // 7 + 5 new
}

#[test]
fn extended_world_populates_new_sources() {
    let w = extended_world();
    assert!(!w.pirsf.hits.is_empty());
    assert!(!w.superfamily.hits.is_empty());
    assert!(!w.cdd.hits.is_empty());
    assert!(!w.uniprot.records.is_empty());
    assert!(!w.pdb.structures.is_empty());
    // Default world keeps them empty, so the tuned headline experiments
    // are untouched.
    let plain = World::generate(WorldParams::default());
    assert!(plain.pirsf.hits.is_empty());
    assert!(plain.pdb.structures.is_empty());
}

#[test]
fn extended_integration_preserves_answer_sets() {
    // More corroborating sources must not change WHAT is found — only
    // how strongly it is scored (candidate terms are fixed by ground
    // truth).
    let w = extended_world();
    let full = Mediator::new(biorank_schema_full().schema, w.registry());
    let plain_w = World::generate(WorldParams::default());
    let plain = Mediator::new(biorank_schema_with_ontology().schema, plain_w.registry());
    for protein in ["ABCC8", "GALT", "DP0843"] {
        let q = ExploratoryQuery::protein_functions(protein);
        let a = full.execute(&q).expect("extended integrates");
        let b = plain.execute(&q).expect("plain integrates");
        assert_eq!(
            a.query.answers().len(),
            b.query.answers().len(),
            "{protein}: answer set size must be identical"
        );
        assert!(
            a.stats.nodes > b.stats.nodes,
            "{protein}: extended graph should be larger"
        );
    }
}

#[test]
fn pirsf_corroboration_strengthens_true_functions() {
    let w = extended_world();
    let full = Mediator::new(biorank_schema_full().schema, w.registry());
    let plain = Mediator::new(biorank_schema_with_ontology().schema, w.registry());
    let q = ExploratoryQuery::protein_functions("GALT");
    let with = full.execute(&q).expect("extended integrates");
    let without = plain.execute(&q).expect("plain integrates");
    let rel_with = ClosedReliability::default()
        .score(&with.query)
        .expect("scores");
    let rel_without = ClosedReliability::default()
        .score(&without.query)
        .expect("scores");
    // The PIRSF family annotates the strongest true functions; at least
    // one of them must gain score.
    let pirsf_terms: Vec<String> = w
        .pirsf
        .annotations
        .values()
        .flatten()
        .map(|t| t.to_string())
        .collect();
    let gained = with
        .query
        .answers()
        .iter()
        .filter(|&&a| {
            let Some(key) = with.answer_key(a) else {
                return false;
            };
            if !pirsf_terms.iter().any(|t| t == key) {
                return false;
            }
            let before = without
                .query
                .answers()
                .iter()
                .find(|&&b| without.answer_key(b) == Some(key))
                .map(|&b| rel_without.get(b))
                .unwrap_or(0.0);
            rel_with.get(a) > before + 1e-6
        })
        .count();
    assert!(gained > 0, "PIRSF corroboration must lift some score");
}

#[test]
fn pdb_structures_are_pruned_leaves() {
    let w = extended_world();
    let full = Mediator::new(biorank_schema_full().schema, w.registry());
    // Pick a protein that has PDB structures.
    let protein = w
        .pdb
        .structures
        .keys()
        .next()
        .expect("some protein has structures")
        .clone();
    let r = full
        .execute(&ExploratoryQuery::protein_functions(&protein))
        .expect("integration succeeds");
    // Structures were fetched during integration...
    assert!(
        r.stats.nodes_raw > r.stats.nodes,
        "raw graph contains prunable records"
    );
    // ...but no PDB record survives into the query graph (they are
    // answer-less leaves).
    for rec in r.records.values() {
        assert_ne!(
            rec.entity_set, "PDB",
            "PDB leaf {} survived pruning",
            rec.key
        );
    }
}

#[test]
fn uniprot_gives_second_certain_path_to_gene_annotations() {
    let w = extended_world();
    let full = Mediator::new(biorank_schema_full().schema, w.registry());
    let r = full
        .execute(&ExploratoryQuery::protein_functions("ABCC8"))
        .expect("integration succeeds");
    // Exactly one UniProt record node in the graph.
    let uniprot_nodes: Vec<_> = r
        .records
        .iter()
        .filter(|(_, rec)| rec.entity_set == "UniProt")
        .collect();
    assert_eq!(uniprot_nodes.len(), 1);
    // The self gene is now reachable via blast AND via UniProt: it has
    // at least two in-edges.
    let gene_node = r
        .records
        .iter()
        .find(|(_, rec)| rec.entity_set == "EntrezGene" && rec.key == "EG:ABCC8")
        .map(|(&n, _)| n)
        .expect("self gene integrated");
    assert!(
        r.query.graph().in_degree(gene_node) >= 2,
        "self gene should be doubly cross-referenced"
    );
}
