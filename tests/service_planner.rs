//! The cost-based query planner end to end: `estimator: "auto"`
//! resolves to a concrete strategy before any cache key is formed, the
//! chosen plan is echoed on the response (and only observed — it is
//! never a cache-key dimension), plans are deterministic under a fixed
//! calibration snapshot, and a planned execution is byte-identical to
//! a client naming the chosen strategy outright.

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    spec_for_strategy, AdaptiveConfig, Client, Estimator, Method, QueryEngine, QueryRequest,
    RankerSpec, ServeOptions, Server, ServerHandle, Trials,
};

fn fresh_engine() -> QueryEngine {
    let world = World::generate(WorldParams::default());
    QueryEngine::new(Mediator::new(
        biorank_schema_with_ontology().schema,
        world.registry(),
    ))
}

fn start_server() -> ServerHandle {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServeOptions {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

/// An adaptive Monte Carlo request that asks the planner to choose.
fn auto_spec() -> RankerSpec {
    RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Adaptive(AdaptiveConfig::default()),
        seed: 11,
        parallel: false,
        estimator: Some(Estimator::Auto),
    }
}

const STRATEGIES: [&str; 4] = ["exact", "reduced", "word", "traversal"];

#[test]
fn auto_resolves_to_a_strategy_and_echoes_the_plan() {
    let engine = fresh_engine();
    let resp = engine
        .execute(&QueryRequest::protein_functions("GALT", auto_spec()))
        .expect("auto query");
    let plan = resp.plan.expect("auto responses carry a plan echo");
    assert!(plan.predicted_ns > 0);
    assert!(plan.features.graph.nodes > 0);
    assert!(plan.features.graph.edges > 0);
    assert!(plan.features.graph.reduced_edges <= plan.features.graph.edges);

    // Exactly one planner decision was counted, under the chosen
    // strategy's name.
    let snap = engine.metrics_snapshot();
    let chosen: u64 = STRATEGIES
        .iter()
        .map(|s| snap.counter(&format!("planner.chosen.{s}")))
        .sum();
    assert_eq!(chosen, 1);
    assert_eq!(
        snap.counter(&format!("planner.chosen.{}", plan.strategy.wire_name())),
        1
    );
}

#[test]
fn same_query_and_calibration_snapshot_yield_the_same_plan() {
    // Accumulate real planner telemetry on one engine, then freeze it.
    let teacher = fresh_engine();
    for protein in ["GALT", "CFTR", "LPL"] {
        teacher
            .execute(&QueryRequest::protein_functions(protein, auto_spec()))
            .expect("telemetry query");
    }
    let snapshot = teacher.metrics_snapshot();

    // Two fresh engines calibrated from the same snapshot must plan
    // the same query identically — strategy, prediction, and features.
    let req = QueryRequest::protein_functions("GALT", auto_spec());
    let plans: Vec<_> = (0..2)
        .map(|_| {
            let engine = fresh_engine();
            engine.recalibrate_from(&snapshot);
            engine
                .execute(&req)
                .expect("planned query")
                .plan
                .expect("plan echo")
        })
        .collect();
    assert_eq!(plans[0], plans[1]);
}

#[test]
fn auto_and_explicit_requests_share_one_cache_entry() {
    // Auto first: its entry must serve a later explicit request for
    // the chosen strategy.
    let engine = fresh_engine();
    let auto_req = QueryRequest::protein_functions("GALT", auto_spec());
    let first = engine.execute(&auto_req).expect("cold auto");
    assert!(!first.cached_scores);
    let plan = first.plan.expect("plan echo");
    let explicit_req =
        QueryRequest::protein_functions("GALT", spec_for_strategy(plan.strategy, &auto_spec()));
    let second = engine.execute(&explicit_req).expect("explicit repeat");
    assert!(
        second.cached_scores,
        "auto's cache entry must serve the explicit request"
    );
    assert_eq!(second.answers, first.answers);
    assert_eq!(second.certificate, first.certificate);
    assert!(
        second.plan.is_none(),
        "explicit requests route around the planner, echo included"
    );

    // Explicit first: auto resolves onto the same key and hits. The
    // plan echo rides the hit — proof it is never a cache dimension
    // (mirrors the `trace: true` invariance in service_metrics).
    let engine = fresh_engine();
    let first = engine.execute(&explicit_req).expect("cold explicit");
    assert!(!first.cached_scores);
    let second = engine.execute(&auto_req).expect("auto repeat");
    assert!(
        second.cached_scores,
        "the explicit entry must serve the planned request"
    );
    assert_eq!(second.answers, first.answers);
    assert_eq!(second.certificate, first.certificate);
    assert!(second.plan.is_some(), "a planned hit still explains itself");
}

#[test]
fn planned_execution_is_byte_identical_to_the_explicit_strategy() {
    // Cold runs on two fresh engines over the same world: auto's
    // answers and certificate must be indistinguishable from a client
    // naming the chosen strategy outright (same trials, seed, and
    // parallelism — only the plan echo differs).
    let auto_req = QueryRequest::protein_functions("CFTR", auto_spec());
    let auto = fresh_engine().execute(&auto_req).expect("cold auto");
    let strategy = auto.plan.as_ref().expect("plan echo").strategy;
    let explicit_req =
        QueryRequest::protein_functions("CFTR", spec_for_strategy(strategy, &auto_spec()));
    let explicit = fresh_engine()
        .execute(&explicit_req)
        .expect("cold explicit");
    assert_eq!(auto.answers, explicit.answers);
    assert_eq!(auto.certificate, explicit.certificate);
    assert_eq!(auto.total_answers, explicit.total_answers);
    assert!(explicit.plan.is_none());
}

#[test]
fn live_server_defaults_to_auto_and_explicit_opt_out_matches_bytes() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The estimator field left unset: the serve default (auto) plans.
    let spec = RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Adaptive(AdaptiveConfig::default()),
        seed: 5,
        parallel: false,
        estimator: None,
    };
    let auto = client
        .query(&QueryRequest::protein_functions("CFTR", spec.clone()))
        .expect("auto query");
    let plan = auto.plan.clone().expect("the serve default must plan");

    // Explicit opt-out for the chosen strategy: identical bytes over
    // the wire, served from the shared cache entry, no plan echo.
    let explicit = client
        .query(&QueryRequest::protein_functions(
            "CFTR",
            spec_for_strategy(plan.strategy, &spec),
        ))
        .expect("explicit query");
    assert!(explicit.cached_scores);
    assert_eq!(explicit.answers, auto.answers);
    assert_eq!(explicit.certificate, auto.certificate);
    assert!(
        explicit.plan.is_none(),
        "an explicit estimator routes around the planner"
    );

    // One planned request: the chosen counters and the world.list
    // rollup agree.
    let report = client.metrics(false).expect("metrics");
    let world = report
        .worlds
        .iter()
        .find(|w| w.name == "default")
        .expect("default world metrics");
    let chosen: u64 = STRATEGIES
        .iter()
        .map(|s| world.metrics.counter(&format!("planner.chosen.{s}")))
        .sum();
    assert_eq!(chosen, 1);
    let worlds = client.world_list().expect("world.list");
    let info = worlds
        .iter()
        .find(|w| w.name == "default")
        .expect("default world row");
    assert_eq!(info.planner_chosen.iter().sum::<u64>(), chosen);

    handle.shutdown();
}
