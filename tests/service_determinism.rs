//! Concurrency-determinism guarantees of the serving layer: the same
//! seeded query batch must produce bit-identical rankings on 1 worker
//! and on N workers, and cache hits must return exactly what
//! recomputation would.

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{Method, QueryEngine, QueryRequest, RankerSpec, WorkerPool};

fn engine() -> Arc<QueryEngine> {
    let world = World::generate(WorldParams::default());
    Arc::new(QueryEngine::new(Mediator::new(
        biorank_schema_with_ontology().schema,
        world.registry(),
    )))
}

/// A batch mixing stochastic and deterministic methods, with repeats
/// so the cache path is exercised inside the batch itself.
fn batch() -> Vec<QueryRequest> {
    let proteins = ["GALT", "ABCC8", "CFTR", "EYA1", "GALT", "ABCC8"];
    let methods = [
        Method::Reliability,
        Method::TraversalMc,
        Method::Propagation,
        Method::Diffusion,
        Method::InEdge,
        Method::PathCount,
    ];
    let mut out = Vec::new();
    for (i, protein) in proteins.iter().enumerate() {
        for method in methods {
            out.push(QueryRequest {
                query: ExploratoryQuery::protein_functions(protein),
                spec: RankerSpec {
                    method,
                    trials: 500,
                    seed: 7 + (i % 2) as u64,
                },
                top: None,
            });
        }
    }
    out
}

fn rankings(
    results: Vec<Result<biorank::service::QueryResponse, biorank::service::Error>>,
) -> Vec<Vec<(String, f64, usize, usize)>> {
    results
        .into_iter()
        .map(|r| {
            r.expect("batch query succeeds")
                .answers
                .into_iter()
                .map(|a| (a.key, a.score, a.rank_lo, a.rank_hi))
                .collect()
        })
        .collect()
}

#[test]
fn one_worker_and_n_workers_rank_identically() {
    // Fresh engines per pool size: no cross-run cache reuse, so the
    // comparison is between genuinely independent executions.
    let sequential = rankings(WorkerPool::new(1).run_batch(&engine(), batch()));
    let concurrent = rankings(WorkerPool::new(8).run_batch(&engine(), batch()));
    assert_eq!(
        sequential, concurrent,
        "8-worker batch must be bit-identical to the 1-worker batch"
    );
    // And stable across repetition.
    let again = rankings(WorkerPool::new(4).run_batch(&engine(), batch()));
    assert_eq!(sequential, again);
}

#[test]
fn pool_batch_matches_direct_sequential_execution() {
    let eng = engine();
    let direct: Vec<_> = batch().iter().map(|r| eng.execute(r)).collect();
    let direct = rankings(direct);
    let pooled = rankings(WorkerPool::new(6).run_batch(&engine(), batch()));
    assert_eq!(direct, pooled);
}

#[test]
fn cached_responses_equal_uncached_recomputation() {
    let eng = engine();
    let req = QueryRequest::protein_functions("GALT", RankerSpec::new(Method::Reliability));
    let cold = eng.execute(&req).expect("cold query");
    assert!(!cold.cached_graph && !cold.cached_scores);
    let warm = eng.execute(&req).expect("warm query");
    assert!(warm.cached_graph && warm.cached_scores);
    let recomputed = eng.execute_uncached(&req).expect("uncached query");
    assert_eq!(cold.answers, warm.answers);
    assert_eq!(cold.answers, recomputed.answers);
    assert_eq!(cold.total_answers, 15, "Table 1: GALT → 15");
}

#[test]
fn graph_cache_is_shared_across_methods() {
    let eng = engine();
    let rel = QueryRequest::protein_functions("CFTR", RankerSpec::new(Method::Reliability));
    let prop = QueryRequest::protein_functions("CFTR", RankerSpec::new(Method::Propagation));
    let first = eng.execute(&rel).expect("rel query");
    assert!(!first.cached_graph);
    // Same protein, different ranker: integration is reused, scoring
    // is not.
    let second = eng.execute(&prop).expect("prop query");
    assert!(second.cached_graph && !second.cached_scores);
    let stats = eng.stats();
    assert_eq!(stats.graphs.hits, 1);
    assert_eq!(stats.results.misses, 2);
}

#[test]
fn distinct_seeds_change_stochastic_rankings_only() {
    let eng = engine();
    let spec_a = RankerSpec {
        method: Method::TraversalMc,
        trials: 50,
        seed: 1,
    };
    let spec_b = RankerSpec {
        method: Method::TraversalMc,
        trials: 50,
        seed: 2,
    };
    let a = eng
        .execute(&QueryRequest::protein_functions("ABCC8", spec_a))
        .expect("seed 1");
    let b = eng
        .execute(&QueryRequest::protein_functions("ABCC8", spec_b))
        .expect("seed 2");
    // 50 trials over 97 answers: scores almost surely differ somewhere.
    let scores =
        |r: &biorank::service::QueryResponse| r.answers.iter().map(|x| x.score).collect::<Vec<_>>();
    assert_ne!(scores(&a), scores(&b), "different seeds, same scores");

    // Deterministic methods ignore the seed entirely; the cache key
    // normalizes it away, so the second call is a result-cache hit.
    let det = |seed| {
        eng.execute(&QueryRequest::protein_functions(
            "ABCC8",
            RankerSpec {
                method: Method::PathCount,
                trials: 50,
                seed,
            },
        ))
        .expect("pathcount")
    };
    let first = det(1);
    let second = det(2);
    assert_eq!(first.answers, second.answers);
    assert!(
        !first.cached_scores && second.cached_scores,
        "seed must not split the cache for deterministic methods"
    );
}
