//! Concurrency-determinism guarantees of the serving layer: the same
//! seeded query batch must produce bit-identical rankings on 1 worker
//! and on N workers, and cache hits must return exactly what
//! recomputation would.

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{Method, QueryEngine, QueryRequest, RankerSpec, Trials, WorkerPool};

fn engine() -> Arc<QueryEngine> {
    let world = World::generate(WorldParams::default());
    Arc::new(QueryEngine::new(Mediator::new(
        biorank_schema_with_ontology().schema,
        world.registry(),
    )))
}

/// A batch mixing stochastic and deterministic methods, with repeats
/// so the cache path is exercised inside the batch itself.
fn batch() -> Vec<QueryRequest> {
    let proteins = ["GALT", "ABCC8", "CFTR", "EYA1", "GALT", "ABCC8"];
    let methods = [
        Method::Reliability,
        Method::TraversalMc,
        Method::Propagation,
        Method::Diffusion,
        Method::InEdge,
        Method::PathCount,
    ];
    let mut out = Vec::new();
    for (i, protein) in proteins.iter().enumerate() {
        for method in methods {
            out.push(QueryRequest {
                query: ExploratoryQuery::protein_functions(protein),
                spec: RankerSpec {
                    method,
                    trials: Trials::Fixed(500),
                    seed: 7 + (i % 2) as u64,
                    parallel: false,
                    estimator: None,
                },
                top: None,
                certify_top: false,
                world: None,
                trace: false,
                deadline_ms: None,
            });
        }
    }
    out
}

fn rankings(
    results: Vec<Result<biorank::service::QueryResponse, biorank::service::Error>>,
) -> Vec<Vec<(String, f64, usize, usize)>> {
    results
        .into_iter()
        .map(|r| {
            r.expect("batch query succeeds")
                .answers
                .into_iter()
                .map(|a| (a.key, a.score, a.rank_lo, a.rank_hi))
                .collect()
        })
        .collect()
}

#[test]
fn one_worker_and_n_workers_rank_identically() {
    // Fresh engines per pool size: no cross-run cache reuse, so the
    // comparison is between genuinely independent executions.
    let sequential = rankings(WorkerPool::new(1).run_batch(&engine(), batch()));
    let concurrent = rankings(WorkerPool::new(8).run_batch(&engine(), batch()));
    assert_eq!(
        sequential, concurrent,
        "8-worker batch must be bit-identical to the 1-worker batch"
    );
    // And stable across repetition.
    let again = rankings(WorkerPool::new(4).run_batch(&engine(), batch()));
    assert_eq!(sequential, again);
}

#[test]
fn pool_batch_matches_direct_sequential_execution() {
    let eng = engine();
    let direct: Vec<_> = batch().iter().map(|r| eng.execute(r)).collect();
    let direct = rankings(direct);
    let pooled = rankings(WorkerPool::new(6).run_batch(&engine(), batch()));
    assert_eq!(direct, pooled);
}

#[test]
fn cached_responses_equal_uncached_recomputation() {
    let eng = engine();
    let req = QueryRequest::protein_functions("GALT", RankerSpec::new(Method::Reliability));
    let cold = eng.execute(&req).expect("cold query");
    assert!(!cold.cached_graph && !cold.cached_scores);
    let warm = eng.execute(&req).expect("warm query");
    assert!(warm.cached_graph && warm.cached_scores);
    let recomputed = eng.execute_uncached(&req).expect("uncached query");
    assert_eq!(cold.answers, warm.answers);
    assert_eq!(cold.answers, recomputed.answers);
    assert_eq!(cold.total_answers, 15, "Table 1: GALT → 15");
}

#[test]
fn graph_cache_is_shared_across_methods() {
    let eng = engine();
    let rel = QueryRequest::protein_functions("CFTR", RankerSpec::new(Method::Reliability));
    let prop = QueryRequest::protein_functions("CFTR", RankerSpec::new(Method::Propagation));
    let first = eng.execute(&rel).expect("rel query");
    assert!(!first.cached_graph);
    // Same protein, different ranker: integration is reused, scoring
    // is not.
    let second = eng.execute(&prop).expect("prop query");
    assert!(second.cached_graph && !second.cached_scores);
    let stats = eng.stats();
    assert_eq!(stats.graphs.hits, 1);
    assert_eq!(stats.results.misses, 2);
}

/// The opt-in `parallel` flag: the chunked traversal-MC estimator must
/// give bit-identical scores whether its chunks run on 1 thread or N
/// (the chunk layout is pinned; threads only schedule), and the
/// service path must be reproducible and cache-coherent under it.
#[test]
fn parallel_mc_is_bit_identical_to_sequential_chunk_execution() {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let result = mediator
        .execute(&ExploratoryQuery::protein_functions("CFTR"))
        .expect("integrate CFTR");
    let q = &result.query;
    let mc = TraversalMc::new(2_000, 77);
    let chunks = biorank::service::PARALLEL_MC_CHUNKS;
    let sequential = mc.score_chunked(q, chunks, 1).expect("1 thread");
    for threads in [2usize, 4, 8] {
        let parallel = mc.score_chunked(q, chunks, threads).expect("N threads");
        for &a in q.answers() {
            assert_eq!(
                sequential.get(a).to_bits(),
                parallel.get(a).to_bits(),
                "threads={threads}"
            );
        }
    }
}

#[test]
fn parallel_request_flag_is_deterministic_and_cache_coherent() {
    let spec = RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Fixed(400),
        seed: 5,
        parallel: true,
        estimator: None,
    };
    let req = QueryRequest::protein_functions("ABCC8", spec);
    // Reproducible across independent engines (fresh caches each).
    let a = engine().execute(&req).expect("engine a");
    let b = engine().execute(&req).expect("engine b");
    assert_eq!(a.answers, b.answers);
    // And a cache hit returns exactly what recomputation would.
    let eng = engine();
    let cold = eng.execute(&req).expect("cold");
    let warm = eng.execute(&req).expect("warm");
    assert!(!cold.cached_scores && warm.cached_scores);
    assert_eq!(cold.answers, warm.answers);
    assert_eq!(cold.answers, a.answers);

    // parallel=true selects a *different* (chunked) estimator, so it
    // must not share a result-cache entry with parallel=false.
    let sequential = eng
        .execute(&QueryRequest::protein_functions(
            "ABCC8",
            RankerSpec {
                parallel: false,
                estimator: None,
                ..spec
            },
        ))
        .expect("sequential");
    assert!(
        !sequential.cached_scores,
        "parallel and sequential requests must not share a cache entry"
    );

    // Deterministic methods normalize the flag away entirely.
    let det = |parallel| {
        eng.execute(&QueryRequest::protein_functions(
            "EYA1",
            RankerSpec {
                method: Method::InEdge,
                trials: Trials::Fixed(1),
                seed: 0,
                parallel,
                estimator: None,
            },
        ))
        .expect("inedge")
    };
    let first = det(false);
    let second = det(true);
    assert!(second.cached_scores, "InEdge ignores the parallel flag");
    assert_eq!(first.answers, second.answers);
}

#[test]
fn distinct_seeds_change_stochastic_rankings_only() {
    let eng = engine();
    let spec_a = RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Fixed(50),
        seed: 1,
        parallel: false,
        estimator: None,
    };
    let spec_b = RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Fixed(50),
        seed: 2,
        parallel: false,
        estimator: None,
    };
    let a = eng
        .execute(&QueryRequest::protein_functions("ABCC8", spec_a))
        .expect("seed 1");
    let b = eng
        .execute(&QueryRequest::protein_functions("ABCC8", spec_b))
        .expect("seed 2");
    // 50 trials over 97 answers: scores almost surely differ somewhere.
    let scores =
        |r: &biorank::service::QueryResponse| r.answers.iter().map(|x| x.score).collect::<Vec<_>>();
    assert_ne!(scores(&a), scores(&b), "different seeds, same scores");

    // Deterministic methods ignore the seed entirely; the cache key
    // normalizes it away, so the second call is a result-cache hit.
    let det = |seed| {
        eng.execute(&QueryRequest::protein_functions(
            "ABCC8",
            RankerSpec {
                method: Method::PathCount,
                trials: Trials::Fixed(50),
                seed,
                parallel: false,
                estimator: None,
            },
        ))
        .expect("pathcount")
    };
    let first = det(1);
    let second = det(2);
    assert_eq!(first.answers, second.answers);
    assert!(
        !first.cached_scores && second.cached_scores,
        "seed must not split the cache for deterministic methods"
    );
}
