//! Estimator selection over the wire: `estimator: "word"` requests
//! must run the word-parallel engine against the same world as default
//! requests while the result cache keeps the two under **distinct**
//! keys — a word-parallel ranking must never be served to a traversal
//! request or vice versa, and the unspecified estimator must share its
//! entry with an explicit `"traversal"`.

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    Client, Estimator, Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions, Server,
    ServerHandle, Trials,
};

fn start_server(default_estimator: Estimator) -> ServerHandle {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServeOptions {
            workers: 2,
            default_estimator,
            ..Default::default()
        },
    )
    .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

fn mc_spec(estimator: Option<Estimator>) -> RankerSpec {
    RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Fixed(400),
        seed: 11,
        parallel: false,
        estimator,
    }
}

#[test]
fn estimators_get_distinct_result_cache_keys() {
    let handle = start_server(Estimator::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Cold word-parallel query, then its warm repeat.
    let word_cold = client
        .protein_functions("GALT", mc_spec(Some(Estimator::Word)))
        .expect("word query");
    assert!(!word_cold.cached_scores);
    let word_warm = client
        .protein_functions("GALT", mc_spec(Some(Estimator::Word)))
        .expect("warm word query");
    assert!(word_warm.cached_scores);
    assert_eq!(word_warm.answers, word_cold.answers);

    // The same query under the default estimator: the graph layer hits
    // (same integration), but the ranking must be recomputed — a
    // result-cache hit here would leak a word-parallel ranking into a
    // traversal request.
    let default_cold = client
        .protein_functions("GALT", mc_spec(None))
        .expect("default query");
    assert!(default_cold.cached_graph, "integration is shared");
    assert!(
        !default_cold.cached_scores,
        "no cross-estimator result-cache hits"
    );

    // Unspecified ≡ explicit traversal: one shared entry.
    let traversal_warm = client
        .protein_functions("GALT", mc_spec(Some(Estimator::Traversal)))
        .expect("explicit traversal query");
    assert!(
        traversal_warm.cached_scores,
        "explicit traversal shares the default's cache entry"
    );
    assert_eq!(traversal_warm.answers, default_cold.answers);

    // The word engine is bit-identical at every thread count, so the
    // parallel flag must not split its cache entry.
    let word_parallel = client
        .protein_functions(
            "GALT",
            RankerSpec {
                parallel: true,
                ..mc_spec(Some(Estimator::Word))
            },
        )
        .expect("parallel word query");
    assert!(
        word_parallel.cached_scores,
        "parallel is normalized away under the word engine"
    );
    assert_eq!(word_parallel.answers, word_cold.answers);

    handle.shutdown();
}

#[test]
fn server_default_estimator_applies_to_unspecified_requests() {
    // A server configured with a word default: unspecified requests
    // run (and cache) word-parallel, while explicit traversal requests
    // still get their own entry.
    let handle = start_server(Estimator::Word);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let unspecified = client
        .protein_functions("CFTR", mc_spec(None))
        .expect("unspecified query");
    assert!(!unspecified.cached_scores);
    let word = client
        .protein_functions("CFTR", mc_spec(Some(Estimator::Word)))
        .expect("explicit word query");
    assert!(
        word.cached_scores,
        "unspecified resolved to the server's word default"
    );
    assert_eq!(word.answers, unspecified.answers);

    let traversal = client
        .protein_functions("CFTR", mc_spec(Some(Estimator::Traversal)))
        .expect("explicit traversal query");
    assert!(
        !traversal.cached_scores,
        "explicit traversal bypasses the word default"
    );

    handle.shutdown();
}

#[test]
fn word_results_are_identical_across_connections_and_to_inprocess() {
    // The word engine inherits the content-derived seeding contract:
    // the same request answered over any connection equals direct
    // in-process execution bit for bit.
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), ServeOptions::default())
        .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));

    let request = QueryRequest::protein_functions("GALT", mc_spec(Some(Estimator::Word)));
    let local = engine.execute_uncached(&request).expect("local execution");
    let mut a = Client::connect(handle.addr()).expect("client a");
    let mut b = Client::connect(handle.addr()).expect("client b");
    let via_a = a.query(&request).expect("remote a");
    let via_b = b.query(&request).expect("remote b");
    assert_eq!(via_a.answers, local.answers);
    assert_eq!(via_b.answers, local.answers);

    handle.shutdown();
}
