//! Fusion and single-flight are invisible on the wire.
//!
//! The engine may collapse concurrent identical requests into one
//! computation (single-flight) and run concurrent word-estimator
//! Monte Carlo jobs as one fused multi-lane sweep — but a client can
//! never tell: responses are byte-identical to unfused, solo
//! execution, and identical requests land in exactly one result-cache
//! entry. Only the metrics registry records the collapsing
//! (`queries.coalesced`, `fusion.batches`, `fusion.lanes_used`,
//! `fusion_width`).

use std::sync::{Arc, Barrier};
use std::thread;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    AdaptiveConfig, Estimator, Method, QueryEngine, QueryRequest, RankerSpec, Trials,
};

fn engine() -> Arc<QueryEngine> {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    Arc::new(QueryEngine::new(mediator))
}

fn word_spec(seed: u64, trials: Trials) -> RankerSpec {
    RankerSpec {
        method: Method::TraversalMc,
        trials,
        seed,
        parallel: false,
        estimator: Some(Estimator::Word),
    }
}

fn adaptive(max_trials: u32) -> Trials {
    Trials::Adaptive(AdaptiveConfig {
        epsilon: 0.02,
        delta: 0.05,
        max_trials,
    })
}

/// Every request in a mix of fixed, adaptive-full, and adaptive-top-k
/// word queries answers byte-identically through the fused engine path
/// ([`QueryEngine::execute`]) and the solo path
/// ([`QueryEngine::execute_uncached`]): same answers, same scores, same
/// certificate. Fusion only changes which sweep executes a batch.
#[test]
fn fused_and_unfused_executions_are_byte_identical() {
    let engine = engine();
    let mut topk = QueryRequest::protein_functions("CFTR", word_spec(13, adaptive(20_000)));
    topk.top = Some(3);
    topk.certify_top = true;
    let mix = [
        QueryRequest::protein_functions("GALT", word_spec(11, Trials::Fixed(4_096))),
        QueryRequest::protein_functions("GALT", word_spec(12, adaptive(20_000))),
        topk,
    ];
    for req in &mix {
        let unfused = engine.execute_uncached(req).expect("unfused execution");
        let fused = engine.execute(req).expect("fused execution");
        assert_eq!(fused.answers, unfused.answers, "answer bytes drifted");
        assert_eq!(
            fused.certificate, unfused.certificate,
            "certificate drifted"
        );
    }

    // Every word query above ran inside a sweep, so the fusion
    // telemetry is live even without concurrency.
    let metrics = engine.metrics_snapshot();
    assert!(
        metrics.counter("fusion.batches") > 0,
        "no fused blocks recorded"
    );
    assert!(
        metrics.counter("fusion.lanes_used") >= metrics.counter("fusion.batches"),
        "every block carries at least one lane"
    );
    assert!(metrics.histogram("fusion_width").count > 0);
}

/// Concurrent identical requests collapse into one flight: one
/// result-cache entry, identical answers for every caller, and at
/// least one request served by waiting on the leader instead of
/// recomputing.
#[test]
fn concurrent_identical_queries_coalesce_into_one_flight() {
    let engine = engine();
    // Heavy enough that the flight is still running when the other
    // threads arrive (debug-build word MC at two million trials).
    let req = QueryRequest::protein_functions("GALT", word_spec(7, Trials::Fixed(2_000_000)));
    let threads = 6;
    let barrier = Arc::new(Barrier::new(threads));
    let answers: Vec<_> = (0..threads)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let req = req.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                engine.execute(&req).expect("concurrent query").answers
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("query thread"))
        .collect();

    for a in &answers[1..] {
        assert_eq!(a, &answers[0], "coalesced callers saw different bytes");
    }
    assert_eq!(
        engine.stats().results.entries,
        1,
        "identical requests share one result-cache entry"
    );
    let metrics = engine.metrics_snapshot();
    assert!(
        metrics.counter("queries.coalesced") >= 1,
        "no request coalesced onto the leader's flight"
    );
    assert_eq!(metrics.counter("queries") as usize, threads);
}

/// Concurrent *distinct* word queries on the same exploratory query
/// join one fused sweep: some propagation block carries more than one
/// job, visible as `fusion_width` recording a block whose job count
/// exceeds one (sum over blocks > block count).
#[test]
fn concurrent_distinct_word_queries_share_fused_sweeps() {
    let engine = engine();
    // Warm the graph cache so every thread reaches the sweep without
    // racing on integration.
    engine
        .execute(&QueryRequest::protein_functions(
            "GALT",
            word_spec(1, Trials::Fixed(64)),
        ))
        .expect("warm-up query");

    let threads = 4;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let req = QueryRequest::protein_functions(
                    "GALT",
                    word_spec(100 + i as u64, Trials::Fixed(1_500_000)),
                );
                engine.execute(&req).expect("distinct word query")
            })
        })
        .collect();
    for h in handles {
        let response = h.join().expect("query thread");
        assert!(!response.answers.is_empty());
    }

    let metrics = engine.metrics_snapshot();
    let width = metrics.histogram("fusion_width");
    assert!(
        width.sum > width.count,
        "no propagation block was shared across jobs \
         (sum {} over {} blocks)",
        width.sum,
        width.count
    );
}
