//! End-to-end telemetry: a live server must expose per-stage trace
//! spans on request, report counters/histograms through the `metrics`
//! admin command, and do both without perturbing the ranked answers —
//! tracing observes the query path, it never participates in it.

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    AdaptiveConfig, Client, Estimator, Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions,
    Server, ServerHandle, Trials, WorldSpec,
};

fn start_server(slow_query_micros: u64) -> ServerHandle {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServeOptions {
            workers: 2,
            slow_query_micros,
            ..Default::default()
        },
    )
    .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

fn adaptive_mc_spec() -> RankerSpec {
    RankerSpec {
        method: Method::TraversalMc,
        trials: Trials::Adaptive(AdaptiveConfig::default()),
        seed: 11,
        parallel: false,
        estimator: Some(Estimator::Word),
    }
}

fn fresh_engine() -> QueryEngine {
    let world = World::generate(WorldParams::default());
    QueryEngine::new(Mediator::new(
        biorank_schema_with_ontology().schema,
        world.registry(),
    ))
}

#[test]
fn traced_query_reports_stages_and_metrics_snapshot() {
    // Threshold 0: every query lands in the slow-query log.
    let handle = start_server(0);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let req = QueryRequest::protein_functions("GALT", adaptive_mc_spec()).traced();

    // Cold traced query: the full stage breakdown, with real time in it.
    let cold = client.query(&req).expect("cold traced query");
    assert!(!cold.cached_scores);
    let stages: Vec<&str> = cold.trace.iter().map(|s| s.stage.as_str()).collect();
    for stage in [
        "cache",
        "graph",
        "estimate",
        "certify",
        "insert",
        "serialize",
    ] {
        assert!(
            stages.contains(&stage),
            "missing stage {stage:?} in {stages:?}"
        );
    }
    assert!(cold.trace.len() >= 4);
    let total: u64 = cold.trace.iter().map(|s| s.nanos).sum();
    assert!(total > 0, "spans must carry wall-clock time");

    // Warm traced repeat: a cache hit still explains itself.
    let warm = client.query(&req).expect("warm traced query");
    assert!(warm.cached_scores);
    let warm_stages: Vec<&str> = warm.trace.iter().map(|s| s.stage.as_str()).collect();
    assert!(warm_stages.contains(&"cache"));
    assert!(warm_stages.contains(&"serialize"));
    assert_eq!(warm.answers, cold.answers);

    // An untraced request answers with no span payload at all.
    let untraced = client
        .query(&QueryRequest::protein_functions("GALT", adaptive_mc_spec()))
        .expect("untraced query");
    assert!(untraced.trace.is_empty());

    // The metrics snapshot ties the whole workload together.
    let report = client.metrics(false).expect("metrics");
    assert!(report.service.counter("server.requests") >= 3);
    assert!(report.service.histogram("server.decode_ns").count >= 3);
    assert!(report.service.histogram("server.encode_ns").count >= 3);

    let world = report
        .worlds
        .iter()
        .find(|w| w.name == "default")
        .expect("default world metrics");
    assert_eq!(world.metrics.counter("queries"), 3);
    assert_eq!(world.metrics.counter("queries.computed"), 1);
    assert_eq!(world.metrics.counter("queries.cached"), 2);
    assert_eq!(world.metrics.counter("queries.mc.word"), 3);
    assert_eq!(world.metrics.histogram("query_ns.mc.word").count, 3);
    assert!(world.metrics.histogram("query_ns.mc.word").sum > 0);
    // The cold adaptive run left one certification record.
    assert_eq!(world.metrics.histogram("trials_used").count, 1);
    assert!(world.metrics.histogram("trials_used").sum > 0);
    assert_eq!(
        world.metrics.counter("certified") + world.metrics.counter("uncertified"),
        1
    );
    // Stage histograms record for traced and untraced requests alike.
    assert_eq!(world.metrics.histogram("stage_ns.cache").count, 3);
    assert_eq!(world.metrics.histogram("stage_ns.estimate").count, 1);
    assert_eq!(world.metrics.histogram("stage_ns.certify").count, 1);
    assert_eq!(world.metrics.histogram("stage_ns.serialize").count, 3);

    // Threshold 0 put every query in the slow log.
    assert_eq!(report.slow_queries.len(), 3);
    assert!(report
        .slow_queries
        .iter()
        .all(|s| s.world == "default" && s.value == "GALT" && s.method == "mc"));
    assert!(report.slow_queries.iter().any(|s| s.cached));

    // `reset: true` zeroes everything after the snapshot.
    let drained = client.metrics(true).expect("metrics with reset");
    assert_eq!(drained.worlds[0].metrics.counter("queries"), 3);
    let after = client.metrics(false).expect("metrics after reset");
    let world = after
        .worlds
        .iter()
        .find(|w| w.name == "default")
        .expect("default world metrics");
    assert_eq!(world.metrics.counter("queries"), 0);
    assert_eq!(world.metrics.histogram("query_ns.mc.word").count, 0);
    assert!(after.slow_queries.is_empty());

    handle.shutdown();
}

#[test]
fn tracing_never_changes_answers_certificates_or_cache_keys() {
    let req = QueryRequest::protein_functions("GALT", adaptive_mc_spec());

    // Two fresh engines over the same world: a traced cold run must be
    // bit-identical to an untraced cold run.
    let plain = fresh_engine().execute(&req).expect("untraced cold run");
    let traced = fresh_engine()
        .execute(&req.clone().traced())
        .expect("traced cold run");
    assert_eq!(traced.answers, plain.answers);
    assert_eq!(traced.certificate, plain.certificate);
    assert_eq!(traced.total_answers, plain.total_answers);
    assert!(!traced.trace.is_empty() && plain.trace.is_empty());

    // And on one engine, `trace` must not split the result-cache key:
    // the traced repeat of an untraced query is a hit, with the exact
    // same ranking.
    let engine = fresh_engine();
    let first = engine.execute(&req).expect("cold");
    let second = engine
        .execute(&req.clone().traced())
        .expect("traced repeat");
    assert!(second.cached_scores, "trace must not be a cache dimension");
    assert_eq!(second.answers, first.answers);
    assert_eq!(second.certificate, first.certificate);
}

#[test]
fn per_world_query_counters_sum_to_the_requests_served() {
    let handle = start_server(u64::MAX);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .world_load(
            "b",
            WorldSpec {
                seed: 7,
                extended: false,
                cache_capacity: 64,
            },
        )
        .expect("load second world");

    // A pipelined mixed workload across both worlds: the batch runs
    // concurrently on the worker pool.
    let spec = RankerSpec::new(Method::InEdge);
    let mut batch = Vec::new();
    for protein in ["GALT", "CFTR", "GALT", "LPL"] {
        batch.push(QueryRequest::protein_functions(protein, spec.clone()));
    }
    for protein in ["GALT", "GALT"] {
        let mut req = QueryRequest::protein_functions(protein, spec.clone());
        req.world = Some("b".to_string());
        batch.push(req);
    }
    let results = client.query_batch(&batch).expect("pipelined batch");
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, batch.len());

    let report = client.metrics(false).expect("metrics");
    let per_world_total: u64 = report
        .worlds
        .iter()
        .map(|w| w.metrics.counter("queries"))
        .sum();
    assert_eq!(per_world_total, batch.len() as u64);
    for w in &report.worlds {
        assert_eq!(
            w.metrics.counter("queries"),
            w.metrics.counter("queries.cached") + w.metrics.counter("queries.computed"),
            "world {:?}: cached + computed must account for every query",
            w.name
        );
    }
    // The service saw the batch plus the admin lines, never fewer.
    assert!(report.service.counter("server.requests") >= batch.len() as u64);
    assert_eq!(report.service.counter("server.errors.decode"), 0);

    handle.shutdown();
}
