//! Multi-world tenancy, end to end over the wire: the admin control
//! plane (`world.load` / `world.swap` / `world.evict` / `world.list` /
//! `stats`) driven through a real `Client`, swap invalidation of both
//! cache layers, LRU eviction under the resident budget, and
//! determinism for concurrent clients pinned to distinct worlds.

use std::sync::Arc;

use biorank::service::{
    Client, Method, QueryRequest, RankerSpec, ServeOptions, Server, ServerHandle, Trials,
    WorldManager, WorldSpec, DEFAULT_WORLD,
};

fn spec_with_seed(seed: u64) -> WorldSpec {
    WorldSpec {
        seed,
        ..WorldSpec::default()
    }
}

fn start_server(budget: usize, workers: usize) -> ServerHandle {
    let manager = Arc::new(WorldManager::new(budget));
    manager
        .load(DEFAULT_WORLD, WorldSpec::default())
        .expect("load default world");
    let server = Server::bind_manager(
        "127.0.0.1:0",
        manager,
        ServeOptions {
            workers,
            ..Default::default()
        },
    )
    .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

fn galt(world: Option<&str>) -> QueryRequest {
    let mut req = QueryRequest::protein_functions(
        "GALT",
        RankerSpec {
            method: Method::Reliability,
            trials: Trials::Fixed(300),
            seed: 11,
            parallel: false,
            estimator: None,
        },
    );
    req.world = world.map(str::to_string);
    req
}

#[test]
fn admin_commands_round_trip_over_the_wire() {
    let handle = start_server(4, 2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Load a second world and see it in the registry listing.
    let staging = spec_with_seed(0xFEED);
    // Generations come from one registry-wide counter; the default
    // world took 1, so the first extra world gets 2.
    let generation = client.world_load("staging", staging).expect("world.load");
    assert_eq!(generation, 2);
    let worlds = client.world_list().expect("world.list");
    let names: Vec<&str> = worlds.iter().map(|w| w.name.as_str()).collect();
    assert_eq!(names, vec![DEFAULT_WORLD, "staging"]);
    assert_eq!(worlds[1].spec, staging);

    // Loading again with the identical spec is an idempotent no-op...
    assert_eq!(
        client.world_load("staging", staging).expect("reload"),
        generation
    );
    // ...but with a different spec it is a refused replacement.
    let err = client
        .world_load("staging", spec_with_seed(0xBEEF))
        .expect_err("spec mismatch");
    assert!(err.to_string().contains("world.swap"), "{err}");

    // Queries route by world name; unknown names are domain errors.
    let on_staging = client.query(&galt(Some("staging"))).expect("routed query");
    assert_eq!(on_staging.total_answers, 15, "Table 1 holds in any world");
    let err = client
        .query(&galt(Some("nope")))
        .expect_err("unknown world");
    assert!(err.to_string().contains("not resident"), "{err}");

    // Stats name every resident world and count the traffic above.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.budget, 4);
    assert_eq!(stats.resident, 2);
    let staging_stats = stats
        .worlds
        .iter()
        .find(|w| w.name == "staging")
        .expect("staging in stats");
    assert_eq!(staging_stats.engine.results.misses, 1);
    assert_eq!(staging_stats.engine.results.hits, 0);
    assert_eq!(staging_stats.engine.results.hit_rate(), 0.0);

    // Evict and confirm it is gone; the default world is pinned.
    client.world_evict("staging").expect("world.evict");
    let names: Vec<String> = client
        .world_list()
        .expect("world.list")
        .into_iter()
        .map(|w| w.name)
        .collect();
    assert_eq!(names, vec![DEFAULT_WORLD.to_string()]);
    assert!(client.query(&galt(Some("staging"))).is_err());
    let err = client.world_evict(DEFAULT_WORLD).expect_err("pinned");
    assert!(err.to_string().contains("pinned"), "{err}");

    handle.shutdown();
}

/// The acceptance criterion: after `world.swap`, identical queries must
/// recompute — a swap atomically invalidates BOTH cache layers of the
/// replaced engine, so no stale ranked answer can survive it.
#[test]
fn swap_invalidates_both_cache_layers() {
    let handle = start_server(4, 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let g1 = client
        .world_load("live", spec_with_seed(0xA11CE))
        .expect("load");

    // Warm both layers.
    let cold = client.query(&galt(Some("live"))).expect("cold");
    assert!(!cold.cached_graph && !cold.cached_scores);
    let warm = client.query(&galt(Some("live"))).expect("warm");
    assert!(
        warm.cached_graph && warm.cached_scores,
        "both layers must be warm before the swap"
    );
    assert_eq!(warm.answers, cold.answers);

    // Swap to the *same* spec with warm-up disabled (`warm: 0`): the
    // data is identical, but the caches must not be — the very same
    // query recomputes from scratch. (Default swaps replay the hottest
    // keys into the fresh engine; that replay is itself a fresh
    // computation, which `swap_warmup_replays_fresh_values` pins.)
    let g2 = client
        .world_swap_warm("live", spec_with_seed(0xA11CE), 0)
        .expect("swap");
    assert!(g2 > g1, "swap must bump the generation");
    let post_swap = client.query(&galt(Some("live"))).expect("post-swap");
    assert!(
        !post_swap.cached_graph && !post_swap.cached_scores,
        "post-swap query must recompute both layers, got graph={} scores={}",
        post_swap.cached_graph,
        post_swap.cached_scores
    );
    // Same world spec + content-derived seeds ⇒ recomputation agrees.
    assert_eq!(post_swap.answers, cold.answers);

    // Swap to a different seed: fresh results, not the old world's.
    client
        .world_swap_warm("live", spec_with_seed(0xB0B), 0)
        .expect("swap data");
    let other_world = client.query(&galt(Some("live"))).expect("new data");
    assert!(!other_world.cached_scores);
    let scores =
        |r: &biorank::service::QueryResponse| r.answers.iter().map(|a| a.score).collect::<Vec<_>>();
    assert_ne!(
        scores(&other_world),
        scores(&cold),
        "a different world seed must produce different evidence scores"
    );

    handle.shutdown();
}

/// Distinct worlds, concurrent clients: every client sees exactly the
/// rankings its world would produce single-threaded, regardless of
/// interleaving on the shared worker pool.
#[test]
fn concurrent_clients_on_distinct_worlds_are_deterministic() {
    let handle = start_server(4, 8);
    let mut admin = Client::connect(handle.addr()).expect("connect admin");
    admin.world_load("w1", spec_with_seed(1)).expect("w1");
    admin.world_load("w2", spec_with_seed(2)).expect("w2");

    let request = |world: &str| {
        let mut req = QueryRequest::protein_functions(
            "CFTR",
            RankerSpec {
                method: Method::TraversalMc,
                trials: Trials::Fixed(200),
                seed: 3,
                parallel: false,
                estimator: None,
            },
        );
        req.world = Some(world.to_string());
        req
    };

    // Single-threaded reference rankings, one per world.
    let reference: Vec<_> = ["w1", "w2"]
        .iter()
        .map(|w| admin.query(&request(w)).expect("reference").answers)
        .collect();
    assert_ne!(
        reference[0], reference[1],
        "different world seeds must rank differently"
    );

    let addr = handle.addr();
    std::thread::scope(|s| {
        for t in 0..6usize {
            let world = if t % 2 == 0 { "w1" } else { "w2" };
            let expected = reference[t % 2].clone();
            let request = request(world);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..3 {
                    let resp = client.query(&request).expect("routed query");
                    assert_eq!(resp.answers, expected, "world {world}");
                }
            });
        }
    });

    handle.shutdown();
}

/// Admin commands are a per-connection barrier: a client may write
/// `query, world.swap, query` in one burst without waiting, and the
/// second query must still see the post-swap (cold-cache) world —
/// never a stale pre-swap cached answer.
#[test]
fn pipelined_swap_is_a_barrier_between_queries() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let handle = start_server(4, 4);
    let mut admin = Client::connect(handle.addr()).expect("connect admin");
    admin.world_load("live", spec_with_seed(7)).expect("load");
    // Warm both cache layers so a barrier violation would be visible
    // as cached_scores=true on the post-swap query.
    admin.query(&galt(Some("live"))).expect("warm 1");
    let warm = admin.query(&galt(Some("live"))).expect("warm 2");
    assert!(warm.cached_scores);

    let stream = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let query_line = |id: u64| {
        format!(
            "{{\"id\":{id},\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
             \"value\":\"GALT\",\"outputs\":[\"AmiGO\"],\"method\":\"rel\",\
             \"trials\":300,\"seed\":\"11\",\"world\":\"live\"}}"
        )
    };
    // One write, three pipelined lines: cached query, swap (with
    // warm-up off, so the post-swap cold recompute is observable),
    // query.
    let burst = format!(
        "{}\n{{\"id\":2,\"cmd\":\"world.swap\",\"world\":\"live\",\"seed\":\"7\",\"warm\":0}}\n{}\n",
        query_line(1),
        query_line(3)
    );
    (&stream).write_all(burst.as_bytes()).expect("write burst");
    let mut read = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line
    };
    let first = read();
    assert!(
        first.contains("\"id\":1") && first.contains("\"cached_scores\":true"),
        "pre-swap query should hit the warm cache: {first}"
    );
    let swap = read();
    assert!(
        swap.contains("\"id\":2") && swap.contains("\"ok\":true"),
        "{swap}"
    );
    let second = read();
    assert!(
        second.contains("\"id\":3") && second.contains("\"cached_scores\":false"),
        "post-swap pipelined query must recompute, not see the old cache: {second}"
    );

    handle.shutdown();
}

#[test]
fn lru_eviction_respects_budget_over_the_wire() {
    // Budget 2: the pinned default plus one evictable slot.
    let handle = start_server(2, 2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.world_load("a", spec_with_seed(1)).expect("a");
    client
        .world_load("b", spec_with_seed(2))
        .expect("b evicts a");
    let names: Vec<String> = client
        .world_list()
        .expect("list")
        .into_iter()
        .map(|w| w.name)
        .collect();
    assert_eq!(names, vec!["b".to_string(), DEFAULT_WORLD.to_string()]);
    assert!(client.query(&galt(Some("a"))).is_err(), "a was evicted");
    assert!(client.query(&galt(Some("b"))).is_ok());
    // The pinned default keeps serving throughout.
    assert!(client.query(&galt(None)).is_ok());

    handle.shutdown();
}

/// Default swaps replay the replaced engine's hottest cached queries
/// into the fresh engine before install: the hot query stays a cache
/// hit across the swap, but its value is the NEW world's — warm-up can
/// never resurrect a pre-swap answer.
#[test]
fn swap_warmup_replays_fresh_values() {
    let handle = start_server(4, 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .world_load("live", spec_with_seed(0xAA))
        .expect("load");

    // Make GALT the hot key of the outgoing engine.
    let before = client.query(&galt(Some("live"))).expect("hot query");
    assert!(
        client
            .query(&galt(Some("live")))
            .expect("warm repeat")
            .cached_scores
    );

    // Default swap (warm-up on) to a *different* world seed.
    client
        .world_swap("live", spec_with_seed(0xBB))
        .expect("swap");
    let after = client.query(&galt(Some("live"))).expect("post-swap");
    assert!(
        after.cached_scores,
        "the hot query must not fall off a latency cliff after the swap"
    );
    let scores =
        |r: &biorank::service::QueryResponse| r.answers.iter().map(|a| a.score).collect::<Vec<_>>();
    assert_ne!(
        scores(&after),
        scores(&before),
        "warmed entries are fresh computations on the new world, never replayed answers"
    );

    handle.shutdown();
}

/// `world.load` with `background: true` answers immediately, lists the
/// world as `loading`, and installs it from a worker thread; queries
/// routed to it fail with a dedicated error until then.
#[test]
fn background_load_over_the_wire() {
    use biorank::service::WorldState;

    let handle = start_server(4, 2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let started = client
        .world_load_background("bg", spec_with_seed(0xCC))
        .expect("accepted");
    assert_eq!(started, None, "a fresh build is accepted, not resident");

    // Either we catch the loading window (state listed, queries
    // refused with "still loading") or the worker already finished —
    // both are legal; what matters is the world eventually serves.
    if let Some(info) = client
        .world_list()
        .expect("list")
        .into_iter()
        .find(|w| w.name == "bg")
    {
        if info.state == WorldState::Loading {
            assert_eq!(info.generation, 0);
            let err = client
                .query(&galt(Some("bg")))
                .expect_err("loading world refuses queries");
            assert!(err.to_string().contains("loading"), "{err}");
        }
    }

    let mut ready = false;
    for _ in 0..600 {
        let info = client
            .world_list()
            .expect("list")
            .into_iter()
            .find(|w| w.name == "bg");
        if matches!(&info, Some(w) if w.state == WorldState::Ready) {
            ready = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(ready, "background load must eventually install the world");
    assert_eq!(
        client
            .query(&galt(Some("bg")))
            .expect("serves")
            .total_answers,
        15
    );
    // Re-issuing the background load now reports the live generation.
    assert!(client
        .world_load_background("bg", spec_with_seed(0xCC))
        .expect("resident")
        .is_some());

    handle.shutdown();
}
