//! Property tests for wire-protocol robustness under hostile input:
//! random byte garbage, truncated JSON prefixes, oversized lines, and
//! valid queries interleaved among them. The server must never panic,
//! never buffer past its request-size cap, and — for every complete
//! (newline-terminated) request line — either answer with exactly one
//! response line or close the connection. A canonical query after
//! each hostile session proves the server survived it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{QueryEngine, ServeOptions, Server, ServerHandle};
use proptest::prelude::*;

/// One server shared across every proptest case: world generation is
/// the expensive part, and surviving hundreds of hostile sessions on
/// one process is exactly the property under test.
const MAX_REQUEST_BYTES: usize = 512;

fn server() -> &'static ServerHandle {
    static HANDLE: OnceLock<ServerHandle> = OnceLock::new();
    HANDLE.get_or_init(|| {
        let world = World::generate(WorldParams::default());
        let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
        let engine = Arc::new(QueryEngine::new(mediator));
        let server = Server::bind(
            "127.0.0.1:0",
            engine,
            ServeOptions {
                workers: 2,
                max_request_bytes: MAX_REQUEST_BYTES,
                ..Default::default()
            },
        )
        .expect("bind ephemeral");
        let handle = server.handle().expect("server handle");
        std::thread::spawn(move || server.run().expect("server run"));
        handle
    })
}

const VALID_QUERY: &str = "{\"id\":1,\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
                           \"value\":\"GALT\",\"outputs\":[\"AmiGO\"],\"method\":\"inedge\"}";

/// One hostile request line (newline added by the writer).
#[derive(Clone, Debug)]
enum Line {
    /// Arbitrary bytes, possibly invalid UTF-8, newlines laundered.
    Garbage(Vec<u8>),
    /// A prefix of a valid query: truncated mid-structure.
    Truncated(usize),
    /// A line guaranteed past the request-size cap.
    Oversized(usize),
    /// A well-formed query that must be answered if it is reached.
    Valid,
}

fn line_strategy() -> impl Strategy<Value = Line> {
    // The vendored proptest has no `prop_oneof!`: draw every variant's
    // payload plus a tag and let the tag pick.
    (
        0u8..4,
        proptest::collection::vec(0u8..=255, 0..96),
        1usize..VALID_QUERY.len(),
        MAX_REQUEST_BYTES + 1..MAX_REQUEST_BYTES + 512,
    )
        .prop_map(|(tag, garbage, truncate_at, oversize)| match tag {
            0 => Line::Garbage(garbage),
            1 => Line::Truncated(truncate_at),
            2 => Line::Oversized(oversize),
            _ => Line::Valid,
        })
}

impl Line {
    fn bytes(&self) -> Vec<u8> {
        match self {
            Line::Garbage(raw) => raw
                .iter()
                .map(|&b| if b == b'\n' || b == b'\r' { b'.' } else { b })
                .collect(),
            Line::Truncated(len) => VALID_QUERY.as_bytes()[..*len].to_vec(),
            Line::Oversized(len) => {
                let mut line = format!("{{\"id\":2,\"pad\":\"{}", "x".repeat(*len)).into_bytes();
                line.extend_from_slice(b"\"}");
                line
            }
            Line::Valid => VALID_QUERY.as_bytes().to_vec(),
        }
    }
}

/// Plays one hostile session: every complete line either gets exactly
/// one response line or the connection closes (after which further
/// writes are pointless and further answers impossible).
fn play(lines: &[Line]) {
    let handle = server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for line in lines {
        let mut bytes = line.bytes();
        // Whitespace-only lines are skipped by the server, not
        // answered — expecting a response would be the test hanging
        // itself.
        let blank = String::from_utf8_lossy(&bytes).trim().is_empty();
        bytes.push(b'\n');
        if (&stream).write_all(&bytes).is_err() {
            // The server already closed (an earlier oversized line);
            // a dead connection is a valid outcome, not a hang.
            return;
        }
        if blank {
            continue;
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) => return, // closed: the only alternative to answering
            Ok(_) => {
                // Every answer is one well-formed response line that
                // echoes a verdict — never a crash dump, never silence.
                assert!(
                    response.contains("\"ok\":true") || response.contains("\"ok\":false"),
                    "unrecognizable response to {line:?}: {response}"
                );
                if matches!(line, Line::Valid) {
                    assert!(
                        response.contains("\"ok\":true") && response.contains("\"total\":15"),
                        "valid query mis-answered after hostile lines: {response}"
                    );
                }
                if matches!(line, Line::Oversized(_)) {
                    assert!(
                        response.contains(&format!("{MAX_REQUEST_BYTES} bytes")),
                        "oversized rejection names the cap: {response}"
                    );
                }
            }
            // A reset is the server closing with our later bytes
            // still unread — "closed", just ruder than FIN.
            Err(e) if is_disconnect(&e) => return,
            Err(e) => panic!("server neither answered nor closed within 10s: {e}"),
        }
    }
}

fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// The liveness probe run after every hostile session: a fresh
/// connection must still get the Table 1 answer.
fn assert_server_alive() {
    let handle = server();
    let stream = TcpStream::connect(handle.addr()).expect("reconnect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    (&stream)
        .write_all(format!("{VALID_QUERY}\n").as_bytes())
        .expect("write probe");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("read probe");
    assert!(
        response.contains("\"ok\":true") && response.contains("\"total\":15"),
        "server unhealthy after hostile session: {response}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hostile_lines_never_hang_never_kill_the_server(
        lines in proptest::collection::vec(line_strategy(), 1..8)
    ) {
        play(&lines);
        assert_server_alive();
    }

    #[test]
    fn raw_garbage_streams_always_answered_or_closed(
        raw in proptest::collection::vec(0u8..=255, 0..256)
    ) {
        // No framing at all: dump raw bytes (newlines included, so
        // this may be several "lines" of pure noise), then close the
        // write half and drain. Whatever comes back must be complete
        // response lines, and the server must survive.
        let handle = server();
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set timeout");
        (&stream).write_all(&raw).expect("write noise");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut reader = BufReader::new(stream);
        loop {
            let mut response = String::new();
            match reader.read_line(&mut response) {
                Ok(0) => break,
                Ok(_) => prop_assert!(
                    response.contains("\"ok\":"),
                    "noise produced a non-response line: {response}"
                ),
                Err(e) if is_disconnect(&e) => break,
                Err(e) => panic!("server neither answered nor closed within 10s: {e}"),
            }
        }
        assert_server_alive();
    }
}
