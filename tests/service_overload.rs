//! Overload resilience, proven against a live server: connection
//! sheds under a flood, slow-loris reaping, oversized-request
//! rejection, queue backpressure, deadlines firing mid-estimate
//! (via fault-injected estimator stalls), graceful drain with zero
//! dropped in-flight queries, per-connection rate limiting, and the
//! client's bounded retry-with-backoff — with every shed accounted
//! for in the metrics registry, and admitted queries answering
//! bit-identically to unloaded runs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    Client, ClientOptions, Estimator, FaultPlan, Method, QueryEngine, QueryRequest, RankerSpec,
    ServeOptions, Server, ServerHandle, Trials,
};

fn start_server(opts: ServeOptions) -> ServerHandle {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind("127.0.0.1:0", engine, opts).expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    handle
}

/// A cheap deterministic query: `InEdge` needs one trial and no
/// estimator, so tests that exercise admission — not ranking — stay
/// fast.
fn cheap_request(id_protein: &str) -> QueryRequest {
    QueryRequest::protein_functions(
        id_protein,
        RankerSpec {
            method: Method::InEdge,
            trials: Trials::Fixed(1),
            seed: 0,
            parallel: false,
            estimator: None,
        },
    )
}

/// A fused word-engine query: `TraversalMc` + `Word` is the one path
/// that polls the fault plan's per-block estimator stall, so its
/// duration is controlled by `stall_batch_ms` × block count
/// (`FUSION_LANES` × 64 trials per block) rather than machine speed.
fn fused_request(trials: u32, seed: u64) -> QueryRequest {
    QueryRequest::protein_functions(
        "GALT",
        RankerSpec {
            method: Method::TraversalMc,
            trials: Trials::Fixed(trials),
            seed,
            parallel: false,
            estimator: Some(Estimator::Word),
        },
    )
}

/// Opens a raw connection and proves the server has a thread on it
/// (a malformed line round-trips an error response), so a later
/// connection attempt deterministically finds the budget consumed.
fn held_connection(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect held");
    (&stream).write_all(b"not json\n").expect("write probe");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read probe");
    assert!(line.contains("\"ok\":false"), "probe response: {line}");
    stream
}

/// The estimator-stall fault is process-global (one atomic polled per
/// fused block), so tests that install one serialize on this lock and
/// clear the stall on drop — even on panic.
static STALL_LOCK: Mutex<()> = Mutex::new(());

struct StallGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl StallGuard {
    fn take() -> StallGuard {
        StallGuard(STALL_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for StallGuard {
    fn drop(&mut self) {
        biorank::service::admission::set_stall_batch_ms(0);
    }
}

#[test]
fn flood_past_connection_budget_sheds_with_retry_hint() {
    let handle = start_server(ServeOptions {
        workers: 2,
        max_connections: 2,
        ..Default::default()
    });

    // Fill the budget with two live connections...
    let held_a = held_connection(&handle);
    let held_b = held_connection(&handle);

    // ...and the third gets the id-less shed notice, then EOF: no
    // thread was spawned for it.
    let shed = TcpStream::connect(handle.addr()).expect("connect shed");
    let mut reader = BufReader::new(shed);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read shed notice");
    let retry_after_ms = biorank::service::wire::parse_overload_line(&line)
        .unwrap_or_else(|| panic!("expected overload notice, got: {line}"));
    assert!(retry_after_ms > 0);
    assert!(!line.contains("\"id\""), "shed notice is id-less: {line}");
    let mut rest = String::new();
    reader.read_line(&mut rest).expect("read after shed");
    assert!(rest.is_empty(), "connection closes after the notice");

    // Freeing one slot readmits: the same client that was just shed
    // can reconnect and audit the shed in the metrics.
    drop(held_a);
    let mut client = reconnect_until_admitted(&handle);
    let report = client.metrics(false).expect("metrics");
    assert!(
        report.service.counter("shed.connections") >= 1,
        "every shed is counted: {:?}",
        report.service.counters
    );

    drop(held_b);
    handle.shutdown();
}

/// Reconnects until the freed permit is visible to the accept loop —
/// the release races with the next accept, so a bounded retry is the
/// honest client behavior (and exactly what `query_with_retry`
/// automates).
fn reconnect_until_admitted(handle: &ServerHandle) -> Client {
    for _ in 0..100 {
        let mut client = match Client::connect(handle.addr()) {
            Ok(c) => c,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        match client.stats() {
            Ok(_) => return client,
            Err(e) if e.is_overload() => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("unexpected error while reconnecting: {e}"),
        }
    }
    panic!("never readmitted after freeing a connection slot");
}

#[test]
fn slow_loris_is_reaped_but_idle_connection_is_not() {
    let handle = start_server(ServeOptions {
        workers: 2,
        read_timeout_ms: 150,
        ..Default::default()
    });

    // An idle connection (empty read buffer) survives many timeout
    // periods: opened before the loris, used after it is reaped.
    let mut idle = Client::connect(handle.addr()).expect("idle connect");

    // The loris dribbles half a request line and stalls; the server
    // reaps it instead of holding the buffer forever.
    let loris = TcpStream::connect(handle.addr()).expect("loris connect");
    (&loris)
        .write_all(b"{\"id\":1,\"inp")
        .expect("partial write");
    let mut buf = [0u8; 64];
    // Blocks until the server reaps the connection; a byte here would
    // mean the server answered half a request line.
    let n = (&loris).read(&mut buf).unwrap_or(0);
    assert_eq!(
        n, 0,
        "server must close, not answer, a stalled partial line"
    );

    // The idle connection still works long after the read timeout.
    std::thread::sleep(Duration::from_millis(400));
    let stats = idle.stats().expect("idle connection still serves");
    assert!(!stats.worlds.is_empty());

    let report = idle.metrics(false).expect("metrics");
    assert!(
        report.service.counter("limits.read_timeouts") >= 1,
        "loris reap is counted: {:?}",
        report.service.counters
    );

    handle.shutdown();
}

#[test]
fn oversized_request_is_rejected_without_buffering() {
    let handle = start_server(ServeOptions {
        workers: 2,
        max_request_bytes: 256,
        ..Default::default()
    });

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let huge = format!("{{\"id\":7,\"pad\":\"{}\"}}\n", "x".repeat(4096));
    (&stream).write_all(huge.as_bytes()).expect("write huge");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read rejection");
    assert!(
        line.contains("\"ok\":false") && line.contains("256 bytes"),
        "rejection names the cap: {line}"
    );
    // Framing is lost past the cap, so the connection closes — by
    // FIN, or by RST when our bytes past the cap were never read.
    let mut rest = String::new();
    let closed = match reader.read_line(&mut rest) {
        Ok(n) => n == 0,
        Err(_) => true,
    };
    assert!(closed, "connection closes after oversized line: {rest}");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let report = client.metrics(false).expect("metrics");
    assert!(report.service.counter("limits.oversized_requests") >= 1);

    handle.shutdown();
}

#[test]
fn queue_bound_sheds_requests_while_one_is_in_flight() {
    let _stall = StallGuard::take();
    let handle = start_server(ServeOptions {
        workers: 2,
        queue_depth: 1,
        // 2048 fixed trials = 4 fused blocks of 8×64; each block
        // stalls 150 ms, pinning the in-flight query's duration.
        fault_plan: Some(FaultPlan {
            stall_batch_ms: 150,
            ..Default::default()
        }),
        ..Default::default()
    });
    let addr = handle.addr();

    let slow = std::thread::spawn(move || {
        let mut a = Client::connect(addr).expect("client a");
        a.query(&fused_request(2048, 3))
            .expect("slow query completes")
    });

    // While the slow query holds the only queue slot, a second
    // connection's query is refused with a backoff hint.
    std::thread::sleep(Duration::from_millis(250));
    let mut b = Client::connect(addr).expect("client b");
    let err = b
        .query(&cheap_request("CFTR"))
        .expect_err("queue-full query is shed");
    assert!(err.is_overload(), "queue shed is an overload: {err}");
    assert!(err.to_string().contains("queue full"), "{err}");
    assert!(err.retry_after_ms().is_some(), "shed carries a hint: {err}");

    // The admitted query is unharmed by the shed next to it.
    let resp = slow.join().expect("join slow");
    assert_eq!(resp.total_answers, 15);

    let report = b.metrics(false).expect("metrics");
    assert!(report.service.counter("shed.requests") >= 1);

    handle.shutdown();
}

#[test]
fn deadline_fires_mid_estimate_and_does_not_poison_the_cache() {
    let _stall = StallGuard::take();
    let handle = start_server(ServeOptions {
        workers: 2,
        fault_plan: Some(FaultPlan {
            stall_batch_ms: 250,
            ..Default::default()
        }),
        ..Default::default()
    });

    // 5 000 trials = 10 stalled blocks ≈ 2.5 s of injected stall, but
    // the 100 ms deadline aborts after the first block's poll.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let req = fused_request(5_000, 11).with_deadline_ms(100);
    let err = client.query(&req).expect_err("deadline fires mid-run");
    let msg = err.to_string();
    assert!(msg.contains("deadline_exceeded"), "{msg}");
    assert!(
        !msg.contains("after 0 trials"),
        "aborted mid-estimate, not while queued: {msg}"
    );

    let report = client.metrics(false).expect("metrics");
    assert!(report.service.counter("deadline.exceeded") >= 1);

    // The aborted run left nothing in the result cache: the same
    // content without a deadline (stall cleared) computes fresh and
    // answers correctly.
    biorank::service::admission::set_stall_batch_ms(0);
    let resp = client
        .query(&fused_request(5_000, 11))
        .expect("undeadlined rerun succeeds");
    assert_eq!(resp.total_answers, 15);
    assert!(!resp.cached_scores, "the aborted run must not have cached");

    handle.shutdown();
}

#[test]
fn drain_finishes_in_flight_queries_and_server_exits_cleanly() {
    let _stall = StallGuard::take();
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServeOptions {
            workers: 2,
            // 1 536 trials = 3 fused blocks × 200 ms stall ≈ 600 ms:
            // comfortably in flight when the drain lands.
            fault_plan: Some(FaultPlan {
                stall_batch_ms: 200,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let run = std::thread::spawn(move || server.run());

    let in_flight = std::thread::spawn(move || {
        let mut a = Client::connect(addr).expect("client a");
        a.query(&fused_request(1_536, 5))
            .expect("in-flight query answered")
    });

    std::thread::sleep(Duration::from_millis(250));
    let mut b = Client::connect(addr).expect("client b");
    let worlds = b.drain().expect("drain over the wire");
    assert_eq!(worlds, 0, "no store attached, nothing to checkpoint");
    drop(b);

    // The in-flight query was answered, not dropped.
    let resp = in_flight.join().expect("join in-flight");
    assert_eq!(resp.total_answers, 15);

    // run() returns Ok — the CLI process exits 0 from here.
    run.join()
        .expect("join server")
        .expect("run returns cleanly");

    // New connections are refused outright once drained.
    assert!(
        TcpStream::connect(addr)
            .map(|s| {
                let mut buf = [0u8; 8];
                (&s).read(&mut buf).map(|n| n == 0).unwrap_or(true)
            })
            .unwrap_or(true),
        "post-drain connections get nothing"
    );

    let snapshot = handle.metrics().snapshot();
    assert_eq!(snapshot.counter("drain.requested"), 1);
    assert_eq!(snapshot.counter("drain.completed"), 1);
    assert_eq!(
        snapshot.counter("drain.dropped_in_flight"),
        0,
        "zero dropped in-flight: {:?}",
        snapshot.counters
    );
}

#[test]
fn rate_limit_sheds_burst_but_connection_survives() {
    let handle = start_server(ServeOptions {
        workers: 2,
        rate_limit_per_sec: Some(1),
        ..Default::default()
    });

    let mut client = Client::connect(handle.addr()).expect("connect");
    let first = client
        .query(&cheap_request("GALT"))
        .expect("first in budget");
    assert_eq!(first.total_answers, 15);
    let err = client
        .query(&cheap_request("CFTR"))
        .expect_err("burst is shed");
    assert!(err.is_overload(), "{err}");
    assert!(err.to_string().contains("rate limit"), "{err}");

    // The shed did not kill the connection: after the bucket refills,
    // the same client is served again.
    std::thread::sleep(Duration::from_millis(1_100));
    let again = client.query(&cheap_request("CFTR")).expect("after refill");
    assert_eq!(again.total_answers, 90);

    // Metrics over a fresh connection (its bucket is full).
    let mut auditor = Client::connect(handle.addr()).expect("auditor");
    let report = auditor.metrics(false).expect("metrics");
    assert!(report.service.counter("shed.rate_limited") >= 1);

    handle.shutdown();
}

#[test]
fn client_retry_with_backoff_recovers_once_capacity_frees() {
    let handle = start_server(ServeOptions {
        workers: 2,
        max_connections: 1,
        retry_after_ms: 25,
        ..Default::default()
    });
    let addr = handle.addr();
    let held = held_connection(&handle);

    let retrying = std::thread::spawn(move || {
        Client::query_with_retry(addr, ClientOptions::default(), &cheap_request("GALT"), 8)
    });

    // Hold the only slot through the first backoff rounds, then free
    // it; a later retry is admitted and answers.
    std::thread::sleep(Duration::from_millis(200));
    drop(held);
    let resp = retrying
        .join()
        .expect("join retrier")
        .expect("retry eventually admitted");
    assert_eq!(resp.total_answers, 15);

    handle.shutdown();
}

#[test]
fn admitted_queries_answer_bit_identically_to_unloaded_runs() {
    let unloaded = start_server(ServeOptions {
        workers: 2,
        ..Default::default()
    });
    let flooded = start_server(ServeOptions {
        workers: 2,
        max_connections: 3,
        ..Default::default()
    });

    // Saturate all but one slot of the flooded server, and prove the
    // flood is real: one extra connection attempt is shed.
    let _held_a = held_connection(&flooded);
    let _held_b = held_connection(&flooded);
    {
        let mut admitted = Client::connect(flooded.addr()).expect("last slot");
        admitted.stats().expect("admitted");
        let shed = TcpStream::connect(flooded.addr()).expect("connect over budget");
        let mut line = String::new();
        BufReader::new(shed).read_line(&mut line).expect("notice");
        assert!(
            biorank::service::wire::parse_overload_line(&line).is_some(),
            "{line}"
        );
        drop(admitted);
    }

    let spec = RankerSpec {
        method: Method::Reliability,
        trials: Trials::Fixed(2_000),
        seed: 77,
        parallel: false,
        estimator: None,
    };
    let req = QueryRequest::protein_functions("GALT", spec);
    let mut calm = Client::connect(unloaded.addr()).expect("calm client");
    let baseline = calm.query(&req).expect("unloaded run");

    let mut loaded = reconnect_until_admitted(&flooded);
    let under_load = loaded.query(&req).expect("admitted under load");

    // Seeds derive from request content, so admission pressure can
    // shed or delay a query but never change its answer.
    assert_eq!(baseline.answers, under_load.answers);
    assert_eq!(baseline.total_answers, under_load.total_answers);

    unloaded.shutdown();
    flooded.shutdown();
}
