//! Cross-crate consistency: the same quantities computed through
//! different layers must agree.

use biorank::eval::{average_precision, random_ap};
use biorank::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reliability computed four ways on mediator-produced graphs.
#[test]
fn four_reliability_evaluators_agree_on_small_queries() {
    let world = World::generate(WorldParams::default());
    let m = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    // CNTS and GALT have the smallest answer sets in Table 1.
    for protein in ["CNTS", "GALT", "GLDC"] {
        let result = m
            .execute(&ExploratoryQuery::protein_functions(protein))
            .expect("integration succeeds");
        let q = &result.query;
        let closed = ClosedReliability::default().score(q).expect("closed");
        let mc = TraversalMc::new(80_000, 17).score(q).expect("mc");
        for &a in q.answers() {
            let c = closed.get(a);
            // Factoring/enumeration ground truth per answer.
            let st = q.single_target(a).expect("single target");
            if let Some(t) = st.target {
                let truth = biorank::graph::exact::factoring(&st.graph, st.source, t, None)
                    .expect("factoring");
                assert!(
                    (c - truth).abs() < 1e-9,
                    "{protein}/{a}: closed {c} vs {truth}"
                );
            }
            assert!(
                (c - mc.get(a)).abs() < 0.02,
                "{protein}/{a}: closed {c} vs MC"
            );
        }
    }
}

/// Theorem 3.2 in action: the plain Fig. 1 schema is per-answer
/// reducible, so EVERY answer of EVERY query against it must be solved
/// by the reduction rules alone — no factoring, no Monte Carlo.
#[test]
fn plain_fig1_instances_always_solve_closed_form() {
    use biorank::rank::SolveMode;
    let world = World::generate(WorldParams::default());
    let m = Mediator::new(biorank::schema::biorank_schema().schema, world.registry());
    for protein in ["ABCC8", "ATP7A", "MLH1", "DP0843", "SO_0599"] {
        let result = m
            .execute(&ExploratoryQuery::protein_functions(protein))
            .expect("integration succeeds");
        let (_, modes) = ClosedReliability::default()
            .score_with_modes(&result.query)
            .expect("closed evaluation");
        assert!(
            modes.iter().all(|&mode| mode == SolveMode::Closed),
            "{protein}: some answers needed fallback: {modes:?}"
        );
    }
}

/// Propagation == reliability exactly on instances of the plain Fig. 1
/// schema (no ontology links): those per-answer graphs are
/// series-parallel, so the local semantics loses nothing.
#[test]
fn plain_fig1_graphs_make_propagation_exact() {
    let world = World::generate(WorldParams::default());
    let m = Mediator::new(biorank::schema::biorank_schema().schema, world.registry());
    let result = m
        .execute(&ExploratoryQuery::protein_functions("AGPAT2"))
        .expect("integration succeeds");
    let q = &result.query;
    let prop = Propagation::auto().score(q).expect("prop");
    let rel = ClosedReliability::default().score(q).expect("rel");
    for &a in q.answers() {
        assert!(
            (prop.get(a) - rel.get(a)).abs() < 1e-9,
            "answer {a}: prop {} vs rel {}",
            prop.get(a),
            rel.get(a)
        );
    }
}

/// With ontology links the graphs stop being series-parallel and
/// propagation must dominate reliability (strictly somewhere).
#[test]
fn ontology_links_create_propagation_overcounting() {
    let world = World::generate(WorldParams::default());
    let m = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let mut strict_somewhere = false;
    for protein in ["ABCC8", "ATP7A", "MLH1"] {
        let result = m
            .execute(&ExploratoryQuery::protein_functions(protein))
            .expect("integration succeeds");
        let q = &result.query;
        let prop = Propagation::auto().score(q).expect("prop");
        let rel = ClosedReliability::default().score(q).expect("rel");
        for &a in q.answers() {
            assert!(
                prop.get(a) >= rel.get(a) - 1e-9,
                "{protein}/{a}: propagation below reliability"
            );
            if prop.get(a) > rel.get(a) + 1e-6 {
                strict_somewhere = true;
            }
        }
    }
    assert!(strict_somewhere, "expected at least one strict inequality");
}

/// The analytic tie-aware AP equals the empirical mean over sampled
/// permutations on a real ranking with ties.
#[test]
fn analytic_tie_ap_matches_sampled_permutations() {
    let world = World::generate(WorldParams::default());
    let cases = build_cases(&world, Scenario::WellKnown).expect("cases build");
    let case = &cases[2]; // AGPAT2: 16 answers, many InEdge ties
    let q = &case.result.query;
    let scores = InEdge.score(q).expect("inedge");
    let ranking = Ranking::rank(scores.answers(q));
    let analytic = average_precision(&ranking, |n| case.is_relevant(n)).expect("some relevant");

    // Sample permutations: shuffle within tie groups.
    let mut rng = StdRng::seed_from_u64(5);
    let trials = 30_000;
    let mut total = 0.0;
    for _ in 0..trials {
        let mut rel_flags: Vec<bool> = Vec::with_capacity(ranking.len());
        let entries = ranking.entries();
        let mut i = 0;
        while i < entries.len() {
            let lo = entries[i].rank_lo;
            let mut group: Vec<bool> = entries
                .iter()
                .filter(|e| e.rank_lo == lo)
                .map(|e| case.is_relevant(e.node))
                .collect();
            // Fisher-Yates.
            for k in (1..group.len()).rev() {
                group.swap(k, rng.gen_range(0..=k));
            }
            i += group.len();
            rel_flags.extend(group);
        }
        total += biorank::eval::average_precision_strict(&rel_flags).unwrap_or(0.0);
    }
    let sampled = total / f64::from(trials);
    assert!(
        (analytic - sampled).abs() < 0.01,
        "analytic {analytic} vs sampled {sampled}"
    );
}

/// Definition 4.1 equals the all-tied special case of the tie-aware AP
/// on real answer-set sizes.
#[test]
fn random_ap_consistency_on_real_sizes() {
    let world = World::generate(WorldParams::default());
    for scenario in Scenario::ALL {
        let cases = build_cases(&world, scenario).expect("cases build");
        for case in cases {
            let (k, n) = (case.relevant_count(), case.answer_count());
            if k == 0 {
                continue;
            }
            let direct = random_ap(k, n).expect("valid");
            // All-tied ranking through the generic machinery.
            let q = &case.result.query;
            let tied: Vec<(NodeId, f64)> = q.answers().iter().map(|&a| (a, 1.0)).collect();
            let ranking = Ranking::rank(tied);
            let via_ties =
                average_precision(&ranking, |x| case.is_relevant(x)).expect("some relevant");
            assert!(
                (direct - via_ties).abs() < 1e-12,
                "{}: {direct} vs {via_ties}",
                case.protein
            );
        }
    }
}
