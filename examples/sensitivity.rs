//! Sensitivity analysis — how robust are rankings to wrong input
//! probabilities?
//!
//! BioRank's probabilities were set by domain experts; the paper (§4)
//! asks whether slightly different estimates would change the results,
//! and answers with a multi-way perturbation study: add Gaussian noise
//! to the log-odds of *every* probability and re-rank.
//!
//! ```sh
//! cargo run --release --example sensitivity [SIGMA] [REPS]
//! ```

use biorank::eval::{perturb, sensitivity_ap};
use biorank::prelude::*;

fn main() {
    let sigma: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1.0);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let world = World::generate(WorldParams::default());
    let cases = build_cases(&world, Scenario::Hypothetical).expect("scenario 3 builds");
    let ranker = Propagation::auto();

    // Show the perturbation on one concrete graph first.
    let case = &cases[0];
    let perturbed = perturb::perturb_query_graph(&case.result.query, sigma, 1);
    let q0 = &case.result.query;
    let a0 = q0.answers()[0];
    println!(
        "example: answer node {} probability {:.3} → {:.3} after σ={sigma} log-odds noise",
        case.result.answer_key(a0).unwrap_or("?"),
        q0.graph().node_p(a0).get(),
        perturbed.graph().node_p(a0).get(),
    );

    // The full study on scenario 3.
    let baseline = evaluate(&[Box::new(ranker) as Box<dyn Ranker + Send + Sync>], &cases)
        .expect("baseline evaluation")[0]
        .summary
        .mean;
    println!("scenario 3, propagation: default AP = {baseline:.3}");
    for s in [0.5, 1.0, 2.0, 3.0] {
        let out = sensitivity_ap(&ranker, &cases, s, reps, 42).expect("sensitivity run");
        println!(
            "σ = {s:<4} mean AP = {:.3} (±{:.3} over {reps} repetitions)",
            out.mean, out.std_dev
        );
    }
    println!(
        "→ ranking quality degrades gracefully: expert-estimated \
         probabilities do not need to be precise (paper §4, Fig. 6)."
    );
}
