//! Quickstart: integrate one protein's evidence and rank its candidate
//! functions under all five semantics.
//!
//! ```sh
//! cargo run --release --example quickstart [PROTEIN]
//! ```
//!
//! `PROTEIN` defaults to ABCC8, the paper's running example.

use biorank::prelude::*;

fn main() {
    let protein = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ABCC8".to_string());

    // 1. A deterministic synthetic world standing in for the 11 live
    //    web sources of the paper (see DESIGN.md for the substitution).
    let world = World::generate(WorldParams::default());

    // 2. The mediator executes the exploratory query
    //    (EntrezProtein.name = protein, {AmiGO}): keyword match, then
    //    recursive link expansion into a probabilistic query graph.
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let result = match mediator.execute(&ExploratoryQuery::protein_functions(&protein)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("integration failed for {protein}: {e}");
            eprintln!("try one of the Table 1 proteins, e.g. ABCC8, CFTR, EYA1, GALT");
            std::process::exit(1);
        }
    };
    let q = &result.query;
    println!(
        "{protein}: query graph with {} nodes, {} edges, {} candidate functions",
        q.graph().node_count(),
        q.graph().edge_count(),
        q.answers().len()
    );

    // 3. Rank with each of the paper's five methods.
    let rankers: Vec<Box<dyn Ranker + Send + Sync>> = vec![
        Box::new(ReducedMc::new(10_000, 42)), // reliability (reduction + MC)
        Box::new(Propagation::auto()),
        Box::new(Diffusion::auto()),
        Box::new(InEdge),
        Box::new(PathCount),
    ];
    for ranker in rankers {
        let scores = ranker.score(q).expect("ranking succeeds");
        let ranking = Ranking::rank(scores.answers(q));
        print!("{:<10} top 5:", ranker.name());
        for entry in ranking.entries().iter().take(5) {
            print!(
                "  {}={:.3}",
                result.answer_key(entry.node).unwrap_or("?"),
                entry.score
            );
        }
        println!();
    }

    // 4. Compare against the gold standard.
    let gold = world.iproclass.functions(&protein);
    if !gold.is_empty() {
        let scores = ReducedMc::new(10_000, 42).score(q).expect("scores");
        let ranking = Ranking::rank(scores.answers(q));
        let ap = average_precision(&ranking, |n| {
            result
                .answer_key(n)
                .and_then(GoTerm::parse)
                .is_some_and(|t| gold.contains(&t))
        })
        .unwrap_or(0.0);
        println!(
            "reliability AP against iProClass ({} well-known functions): {ap:.3}",
            gold.len()
        );
    }
}
