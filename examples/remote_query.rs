//! Querying a `biorank serve` instance from Rust, end to end —
//! including the multi-world admin control plane.
//!
//! This example starts an in-process server on an ephemeral port (so
//! it runs standalone), then talks to it exactly the way an external
//! client would: over TCP with the line-delimited JSON protocol. It
//! loads a second world next to the default one, routes queries to
//! both, swaps the second world (invalidating its caches), and reads
//! back per-world `stats`.
//!
//! ```text
//! cargo run --example remote_query
//! ```

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    Client, Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions, Server, WorldSpec,
};

fn main() {
    // Server side: a resident world behind a cached, concurrent
    // engine, wrapped (by `Server::bind`) in a world registry.
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server =
        Server::bind("127.0.0.1:0", engine, ServeOptions::default()).expect("bind ephemeral port");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    println!("serving on {}", handle.addr());

    // Client side: one protein under two semantics, then a repeat to
    // show the cache.
    let mut client = Client::connect(handle.addr()).expect("connect");
    for spec in [
        RankerSpec::new(Method::Reliability),
        RankerSpec::new(Method::PathCount),
    ] {
        let response = client
            .query(&QueryRequest {
                query: ExploratoryQuery::protein_functions("GALT"),
                spec,
                top: Some(5),
                certify_top: false,
                world: None,
                trace: false,
                deadline_ms: None,
            })
            .expect("query GALT");
        println!(
            "\nGALT top-5 of {} via {:?} ({} µs, graph cached: {}):",
            response.total_answers, spec.method, response.micros, response.cached_graph
        );
        for a in &response.answers {
            println!("  {:<12} {:<40} {:.4}", a.key, a.label, a.score);
        }
    }

    let repeat = client
        .protein_functions("GALT", RankerSpec::new(Method::Reliability))
        .expect("repeat query");
    println!(
        "\nrepeat: served from cache = {}, {} µs",
        repeat.cached_scores, repeat.micros
    );

    // Admin plane: load a second world from a different seed and run
    // the same query against both — same protein, different evidence.
    let staging = WorldSpec {
        seed: 0xFEED,
        ..WorldSpec::default()
    };
    let generation = client.world_load("staging", staging).expect("world.load");
    println!("\nloaded world \"staging\" (generation {generation})");
    for world in [None, Some("staging")] {
        let mut req = QueryRequest::protein_functions("GALT", RankerSpec::new(Method::Reliability));
        req.world = world.map(str::to_string);
        let response = client.query(&req).expect("routed query");
        let top = response.answers.first().expect("non-empty ranking");
        println!(
            "  world {:<10} top answer {} ({:.4})",
            world.unwrap_or("default"),
            top.key,
            top.score
        );
    }

    // Swap "staging": a fresh engine replaces it, so the next query
    // recomputes rather than serving the pre-swap cache.
    let generation = client.world_swap("staging", staging).expect("world.swap");
    let swapped = client
        .query(
            &QueryRequest::protein_functions("GALT", RankerSpec::new(Method::Reliability))
                .on_world("staging"),
        )
        .expect("post-swap query");
    println!(
        "after swap to generation {generation}: cached_scores = {} (recomputed)",
        swapped.cached_scores
    );

    println!("\nper-world stats:");
    let stats = client.stats().expect("stats");
    for w in stats.worlds {
        println!(
            "  {:<10} gen {} graphs {}h/{}m, results {}h/{}m",
            w.name,
            w.generation,
            w.engine.graphs.hits,
            w.engine.graphs.misses,
            w.engine.results.hits,
            w.engine.results.misses
        );
    }

    handle.shutdown();
}
