//! Querying a `biorank serve` instance from Rust, end to end.
//!
//! This example starts an in-process server on an ephemeral port (so
//! it runs standalone), then talks to it exactly the way an external
//! client would: over TCP with the line-delimited JSON protocol.
//!
//! ```text
//! cargo run --example remote_query
//! ```

use std::sync::Arc;

use biorank::mediator::Mediator;
use biorank::prelude::*;
use biorank::service::{
    Client, Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions, Server,
};

fn main() {
    // Server side: a resident world behind a cached, concurrent engine.
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind("127.0.0.1:0", engine, ServeOptions { workers: 4 })
        .expect("bind ephemeral port");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    println!("serving on {}", handle.addr());

    // Client side: one protein under two semantics, then a repeat to
    // show the cache.
    let mut client = Client::connect(handle.addr()).expect("connect");
    for spec in [
        RankerSpec::new(Method::Reliability),
        RankerSpec::new(Method::PathCount),
    ] {
        let response = client
            .query(&QueryRequest {
                query: ExploratoryQuery::protein_functions("GALT"),
                spec,
                top: Some(5),
            })
            .expect("query GALT");
        println!(
            "\nGALT top-5 of {} via {:?} ({} µs, graph cached: {}):",
            response.total_answers, spec.method, response.micros, response.cached_graph
        );
        for a in &response.answers {
            println!("  {:<12} {:<40} {:.4}", a.key, a.label, a.score);
        }
    }

    let repeat = client
        .protein_functions("GALT", RankerSpec::new(Method::Reliability))
        .expect("repeat query");
    println!(
        "\nrepeat: served from cache = {}, {} µs",
        repeat.cached_scores, repeat.micros
    );

    handle.shutdown();
}
