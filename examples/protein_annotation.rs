//! Functional protein annotation — the paper's motivating workload.
//!
//! Plays through the §1 story: a researcher looks for *new, possibly
//! yet unknown* functions of a well-studied protein. Well-known
//! functions are easy (redundant evidence everywhere); the valuable
//! output is the less-known functions with few-but-strong evidence,
//! which only the probabilistic rankings surface.
//!
//! ```sh
//! cargo run --release --example protein_annotation
//! ```

use biorank::prelude::*;
use biorank::sources::paper_data;

fn main() {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());

    for protein in ["ABCC8", "CFTR", "EYA1"] {
        let result = mediator
            .execute(&ExploratoryQuery::protein_functions(protein))
            .expect("integration succeeds");
        let q = &result.query;
        let gold = world.iproclass.functions(protein).to_vec();
        let new_functions: Vec<GoTerm> = paper_data::table2_functions(protein);

        println!(
            "\n=== {protein}: {} candidates, {} well-known, {} recently published ===",
            q.answers().len(),
            gold.len(),
            new_functions.len()
        );

        // Rank by reliability and by the deterministic InEdge baseline.
        let rel = ReducedMc::new(10_000, 7).score(q).expect("reliability");
        let inedge = InEdge.score(q).expect("inedge");
        let rel_ranking = Ranking::rank(rel.answers(q));
        let inedge_ranking = Ranking::rank(inedge.answers(q));

        println!("recently published functions (not yet in iProClass):");
        for go in &new_functions {
            let key = go.to_string();
            let node = q
                .answers()
                .iter()
                .copied()
                .find(|&a| result.answer_key(a) == Some(key.as_str()))
                .expect("published function is a candidate");
            let r = rel_ranking.rank_of(node).expect("ranked");
            let d = inedge_ranking.rank_of(node).expect("ranked");
            println!(
                "  {key} ({}): reliability rank {r}, InEdge rank {d}",
                world.go.name(*go).unwrap_or("?"),
            );
        }
        println!(
            "→ a researcher scanning the top of the reliability ranking finds \
             the new functions; the redundancy-counting ranking buries them."
        );
    }
}
