//! Integrating your own data source.
//!
//! The mediator is not tied to the built-in synthetic world: anything
//! implementing `Source` can join the federation. This example adds a
//! small in-house assay database ("LabNotes") that annotates proteins
//! with GO terms at a new confidence level, extends the mediated schema
//! with its entity set and relationships, and shows the ranking change.
//!
//! ```sh
//! cargo run --release --example custom_source
//! ```

use biorank::prelude::*;
use biorank::schema::Cardinality;

/// An in-house experimental annotation database.
struct LabNotes {
    /// protein → (GO term, assay confidence)
    assays: Vec<(String, GoTerm, f64)>,
}

impl Source for LabNotes {
    fn name(&self) -> &str {
        "LabNotes"
    }

    fn entity_sets(&self) -> Vec<String> {
        vec!["LabNotes".to_string()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.get(entity_set, value).into_iter().collect()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        if entity_set != "LabNotes" {
            return None;
        }
        self.assays
            .iter()
            .find(|(p, _, _)| format!("assay:{p}") == key)
            .map(|(p, _, _)| {
                Record::new(
                    "LabNotes",
                    format!("assay:{p}"),
                    format!("assay for {p}"),
                    Prob::ONE,
                )
            })
    }

    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        match entity_set {
            // Computed relationship: our assay records attach to the
            // protein records of EntrezProtein by name.
            "EntrezProtein" => self
                .assays
                .iter()
                .filter(|(p, _, _)| p == key)
                .map(|(p, _, _)| Link {
                    relationship: "prot2lab".to_string(),
                    to_entity_set: "LabNotes".to_string(),
                    to_key: format!("assay:{p}"),
                    qr: Prob::ONE,
                })
                .collect(),
            // Our annotations point into the shared GO vocabulary.
            "LabNotes" => self
                .assays
                .iter()
                .filter(|(p, _, _)| format!("assay:{p}") == key)
                .map(|(_, go, conf)| Link {
                    relationship: "lab2go".to_string(),
                    to_entity_set: "AmiGO".to_string(),
                    to_key: go.to_string(),
                    qr: Prob::clamped(*conf),
                })
                .collect(),
            _ => vec![],
        }
    }
}

fn main() {
    let world = World::generate(WorldParams::default());
    let protein = "GALT";

    // Pick a currently poorly-ranked candidate function of GALT to
    // support with a strong in-house assay.
    let profile = world.profile(protein).expect("GALT exists");
    let target = profile
        .functions_of(FunctionClass::Noise)
        .first()
        .copied()
        .expect("GALT has noise candidates");

    // Extend the mediated schema with the new entity set + relationships.
    let mut b = biorank_schema_with_ontology();
    let lab = b
        .schema
        .entity("LabNotes", "LabNotes", &["assay", "confidence"], 0.95)
        .expect("fresh entity set");
    b.schema
        .relationship(
            "prot2lab",
            b.entrez_protein,
            lab,
            Cardinality::OneToMany,
            1.0,
        )
        .expect("fresh relationship");
    b.schema
        .relationship("lab2go", lab, b.amigo, Cardinality::ManyToMany, 0.95)
        .expect("fresh relationship");

    // Register the new source next to the built-in ones.
    let mut registry = world.registry();
    registry.register(Box::new(LabNotes {
        assays: vec![(protein.to_string(), target, 0.95)],
    }));

    // Rank before/after.
    let baseline = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let extended = Mediator::new(b.schema, registry);
    let query = ExploratoryQuery::protein_functions(protein);
    for (label, mediator) in [
        ("without LabNotes", &baseline),
        ("with LabNotes", &extended),
    ] {
        let result = mediator.execute(&query).expect("integration succeeds");
        let scores = ReducedMc::new(10_000, 11)
            .score(&result.query)
            .expect("reliability");
        let ranking = Ranking::rank(scores.answers(&result.query));
        let key = target.to_string();
        let node = result
            .query
            .answers()
            .iter()
            .copied()
            .find(|&a| result.answer_key(a) == Some(key.as_str()))
            .expect("target candidate present");
        let entry = ranking.rank_of(node).expect("ranked");
        println!(
            "{label:<17} {key} ranks {entry} of {} (score {:.3})",
            ranking.len(),
            entry.score
        );
    }
    println!(
        "→ one strong assay pulls the function up the ranking, exactly the \
              \"few strong paths\" effect the probabilistic semantics reward."
    );
}
