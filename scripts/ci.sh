#!/usr/bin/env bash
# The tier-1 verification gate, runnable locally and from CI:
#
#   scripts/ci.sh
#
# Steps: format check, release build of every target (libs, bins,
# tests, examples, benches), then the full test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --all-targets"
cargo build --release --all-targets

echo "==> cargo test -q"
cargo test -q

echo "OK"
