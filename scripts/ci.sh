#!/usr/bin/env bash
# The tier-1 verification gate, runnable locally and from CI:
#
#   scripts/ci.sh
#
# Steps: format check, release build of every target (libs, bins,
# tests, examples, benches), then the full test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --all-targets"
cargo build --release --all-targets

echo "==> cargo test -q"
cargo test -q

# The multi-world tenancy suite is the gate for the admin control
# plane (world.load/swap/evict/list, stats, swap cache invalidation);
# run it by name so a renamed or dropped target fails loudly instead
# of silently vanishing from the suite above.
echo "==> cargo test -q --test service_tenancy"
cargo test -q --test service_tenancy

# Smoke the adaptive trial policy over the wire: an `mc` query with an
# adaptive `trials` object must certify under the fixed budget and
# echo its certificate through a real client connection.
echo "==> cargo test -q --test service_adaptive"
cargo test -q --test service_adaptive

# Telemetry end to end: a live serve must echo per-stage trace spans,
# report them through the `metrics` admin op, and stay bit-identical
# with tracing on or off.
echo "==> cargo test -q --test service_metrics"
cargo test -q --test service_metrics

# Durability end to end: a server with an attached world store must
# survive a restart with bit-identical answers and certificates served
# from its snapshots (warm result cache), under the same generations.
echo "==> cargo test -q --test service_store"
cargo test -q --test service_store

# Smoke top-k boundary certification over the wire through the real
# binary: start a serve on an ephemeral port, issue a --certify-top
# query, and require the top-k certificate in the human output.
echo "==> biorank --certify-top wire smoke"
serve_log="$(mktemp)"
./target/release/biorank serve --addr 127.0.0.1:0 --workers 2 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
addr=""
for _ in $(seq 1 240); do
    addr=$(sed -n 's/^biorank-serve listening on \([0-9.:]*\) .*/\1/p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.5
done
if [ -z "$addr" ]; then
    echo "biorank serve never reported its address" >&2
    cat "$serve_log" >&2
    exit 1
fi
# Capture, then match: `grep -q` exits on first match and would close
# the pipe while the client is still printing answer rows, panicking
# it with a broken stdout.
certify_out="$(./target/release/biorank query GALT --addr "$addr" --method mc --top 5 --certify-top)"
echo "$certify_out" >&2
echo "$certify_out" | grep -q "top-5 + boundary certified"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

# Concurrency collapse smoke through the real binary: concurrent
# identical word-estimator queries must coalesce onto one flight
# (queries.coalesced > 0 in `admin metrics`) and concurrent distinct
# ones may share fused sweeps — while every client still gets its
# answer. The trial count is sized so the first flight is still
# computing when the later clients connect.
echo "==> biorank fusion/coalescing wire smoke"
: >"$serve_log"
./target/release/biorank serve --addr 127.0.0.1:0 --workers 4 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 240); do
    addr=$(sed -n 's/^biorank-serve listening on \([0-9.:]*\) .*/\1/p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.5
done
if [ -z "$addr" ]; then
    echo "fusion smoke serve never reported its address" >&2
    cat "$serve_log" >&2
    exit 1
fi
query_pids=()
for _ in 1 2 3 4; do
    ./target/release/biorank query GALT --addr "$addr" --method mc \
        --estimator word --trials 8000000 --top 3 >/dev/null &
    query_pids+=($!)
done
for seed in 5 6; do
    ./target/release/biorank query GALT --addr "$addr" --method mc \
        --estimator word --trials 8000000 --seed "$seed" --top 3 >/dev/null &
    query_pids+=($!)
done
for pid in "${query_pids[@]}"; do
    wait "$pid"
done
metrics_out="$(./target/release/biorank admin metrics --addr "$addr")"
echo "$metrics_out" >&2
echo "$metrics_out" | grep -Eq "queries\.coalesced +[1-9]"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

# Cost-based planner smoke through the real binary: a default serve
# plans every `mc` query that doesn't pin an estimator (the serve
# default is `auto`), counting each decision under
# planner.chosen.<strategy> — the counters must sum to exactly the
# planned request count. A forced --estimator request then routes
# around the planner: the query counter moves, the chosen counters
# don't.
echo "==> biorank planner auto/opt-out wire smoke"
: >"$serve_log"
./target/release/biorank serve --addr 127.0.0.1:0 --workers 2 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 240); do
    addr=$(sed -n 's/^biorank-serve listening on \([0-9.:]*\) .*/\1/p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.5
done
if [ -z "$addr" ]; then
    echo "planner smoke serve never reported its address" >&2
    cat "$serve_log" >&2
    exit 1
fi
for protein in GALT CFTR LPL; do
    ./target/release/biorank query "$protein" --addr "$addr" --method mc --top 3 >/dev/null
done
# The fourth planned request asks for its plan back: --explain must
# print the chosen strategy, prediction, and feature vector.
explain_out="$(./target/release/biorank query GALT --addr "$addr" --method mc --top 3 --explain)"
echo "$explain_out" >&2
echo "$explain_out" | grep -q "  plan: "
echo "$explain_out" | grep -q "    features: "
# Explicit opt-out: a pinned estimator must not touch the planner.
./target/release/biorank query GALT --addr "$addr" --method mc --estimator word --top 3 >/dev/null
metrics_out="$(./target/release/biorank admin metrics --addr "$addr")"
echo "$metrics_out" >&2
chosen_total=$(echo "$metrics_out" | awk '/planner\.chosen\./ {sum += $2} END {print sum + 0}')
served_total=$(echo "$metrics_out" | awk '$1 == "queries" {sum += $2} END {print sum + 0}')
if [ "$chosen_total" -ne 4 ]; then
    echo "planner.chosen.* counters sum to $chosen_total, expected 4 (one per planned request)" >&2
    exit 1
fi
if [ "$served_total" -ne 5 ]; then
    echo "queries counter reads $served_total, expected 5 (4 planned + 1 forced)" >&2
    exit 1
fi
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

# Restart recovery smoke through the real binary: a --data-dir serve
# answers a certified query, checkpoints, dies, and the restarted
# process serves the identical answers + certificate from its
# snapshots (result cache hit, warm.replayed > 0) — never by
# re-running integration or Monte Carlo.
echo "==> biorank --data-dir restart recovery smoke"
data_dir="$(mktemp -d)"
answers_a="$(mktemp)"
answers_b="$(mktemp)"
trap 'kill "$serve_pid" 2>/dev/null || true;
      rm -f "$serve_log" "$answers_a" "$answers_b"; rm -rf "$data_dir"' EXIT
start_durable_serve() {
    : >"$serve_log"
    ./target/release/biorank serve --addr 127.0.0.1:0 --workers 2 \
        --data-dir "$data_dir" >"$serve_log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 240); do
        addr=$(sed -n 's/^biorank-serve listening on \([0-9.:]*\) .*/\1/p' "$serve_log")
        [ -n "$addr" ] && break
        sleep 0.5
    done
    if [ -z "$addr" ]; then
        echo "durable biorank serve never reported its address" >&2
        cat "$serve_log" >&2
        exit 1
    fi
}
# The per-query header carries the address and wall-clock micros;
# compare only the certificate and answer rows.
start_durable_serve
./target/release/biorank query GALT --addr "$addr" --method mc --top 5 --certify-top |
    grep -v "candidate functions via" >"$answers_a"
./target/release/biorank admin world.load aux --seed 99 --addr "$addr"
./target/release/biorank admin checkpoint --addr "$addr" |
    tee /dev/stderr | grep -q "2 world(s) snapshotted"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
start_durable_serve
grep -q "2 world(s) recovered" "$serve_log"
restart_out="$(./target/release/biorank query GALT --addr "$addr" --method mc --top 5 --certify-top)"
echo "$restart_out" | grep -q "result cache hit"
echo "$restart_out" | grep -v "candidate functions via" >"$answers_b"
diff "$answers_a" "$answers_b"
# Capture, then match — `grep -q` would close the pipe mid-print
# (the planner histograms pushed `warm.replayed` off the tail).
restart_metrics="$(./target/release/biorank admin metrics --addr "$addr")"
echo "$restart_metrics" | grep -q "warm.replayed"
kill "$serve_pid" 2>/dev/null || true

# Overload + graceful-drain smoke through the real binary: flood past
# a tiny connection budget and require the id-less shed notice, require
# the shed to be accounted in `admin metrics`, then drain with a query
# still in flight — the query must answer and the serve must exit 0.
echo "==> biorank overload shed + graceful drain smoke"
: >"$serve_log"
./target/release/biorank serve --addr 127.0.0.1:0 --workers 2 \
    --max-connections 2 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 240); do
    addr=$(sed -n 's/^biorank-serve listening on \([0-9.:]*\) .*/\1/p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.5
done
if [ -z "$addr" ]; then
    echo "overload smoke serve never reported its address" >&2
    cat "$serve_log" >&2
    exit 1
fi
host="${addr%:*}"
port="${addr##*:}"
# Fill the budget with two held connections, each proven live by a
# round-trip (even an unparseable line gets an error response).
exec 3<>"/dev/tcp/$host/$port"
printf 'not json\n' >&3
IFS= read -r _probe <&3
exec 4<>"/dev/tcp/$host/$port"
printf 'not json\n' >&4
IFS= read -r _probe <&4
# Connection three is over budget: one id-less overload notice, then
# close — no thread was spawned for it.
exec 5<>"/dev/tcp/$host/$port"
shed_line=""
IFS= read -r shed_line <&5 || true
echo "shed notice: $shed_line" >&2
echo "$shed_line" | grep -q '"error":"overloaded"'
echo "$shed_line" | grep -q '"retry_after_ms"'
exec 5<&- 5>&- 3<&- 3>&- 4<&- 4>&-
# Freed slots readmit; the permit release races the next accept, so
# retry until metrics answer and account for the shed.
shed_count=""
metrics_out=""
for _ in $(seq 1 50); do
    if metrics_out="$(./target/release/biorank admin metrics --addr "$addr" 2>/dev/null)"; then
        shed_count=$(echo "$metrics_out" | awk '$1 == "shed.connections" {print $2}')
        [ -n "$shed_count" ] && [ "$shed_count" -ge 1 ] && break
    fi
    sleep 0.2
done
if [ -z "$shed_count" ] || [ "$shed_count" -lt 1 ]; then
    echo "shed.connections never accounted for the flood" >&2
    echo "$metrics_out" >&2
    exit 1
fi
# Drain with a slow word-estimator query in flight: zero dropped.
./target/release/biorank query GALT --addr "$addr" --method mc \
    --estimator word --trials 8000000 --top 3 >/dev/null &
query_pid=$!
sleep 1
./target/release/biorank admin server.drain --addr "$addr" |
    tee /dev/stderr | grep -q "server drained"
wait "$query_pid"
if wait "$serve_pid"; then
    echo "serve exited 0 after drain" >&2
else
    echo "serve exited nonzero after drain" >&2
    exit 1
fi

# Smoke the perf-trajectory recorder: the word-parallel MC bench must
# run, produce parseable JSON lines, AND survive the dedup-and-append
# machinery — smoke mode replays the full quick-mode append against a
# temp copy of the log and fails unless ≥1 row landed (BENCH_mc.json
# itself is only appended by deliberate local runs).
echo "==> scripts/bench.sh smoke"
scripts/bench.sh smoke | tee /dev/stderr | grep -q "smoke OK: [1-9]"

echo "OK"
