#!/usr/bin/env bash
# Records Monte Carlo benchmark timings as JSON lines, one per
# benchmark per commit, so the perf trajectory of the reliability hot
# path is tracked in-repo:
#
#   scripts/bench.sh          quick mode: run the MC benches with
#                             reduced sampling and append
#                             {"commit","bench","ns_per_iter"} lines
#                             to BENCH_mc.json
#   scripts/bench.sh smoke    CI mode: exercise the same machinery on
#                             the word_vs_traversal bench only,
#                             validating the output without touching
#                             the tracked log (which is only appended
#                             to by deliberate local runs)
#
# Uses the vendored criterion's BENCH_QUICK / BENCH_JSON env hooks.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-quick}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# A dirty *tracked* tree is not the commit it descends from: mark it,
# so the trajectory log never attributes new code's timings to the
# parent. Untracked files must not taint the label — they don't change
# what was built, and counting them (the old behavior) stamped "-dirty"
# on clean checkouts that merely carried bench artifacts or editor
# droppings. `git status --porcelain` also refreshes the stat cache,
# so stale mtimes alone never read as modifications.
if [ -n "$(git status --porcelain --untracked-files=no 2>/dev/null)" ]; then
    commit="$commit-dirty"
fi
out="BENCH_mc.json"
benches=(word_vs_traversal fig8a_reliability overload_shed)
case "$mode" in
quick) ;;
smoke)
    benches=(word_vs_traversal)
    ;;
*)
    echo "usage: scripts/bench.sh [quick|smoke]" >&2
    exit 2
    ;;
esac

# Collect new rows in a temp file first: the tracked log is only
# rewritten after every bench succeeded, so a failing bench cannot
# lose previously recorded lines.
fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

for bench in "${benches[@]}"; do
    echo "==> cargo bench --bench $bench (quick)"
    BENCH_QUICK=1 BENCH_JSON=1 cargo bench --bench "$bench" |
        tee /dev/stderr |
        sed -n "s/^BENCHJSON {/{\"commit\":\"$commit\",/p" >>"$fresh"
done

lines=$(wc -l <"$fresh")
# The machinery must have produced at least one parseable line. Fail
# loudly with the symptom: a bare `set -e` exit here once read as a
# passing run with a silent gap in the perf trajectory.
if [ "$lines" -lt 1 ]; then
    echo "error: no BENCHJSON lines captured from: ${benches[*]}" >&2
    echo "       (BENCH_JSON output hook broken, or the bench printed nothing)" >&2
    exit 1
fi

# Re-runs at the same commit replace that commit's lines instead of
# piling up duplicates: one line per (commit, bench). Smoke mode runs
# the identical dedup-and-append machinery against a temp copy of the
# log, so CI validates the whole append path without touching the
# tracked file.
target="$out"
if [ "$mode" = smoke ]; then
    target="$(mktemp)"
    trap 'rm -f "$fresh" "$target" "$target.tmp"' EXIT
    if [ -f "$out" ]; then
        cat "$out" >"$target"
    fi
fi
if [ -s "$target" ]; then
    grep -v "^{\"commit\":\"$commit\"," "$target" >"$target.tmp" || true
else
    : >"$target.tmp"
fi
cat "$fresh" >>"$target.tmp"
mv "$target.tmp" "$target"
appended=$(grep -c "^{\"commit\":\"$commit\"," "$target" || true)
if [ "$appended" -lt 1 ]; then
    echo "error: append produced no rows for commit $commit in $target" >&2
    exit 1
fi
if [ "$mode" = quick ]; then
    echo "recorded $appended result line(s) in $out"
else
    # The fused bench family is part of the tracked perf surface: a
    # smoke run that silently dropped it would leave multi-query
    # sweeps unmeasured.
    fused=$(grep -c "^{\"commit\":\"$commit\",\"bench\":\"fused/" "$target" || true)
    if [ "$fused" -lt 1 ]; then
        echo "error: smoke run recorded no fused/* rows" >&2
        exit 1
    fi
    echo "smoke OK: $appended row(s) appended through the temp log ($fused fused)"
fi
