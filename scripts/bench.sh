#!/usr/bin/env bash
# Records Monte Carlo benchmark timings as JSON lines, one per
# benchmark per commit, so the perf trajectory of the reliability hot
# path is tracked in-repo:
#
#   scripts/bench.sh          quick mode: run the MC benches with
#                             reduced sampling and append
#                             {"commit","bench","ns_per_iter"} lines
#                             to BENCH_mc.json
#   scripts/bench.sh smoke    CI mode: exercise the same machinery on
#                             the word_vs_traversal bench only,
#                             validating the output without touching
#                             the tracked log (which is only appended
#                             to by deliberate local runs)
#
# Uses the vendored criterion's BENCH_QUICK / BENCH_JSON env hooks.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-quick}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# A dirty tree is not the commit it descends from: mark it, so the
# trajectory log never attributes new code's timings to the parent.
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    commit="$commit-dirty"
fi
out="BENCH_mc.json"
benches=(word_vs_traversal fig8a_reliability)
case "$mode" in
quick) ;;
smoke)
    benches=(word_vs_traversal)
    ;;
*)
    echo "usage: scripts/bench.sh [quick|smoke]" >&2
    exit 2
    ;;
esac

# Collect new rows in a temp file first: the tracked log is only
# rewritten after every bench succeeded, so a failing bench cannot
# lose previously recorded lines.
fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

for bench in "${benches[@]}"; do
    echo "==> cargo bench --bench $bench (quick)"
    BENCH_QUICK=1 BENCH_JSON=1 cargo bench --bench "$bench" |
        tee /dev/stderr |
        sed -n "s/^BENCHJSON {/{\"commit\":\"$commit\",/p" >>"$fresh"
done

lines=$(wc -l <"$fresh")
# The machinery must have produced at least one parseable line.
[ "$lines" -gt 0 ]

if [ "$mode" = quick ]; then
    # Re-runs at the same commit replace that commit's lines instead
    # of piling up duplicates: one line per (commit, bench).
    if [ -f "$out" ]; then
        grep -v "^{\"commit\":\"$commit\"," "$out" >"$out.tmp" || true
    else
        : >"$out.tmp"
    fi
    cat "$fresh" >>"$out.tmp"
    mv "$out.tmp" "$out"
    echo "recorded $lines result line(s) in $out"
else
    echo "smoke OK: $lines parseable result line(s)"
fi
