//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors the minimal surface the BioRank crates use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng`]
//! (`gen::<f64>()`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, but every consumer in this workspace
//! only requires a *deterministic, well-distributed* stream, never a
//! specific one.

#![deny(missing_docs)]

/// Core random-number-generator interface: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value of type `T` from "the standard
/// distribution" — `f64` in `[0, 1)`, full-range integers, fair bools.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++, SplitMix64-seeded). Not
    /// the real `StdRng` stream, but the same API and statistical
    /// quality for simulation purposes.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let v = rng.gen_range(0u8..=8);
            assert!(v <= 8);
            let f = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
