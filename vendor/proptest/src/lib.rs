//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`], [`Just`], the [`proptest!`] macro and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: generation is driven by a fixed
//! deterministic RNG (so failures reproduce exactly across runs) and
//! there is **no shrinking** — a failing case reports its panic
//! directly.

#![deny(missing_docs)]

/// Deterministic RNG driving test-case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh deterministic generator; every `proptest!` test fn
    /// starts from the same stream so failures reproduce.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Chains a dependent strategy off each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Rejects values failing the predicate, retrying generation.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            reason: reason.into(),
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..10_000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive cases: {}",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Split one draw so both endpoints are actually reachable —
        // tests branch on exact 0.0 / 1.0 fixed points.
        match rng.next_u64() % 64 {
            0 => lo,
            1 => hi,
            _ => lo + rng.next_f64() * (hi - lo),
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod bool {
    //! Boolean strategies.

    /// The strategy of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// An inclusive length range for [`vec`], built from the usual
    /// range syntax (`1..40`, `0..=12`, or a fixed `usize`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.lo + rng.below(self.len.hi - self.len.lo + 1);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(..)]`. Only
    /// `cases` is honoured by this stand-in.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Re-export matching proptest's prelude name.
pub use test_runner::Config as ProptestConfig;

/// Defines property tests: `#[test]` functions whose arguments are
/// drawn from strategies via `pat in strategy` clauses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                let strat = ($($strategy,)+);
                let ($($pat,)+) = $crate::Strategy::generate(&strat, &mut rng);
                let run = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(msg) = run() {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!($($fmt)+));
        }
    }};
}

pub mod prelude {
    //! The usual imports.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = crate::TestRng::deterministic();
        let s = (1usize..=4)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..10, 1..5)))
            .prop_map(|(n, v)| (n, v.len()))
            .prop_filter("nonempty", |(_, l)| *l > 0);
        for _ in 0..100 {
            let (n, l) = s.generate(&mut rng);
            assert!((1..=4).contains(&n));
            assert!((1..5).contains(&l));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro binds tuple patterns and runs bodies.
        #[test]
        fn macro_works((a, b) in (0u8..10, 0u8..10), flip in crate::bool::ANY) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(flip, flip);
        }
    }
}
