//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace builds offline, so `serde` is vendored as an API-only
//! stand-in. These derives accept the usual `#[serde(...)]` helper
//! attributes and expand to nothing: no code in the workspace consumes
//! `T: Serialize` bounds (the service layer hand-rolls its JSON wire
//! format), so the annotations compile without pulling in a real
//! serialization framework.

#![deny(missing_docs)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
