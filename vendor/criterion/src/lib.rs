//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so this vendored crate
//! implements the subset of criterion's API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `finish`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up
//! briefly, then timed over `sample_size` batches; the report prints
//! mean / best batch time per iteration. No statistics machinery, no
//! HTML reports — enough to compare configurations on one machine.
//!
//! Two environment variables extend the real crate's surface for
//! scripted runs (`scripts/bench.sh`):
//!
//! * `BENCH_QUICK=1` — caps every benchmark at 3 samples with short
//!   batches, trading precision for wall-clock time (smoke/CI mode).
//! * `BENCH_JSON=1` — after each human-readable report line, prints a
//!   machine-readable `BENCHJSON {"bench":...,"ns_per_iter":...}`
//!   line for the perf-trajectory log.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when `BENCH_QUICK` asks for fast, low-precision runs.
fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// `true` when `BENCH_JSON` asks for machine-readable report lines.
fn json_mode() -> bool {
    std::env::var_os("BENCH_JSON").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    metrics: Vec<(String, f64)>,
}

impl Bencher {
    /// Attaches an extra numeric metric to this benchmark's report:
    /// printed next to the timings and merged into the `BENCHJSON`
    /// line (e.g. `trials_used` for adaptive Monte Carlo rows). An
    /// extension over the real criterion API for the perf-trajectory
    /// log; repeated keys keep the last value.
    pub fn metric(&mut self, key: &str, value: f64) {
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.metrics.push((key.to_string(), value));
        }
    }
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: target ~20ms per sample batch
        // (~5ms in quick mode).
        let target = if quick_mode() {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(20)
        };
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (target.as_nanos() / one.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_batch as u64;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let best = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let extras: String = self
            .metrics
            .iter()
            .map(|(k, v)| format!("  {k} {v:.0}"))
            .collect();
        println!(
            "{id:<40} mean {:>12}  best {:>12}  ({} samples × {} iters){extras}",
            fmt_time(mean),
            fmt_time(best),
            self.samples.len(),
            self.iters_per_sample
        );
        if json_mode() {
            // Bench ids are ASCII identifiers with `/` separators, so
            // no JSON string escaping is needed; metric keys are
            // caller-chosen identifiers under the same convention.
            let extras: String = self
                .metrics
                .iter()
                .map(|(k, v)| format!(",\"{k}\":{v}"))
                .collect();
            println!(
                "BENCHJSON {{\"bench\":\"{id}\",\"ns_per_iter\":{:.0}{extras}}}",
                mean * 1e9
            );
        }
    }
}

/// Caps the configured sample count in quick mode.
fn effective_samples(n: usize) -> usize {
    if quick_mode() {
        n.min(3)
    } else {
        n
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed sample batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: effective_samples(self.sample_size),
            metrics: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (no-op; matches criterion's API).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the default number of timed sample batches.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: effective_samples(if self.sample_size == 0 {
                10
            } else {
                self.sample_size
            }),
            metrics: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Criterion-compatible no-op (the real crate parses CLI args).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Criterion-compatible no-op.
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }

    #[test]
    fn groups_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("x", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
