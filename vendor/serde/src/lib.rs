//! Offline API stand-in for the `serde` crate.
//!
//! The build container cannot reach a cargo registry, so this vendored
//! crate supplies just enough surface for the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations to compile: the two
//! marker traits and no-op derive macros (which also swallow
//! `#[serde(...)]` helper attributes). Nothing in the workspace
//! requires a `T: Serialize` bound — the service wire format is
//! hand-rolled JSON in `biorank-serve` — so no real data model is
//! needed.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
