//! # biorank-bench
//!
//! Criterion benchmarks for the BioRank reproduction. Each bench target
//! maps to a paper artifact (see `DESIGN.md` §4):
//!
//! * `fig8a_reliability` — the reliability evaluation strategies of
//!   Fig. 8a (naive/traversal Monte Carlo at 10⁴ and 10³ trials, closed
//!   solution, each with and without graph reduction).
//! * `word_vs_traversal` — the word-parallel engine (`WordMc`, 64
//!   trials per bitmask pass) against the per-trial traversal at equal
//!   trial counts; `scripts/bench.sh` appends its numbers to
//!   `BENCH_mc.json` per commit.
//! * `fig8b_methods` — the five ranking methods of Fig. 8b.
//! * `ablations` — design-choice ablations called out in DESIGN.md §5:
//!   traversal vs naive sampling, diffusion's bisection vs fixed-point
//!   inner solver, sequential vs parallel Monte Carlo.
//! * `primitives` — graph substrate microbenchmarks (toposort, path
//!   counting, reductions, tie-aware AP).

use biorank_eval::{build_cases, Scenario, ScenarioCase};
use biorank_sources::{World, WorldParams};

/// The 20 scenario-1 query graphs the paper times (its "largest").
pub fn scenario1_cases() -> Vec<ScenarioCase> {
    let world = World::generate(WorldParams::default());
    build_cases(&world, Scenario::WellKnown).expect("scenario 1 integrates")
}

/// A single representative case (ABCC8 — the running example).
pub fn abcc8_case() -> ScenarioCase {
    scenario1_cases()
        .into_iter()
        .next()
        .expect("scenario 1 has cases")
}
