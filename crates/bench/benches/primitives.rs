//! Microbenchmarks of the graph substrate and the evaluation metric.

use biorank_bench::abcc8_case;
use biorank_eval::average_precision;
use biorank_graph::{generate, reduction, topo};
use biorank_rank::{InEdge, Ranker, Ranking};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn graph_ops(c: &mut Criterion) {
    let case = abcc8_case();
    let q = &case.result.query;
    let mut group = c.benchmark_group("primitives_graph");
    group.bench_function("toposort", |b| {
        b.iter(|| topo::toposort(black_box(q.graph())).expect("dag"))
    });
    group.bench_function("count_paths", |b| {
        b.iter(|| topo::count_paths_from(black_box(q.graph()), q.source()).expect("dag"))
    });
    group.bench_function("reduce_query_graph", |b| {
        b.iter(|| {
            let mut g = q.clone();
            let src = g.source();
            let answers = g.answers().to_vec();
            reduction::reduce(g.graph_mut(), src, &answers)
        })
    });
    group.bench_function("clone_and_prune", |b| {
        b.iter(|| {
            let mut g = q.clone();
            g.prune()
        })
    });
    group.finish();
}

fn workflow_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives_generate");
    let params = generate::WorkflowParams::default();
    group.bench_function("layered_workflow", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate::layered_workflow(black_box(&params), seed)
        })
    });
    group.finish();
}

fn evaluation_metric(c: &mut Criterion) {
    let case = abcc8_case();
    let q = &case.result.query;
    let scores = InEdge.score(q).expect("scores"); // integer scores → many ties
    let mut group = c.benchmark_group("primitives_metric");
    group.bench_function("rank_with_ties", |b| {
        b.iter(|| Ranking::rank(black_box(scores.answers(q))))
    });
    let ranking = Ranking::rank(scores.answers(q));
    group.bench_function("tie_aware_ap", |b| {
        b.iter(|| average_precision(black_box(&ranking), |n| case.is_relevant(n)))
    });
    group.finish();
}

criterion_group!(benches, graph_ops, workflow_generation, evaluation_metric);
criterion_main!(benches);
