//! Open-loop overload rows: a Zipf-skewed load generator fires
//! connection waves at a deliberately tiny admission budget and
//! records how the server degrades.
//!
//! *Open loop* means arrivals never wait for completions — each wave
//! launches its connections on a fixed inter-arrival clock regardless
//! of how the previous ones fared, which is what a real flood looks
//! like (closed-loop generators self-throttle and hide collapse).
//! The `overload_shed_{1,2,4}x` rows scale offered load against the
//! same budget; next to the timing each records `served`, `shed`, and
//! `shed_rate` metrics. The acceptance shape: the server *sheds
//! instead of queueing without bound* — served stays roughly flat
//! while shed absorbs the excess, and every refusal is an explicit
//! overload notice, never a hang (any other client error fails the
//! bench).

use std::sync::Arc;
use std::time::Duration;

use biorank_mediator::Mediator;
use biorank_schema::biorank_schema_with_ontology;
use biorank_service::{
    Client, Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions, Server, Trials,
};
use biorank_sources::{World, WorldParams};
use criterion::{criterion_group, criterion_main, Criterion};

/// The paper's running-example proteins, hottest first — the Zipf
/// ranks of the generated request stream.
const PROTEINS: &[&str] = &["GALT", "CFTR", "ABCC8", "EYA1", "LPL"];

/// Arrivals per wave at 1× load; the `Nx` rows multiply this against
/// an unchanged budget of 6 connections / 2 queue slots.
const BASE_ARRIVALS: usize = 12;

/// Deterministic xorshift64 stream — the bench must offer the same
/// request sequence on every run and machine.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Draws a protein index with P(rank r) ∝ 1/(r+1) — the classic
/// Zipf skew: the hot protein dominates, the tail still shows up.
fn zipf_pick(rng: &mut Rng) -> usize {
    let weights: Vec<f64> = (0..PROTEINS.len())
        .map(|r| 1.0 / (r as f64 + 1.0))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = (rng.next() % 1_000_000) as f64 / 1_000_000.0 * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    PROTEINS.len() - 1
}

fn request(protein: &str) -> QueryRequest {
    QueryRequest::protein_functions(
        protein,
        RankerSpec {
            // Deterministic single-trial method: the rows measure
            // admission behavior, not ranking cost.
            method: Method::InEdge,
            trials: Trials::Fixed(1),
            seed: 0,
            parallel: false,
            estimator: None,
        },
    )
}

/// Fires one open-loop wave of `arrivals` connections at `addr`,
/// 200 µs apart, and tallies (served, shed). Every outcome must be
/// an answer or an explicit overload notice — anything else panics.
fn wave(addr: std::net::SocketAddr, arrivals: usize, seed: u64) -> (u64, u64) {
    let mut rng = Rng(seed | 1);
    let picks: Vec<&str> = (0..arrivals)
        .map(|_| PROTEINS[zipf_pick(&mut rng)])
        .collect();
    let handles: Vec<_> = picks
        .into_iter()
        .map(|protein| {
            let h = std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    // The listener itself is saturated (kernel
                    // backlog): that is a shed, not a failure.
                    Err(_) => return false,
                };
                match client.query(&request(protein)) {
                    Ok(resp) => {
                        assert!(resp.total_answers > 0);
                        true
                    }
                    Err(e) if e.is_overload() => false,
                    Err(e) => panic!("overload must shed cleanly, got: {e}"),
                }
            });
            std::thread::sleep(Duration::from_micros(200));
            h
        })
        .collect();
    let mut served = 0u64;
    let mut shed = 0u64;
    for h in handles {
        if h.join().expect("arrival thread") {
            served += 1;
        } else {
            shed += 1;
        }
    }
    (served, shed)
}

fn overload_shed(c: &mut Criterion) {
    let world = World::generate(WorldParams::default());
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let engine = Arc::new(QueryEngine::new(mediator));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServeOptions {
            workers: 2,
            max_connections: 6,
            queue_depth: 2,
            ..Default::default()
        },
    )
    .expect("bind ephemeral");
    let handle = server.handle().expect("server handle");
    std::thread::spawn(move || server.run().expect("server run"));
    let addr = handle.addr();

    // Warm the caches so served requests are admission-bound, not
    // compute-bound.
    let mut warm = Client::connect(addr).expect("warm connect");
    for protein in PROTEINS {
        warm.query(&request(protein)).expect("warm query");
    }
    drop(warm);

    let mut group = c.benchmark_group("overload_shed");
    group.sample_size(10);
    for mult in [1usize, 2, 4] {
        let mut served = 0u64;
        let mut shed = 0u64;
        let mut seed = 0x5eed + mult as u64;
        group.bench_function(&format!("overload_shed_{mult}x"), |b| {
            b.iter(|| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let (ok, no) = wave(addr, BASE_ARRIVALS * mult, seed);
                served += ok;
                shed += no;
                (ok, no)
            });
            b.metric("served", served as f64);
            b.metric("shed", shed as f64);
            b.metric("shed_rate", shed as f64 / (served + shed).max(1) as f64);
        });
    }
    group.finish();

    handle.shutdown();
}

criterion_group!(benches, overload_shed);
criterion_main!(benches);
