//! Throughput of the serving layer: cached vs uncached queries/sec
//! through `QueryEngine`, plus the worker-pool batch path.
//!
//! The acceptance numbers to look at: `cached_result_hit` must be
//! orders of magnitude faster than `uncached_cold` (it skips both
//! integration and scoring), and `graph_hit_rescore` sits in between
//! (integration cached, scoring recomputed).

use std::sync::Arc;

use biorank_mediator::Mediator;
use biorank_schema::biorank_schema_with_ontology;
use biorank_service::{
    Method, QueryEngine, QueryRequest, RankerSpec, Trials, WorkerPool, WorldManager, WorldSpec,
};
use biorank_sources::{World, WorldParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mediator() -> Mediator {
    let world = World::generate(WorldParams::default());
    Mediator::new(biorank_schema_with_ontology().schema, world.registry())
}

fn request(protein: &str) -> QueryRequest {
    QueryRequest::protein_functions(
        protein,
        RankerSpec {
            method: Method::Reliability,
            trials: Trials::Fixed(1_000),
            seed: 42,
            parallel: false,
            estimator: None,
        },
    )
}

fn service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(20);

    // Cold path: cache disabled, every call integrates + scores.
    let uncached = QueryEngine::with_cache_capacity(mediator(), 0);
    let req = request("GALT");
    group.bench_function("uncached_cold", |b| {
        b.iter(|| uncached.execute(black_box(&req)).expect("query"))
    });

    // Graph cache hit, scores recomputed: alternate two specs that
    // share the integration but miss the (tiny) result cache.
    let rescore = QueryEngine::with_cache_capacity(mediator(), 1);
    rescore.execute(&req).expect("warm the graph cache");
    let specs = [
        request("GALT"),
        QueryRequest::protein_functions(
            "GALT",
            RankerSpec {
                method: Method::Reliability,
                trials: Trials::Fixed(1_000),
                seed: 43,
                parallel: false,
                estimator: None,
            },
        ),
    ];
    let mut flip = 0usize;
    group.bench_function("graph_hit_rescore", |b| {
        b.iter(|| {
            flip += 1;
            rescore.execute(black_box(&specs[flip % 2])).expect("query")
        })
    });

    // Fully cached: the acceptance-criteria "repeated identical query".
    let cached = QueryEngine::new(mediator());
    cached.execute(&req).expect("warm both caches");
    group.bench_function("cached_result_hit", |b| {
        b.iter(|| cached.execute(black_box(&req)).expect("query"))
    });

    group.finish();
}

fn batch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_batch");
    group.sample_size(10);

    let batch = || -> Vec<QueryRequest> {
        ["GALT", "ABCC8", "CFTR", "EYA1", "LPL", "MLH1"]
            .iter()
            .flat_map(|p| {
                [42u64, 43, 44].map(|s| {
                    QueryRequest::protein_functions(
                        p,
                        RankerSpec {
                            method: Method::Reliability,
                            trials: Trials::Fixed(500),
                            seed: s,
                            parallel: false,
                            estimator: None,
                        },
                    )
                })
            })
            .collect()
    };

    for workers in [1usize, 4] {
        // Cache disabled so every batch does real work.
        let engine = Arc::new(QueryEngine::with_cache_capacity(mediator(), 0));
        let pool = WorkerPool::new(workers);
        group.bench_function(&format!("uncached_batch18_workers{workers}"), |b| {
            b.iter(|| {
                let out = pool.run_batch(&engine, black_box(batch()));
                assert!(out.iter().all(Result::is_ok));
            })
        });
    }

    group.finish();
}

/// Tenancy overhead: resolve + cached execution round-robined across
/// three resident worlds, vs the same traffic pinned to one engine.
/// The delta is the cost of the registry lock + `Arc` clone per query.
fn multi_world_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(20);

    let manager = WorldManager::new(4);
    let worlds = ["default", "staging", "snapshot"];
    for (i, name) in worlds.iter().enumerate() {
        manager
            .load(
                name,
                WorldSpec {
                    seed: 42 + i as u64,
                    extended: false,
                    cache_capacity: 64,
                },
            )
            .expect("load world");
    }
    let req = request("GALT");
    // Warm every world's caches so the loop measures steady state.
    for name in worlds {
        let engine = manager.resolve(Some(name)).expect("resolve");
        engine.execute(&req).expect("warm");
    }

    let mut flip = 0usize;
    group.bench_function("multi_world_cached_hit", |b| {
        b.iter(|| {
            flip += 1;
            let engine = manager
                .resolve(Some(black_box(worlds[flip % worlds.len()])))
                .expect("resolve");
            engine.execute(black_box(&req)).expect("query")
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    service_throughput,
    batch_scaling,
    multi_world_throughput
);
criterion_main!(benches);
