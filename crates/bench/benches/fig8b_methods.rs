//! Fig. 8b: time per query graph for the five ranking methods.
//!
//! Paper result (msec): Rel 17.9, Prop 5.2, Diff 5.8, InEdge 0.5,
//! PathC 1.0 — probabilistic ranking within 1–2 orders of magnitude of
//! the deterministic metrics, all well under 100 msec.

use biorank_bench::abcc8_case;
use biorank_rank::{Diffusion, InEdge, PathCount, Propagation, Ranker, ReducedMc};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig8b(c: &mut Criterion) {
    let case = abcc8_case();
    let q = &case.result.query;
    let mut group = c.benchmark_group("fig8b");
    group.sample_size(30);

    group.bench_function("Rel_reduce_mc_1000", |b| {
        b.iter(|| {
            ReducedMc::new(1_000, 1)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.bench_function("Prop", |b| {
        b.iter(|| Propagation::auto().score(black_box(q)).expect("scores"))
    });
    group.bench_function("Diff", |b| {
        b.iter(|| Diffusion::auto().score(black_box(q)).expect("scores"))
    });
    group.bench_function("InEdge", |b| {
        b.iter(|| InEdge.score(black_box(q)).expect("scores"))
    });
    group.bench_function("PathC", |b| {
        b.iter(|| PathCount.score(black_box(q)).expect("scores"))
    });
    group.finish();
}

criterion_group!(benches, fig8b);
criterion_main!(benches);
