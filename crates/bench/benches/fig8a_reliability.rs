//! Fig. 8a: time to compute reliability scores for a whole query graph
//! under the six strategies the paper compares.
//!
//! Paper result (2008 hardware, msec): M1 731, M2 74, C 97, R&M1 151,
//! R&M2 18, R&C 20 — reduction + 1000-trial Monte Carlo is the fastest,
//! beating even the closed solution. Absolute numbers differ on modern
//! hardware; the ordering is the reproduced artifact.

use biorank_bench::abcc8_case;
use biorank_rank::{ClosedReliability, NaiveMc, Ranker, ReducedMc, TraversalMc};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig8a(c: &mut Criterion) {
    let case = abcc8_case();
    let q = &case.result.query;
    let mut group = c.benchmark_group("fig8a");
    group.sample_size(20);

    group.bench_function("M1_traversal_mc_10000", |b| {
        b.iter(|| {
            TraversalMc::new(10_000, 1)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.bench_function("M2_traversal_mc_1000", |b| {
        b.iter(|| {
            TraversalMc::new(1_000, 1)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.bench_function("C_closed_solution", |b| {
        b.iter(|| {
            ClosedReliability::default()
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.bench_function("R&M1_reduce_mc_10000", |b| {
        b.iter(|| {
            ReducedMc::new(10_000, 1)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.bench_function("R&M2_reduce_mc_1000", |b| {
        b.iter(|| {
            ReducedMc::new(1_000, 1)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.bench_function("naive_mc_10000", |b| {
        b.iter(|| NaiveMc::new(10_000, 1).score(black_box(q)).expect("scores"))
    });
    group.finish();
}

criterion_group!(benches, fig8a);
criterion_main!(benches);
