//! Ablation benches for the design choices called out in DESIGN.md §5.
//!
//! * **Traversal vs naive Monte Carlo** — the paper's own Algorithm 3.1
//!   improvement ("average speed-up of factor 3.4").
//! * **Diffusion inner solver** — exact bisection (ours) vs the paper's
//!   damped fixed-point iteration.
//! * **Sequential vs parallel Monte Carlo** — the crossbeam-based trial
//!   splitting (not in the paper; included to quantify its benefit).

use biorank_bench::abcc8_case;
use biorank_rank::{Diffusion, InnerSolver, NaiveMc, Ranker, TraversalMc};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mc_sampling(c: &mut Criterion) {
    let case = abcc8_case();
    let q = &case.result.query;
    let mut group = c.benchmark_group("ablation_mc_sampling");
    group.sample_size(20);
    group.bench_function("naive_5000", |b| {
        b.iter(|| NaiveMc::new(5_000, 1).score(black_box(q)).expect("scores"))
    });
    group.bench_function("traversal_5000", |b| {
        b.iter(|| {
            TraversalMc::new(5_000, 1)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.finish();
}

fn diffusion_solver(c: &mut Criterion) {
    let case = abcc8_case();
    let q = &case.result.query;
    let mut group = c.benchmark_group("ablation_diffusion_solver");
    group.bench_function("bisection", |b| {
        b.iter(|| {
            Diffusion::auto()
                .with_solver(InnerSolver::Bisection)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.bench_function("fixed_point", |b| {
        b.iter(|| {
            Diffusion::auto()
                .with_solver(InnerSolver::FixedPoint)
                .score(black_box(q))
                .expect("scores")
        })
    });
    group.finish();
}

fn mc_parallelism(c: &mut Criterion) {
    let case = abcc8_case();
    let q = &case.result.query;
    let mut group = c.benchmark_group("ablation_mc_parallelism");
    group.sample_size(10);
    let mc = TraversalMc::new(50_000, 1);
    group.bench_function("sequential_50000", |b| {
        b.iter(|| mc.score(black_box(q)).expect("scores"))
    });
    group.bench_function("parallel4_50000", |b| {
        b.iter(|| mc.score_parallel(black_box(q), 4).expect("scores"))
    });
    group.finish();
}

criterion_group!(benches, mc_sampling, diffusion_solver, mc_parallelism);
criterion_main!(benches);
