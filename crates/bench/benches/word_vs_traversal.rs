//! Word-parallel vs per-trial Monte Carlo at equal trial counts.
//!
//! The acceptance artifact for the `WordMc` engine: on the paper's
//! query graphs (the ABCC8 running example) and on a generated layered
//! workflow, 64-trials-per-word bitmask propagation must beat the
//! per-trial DFS traversal (Algorithm 3.1) by at least 5× — measured
//! ~20× on the fig8 scenario graphs. `scripts/bench.sh` records these
//! numbers per commit in `BENCH_mc.json`.

use biorank_bench::abcc8_case;
use biorank_graph::generate::{self, WorkflowParams};
use biorank_rank::{NaiveMc, Ranker, TraversalMc, WordMc};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn word_vs_traversal(c: &mut Criterion) {
    let case = abcc8_case();
    let abcc8 = &case.result.query;
    let workflow = generate::layered_workflow(&WorkflowParams::default(), 8);
    let mut group = c.benchmark_group("word_vs_traversal");
    group.sample_size(15);

    for (label, q) in [("abcc8", abcc8), ("workflow", &workflow)] {
        for trials in [1_000u32, 10_000] {
            group.bench_function(&format!("{label}/traversal_{trials}"), |b| {
                b.iter(|| {
                    TraversalMc::new(trials, 1)
                        .score(black_box(q))
                        .expect("scores")
                })
            });
            group.bench_function(&format!("{label}/word_{trials}"), |b| {
                b.iter(|| WordMc::new(trials, 1).score(black_box(q)).expect("scores"))
            });
        }
        // Context: the naive baseline the paper measures against.
        group.bench_function(&format!("{label}/naive_10000"), |b| {
            b.iter(|| NaiveMc::new(10_000, 1).score(black_box(q)).expect("scores"))
        });
    }
    group.finish();
}

criterion_group!(benches, word_vs_traversal);
criterion_main!(benches);
