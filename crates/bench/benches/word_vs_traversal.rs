//! Word-parallel vs per-trial Monte Carlo at equal trial counts, plus
//! adaptive bound-certified rows.
//!
//! The acceptance artifact for the `WordMc` engine: on the paper's
//! query graphs (the ABCC8 running example) and on a generated layered
//! workflow, 64-trials-per-word bitmask propagation must beat the
//! per-trial DFS traversal (Algorithm 3.1) by at least 5× — measured
//! ~20× on the fig8 scenario graphs. The `adaptive_*` rows run the
//! same engines under `AdaptiveRunner` at the paper's (ε = 0.02,
//! δ = 0.05) with the fixed 10⁴ budget as ceiling, reporting
//! **trials-to-certification** as a `trials_used` metric next to the
//! timing. `scripts/bench.sh` records all rows per commit in
//! `BENCH_mc.json`.

use biorank_bench::abcc8_case;
use biorank_graph::generate::{self, WorkflowParams};
use biorank_rank::{AdaptiveRunner, NaiveMc, Ranker, TraversalMc, WordMc};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn word_vs_traversal(c: &mut Criterion) {
    let case = abcc8_case();
    let abcc8 = &case.result.query;
    let workflow = generate::layered_workflow(&WorkflowParams::default(), 8);
    let mut group = c.benchmark_group("word_vs_traversal");
    group.sample_size(15);

    for (label, q) in [("abcc8", abcc8), ("workflow", &workflow)] {
        for trials in [1_000u32, 10_000] {
            group.bench_function(&format!("{label}/traversal_{trials}"), |b| {
                b.iter(|| {
                    TraversalMc::new(trials, 1)
                        .score(black_box(q))
                        .expect("scores")
                })
            });
            group.bench_function(&format!("{label}/word_{trials}"), |b| {
                b.iter(|| WordMc::new(trials, 1).score(black_box(q)).expect("scores"))
            });
        }
        // Adaptive rows: same (ε, δ) the fixed 10⁴ budget targets, so
        // `trials_used` IS the win over the fixed schedule.
        group.bench_function(&format!("{label}/adaptive_word_10000"), |b| {
            let mut used = 0u32;
            b.iter(|| {
                let out = AdaptiveRunner::new(WordMc::new(10_000, 1), 0.02, 0.05)
                    .run(black_box(q))
                    .expect("adaptive scores");
                used = out.certificate.trials_used;
                out
            });
            b.metric("trials_used", f64::from(used));
        });
        group.bench_function(&format!("{label}/adaptive_traversal_10000"), |b| {
            let mut used = 0u32;
            b.iter(|| {
                let out = AdaptiveRunner::new(TraversalMc::new(10_000, 1), 0.02, 0.05)
                    .run(black_box(q))
                    .expect("adaptive scores");
                used = out.certificate.trials_used;
                out
            });
            b.metric("trials_used", f64::from(used));
        });
        // Context: the naive baseline the paper measures against.
        group.bench_function(&format!("{label}/naive_10000"), |b| {
            b.iter(|| NaiveMc::new(10_000, 1).score(black_box(q)).expect("scores"))
        });
    }
    group.finish();
}

criterion_group!(benches, word_vs_traversal);
criterion_main!(benches);
