//! Word-parallel vs per-trial Monte Carlo at equal trial counts, plus
//! adaptive bound-certified rows — full and top-k.
//!
//! The acceptance artifact for the `WordMc` engine: on the paper's
//! query graphs (the ABCC8 running example) and on a generated layered
//! workflow, 64-trials-per-word bitmask propagation must beat the
//! per-trial DFS traversal (Algorithm 3.1) by at least 5× — measured
//! ~20× on the fig8 scenario graphs. The `adaptive_*` rows run the
//! same engines under `AdaptiveRunner` at the paper's (ε = 0.02,
//! δ = 0.05) with the fixed 10⁴ budget as ceiling, reporting
//! **trials-to-certification** as a `trials_used` metric next to the
//! timing. The `adaptive_topk_*_k{1,5,10}` rows restrict certification
//! to the top-k prefix + boundary gap on the wide answer sets the
//! feature targets (ABCC8: 97 answers; `workflow_wide`: 24) — their
//! `trials_used` must sit strictly below the full-certification rows
//! of the same graph. `scripts/bench.sh` records all rows per commit
//! in `BENCH_mc.json`.

use biorank_bench::abcc8_case;
use biorank_graph::generate::{self, WorkflowParams};
use biorank_graph::QueryGraph;
use biorank_rank::{
    plan, run_fused, AdaptiveRunner, ClosedReliability, CostModel, Estimator, FusedJob,
    FusedPolicy, GraphFeatures, NaiveMc, PlanFeatures, Ranker, ReducedMc, Strategy, TraversalMc,
    TrialsPolicy, WordMc,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Lane width of the wide word rows — mirrors the service's
/// `FUSION_LANES`. Recorded as a `lanes` metric next to the timing so
/// the perf log distinguishes wide-block rows from the single-mask
/// rows of earlier commits.
const LANES: usize = 8;

/// One adaptive row: certified (optionally top-k) termination at the
/// paper's (ε, δ) under the fixed 10⁴ ceiling, logging
/// trials-to-certification. `lanes` tags wide word engines.
fn adaptive_row<E: Estimator + Copy>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    engine: E,
    top_k: Option<usize>,
    lanes: Option<usize>,
    q: &QueryGraph,
) {
    group.bench_function(name, |b| {
        let mut used = 0u32;
        b.iter(|| {
            let mut runner = AdaptiveRunner::new(engine, 0.02, 0.05);
            if let Some(k) = top_k {
                runner = runner.with_top_k(k);
            }
            let out = runner.run(black_box(q)).expect("adaptive scores");
            used = out.certificate.trials_used;
            out
        });
        b.metric("trials_used", f64::from(used));
        if let Some(lanes) = lanes {
            b.metric("lanes", lanes as f64);
        }
    });
}

fn word_vs_traversal(c: &mut Criterion) {
    let case = abcc8_case();
    let abcc8 = &case.result.query;
    let workflow = generate::layered_workflow(&WorkflowParams::default(), 8);
    // The default workflow has 8 answers — too narrow for a top-10
    // boundary. The wide variant keeps every other parameter and is
    // the generated stand-in for exploratory queries with broad
    // candidate sets.
    let workflow_wide = generate::layered_workflow(
        &WorkflowParams {
            answers: 24,
            ..WorkflowParams::default()
        },
        8,
    );
    let mut group = c.benchmark_group("word_vs_traversal");
    group.sample_size(15);

    for (label, q) in [("abcc8", abcc8), ("workflow", &workflow)] {
        for trials in [1_000u32, 10_000] {
            group.bench_function(&format!("{label}/traversal_{trials}"), |b| {
                b.iter(|| {
                    TraversalMc::new(trials, 1)
                        .score(black_box(q))
                        .expect("scores")
                })
            });
            group.bench_function(&format!("{label}/word_{trials}"), |b| {
                b.iter(|| {
                    WordMc::<LANES>::wide(trials, 1)
                        .score(black_box(q))
                        .expect("scores")
                });
                b.metric("lanes", LANES as f64);
            });
        }
        // Adaptive rows: same (ε, δ) the fixed 10⁴ budget targets, so
        // `trials_used` IS the win over the fixed schedule.
        adaptive_row(
            &mut group,
            &format!("{label}/adaptive_word_10000"),
            WordMc::<LANES>::wide(10_000, 1),
            None,
            Some(LANES),
            q,
        );
        adaptive_row(
            &mut group,
            &format!("{label}/adaptive_traversal_10000"),
            TraversalMc::new(10_000, 1),
            None,
            None,
            q,
        );
        // Context: the naive baseline the paper measures against.
        group.bench_function(&format!("{label}/naive_10000"), |b| {
            b.iter(|| NaiveMc::new(10_000, 1).score(black_box(q)).expect("scores"))
        });
    }

    // Top-k certification rows, on the graphs wide enough for k = 10
    // to leave a tail behind the boundary. workflow_wide also gets its
    // own full-certification rows as the in-graph baseline.
    adaptive_row(
        &mut group,
        "workflow_wide/adaptive_word_10000",
        WordMc::<LANES>::wide(10_000, 1),
        None,
        Some(LANES),
        &workflow_wide,
    );
    adaptive_row(
        &mut group,
        "workflow_wide/adaptive_traversal_10000",
        TraversalMc::new(10_000, 1),
        None,
        None,
        &workflow_wide,
    );
    for (label, q) in [("abcc8", abcc8), ("workflow_wide", &workflow_wide)] {
        for k in [1usize, 5, 10] {
            adaptive_row(
                &mut group,
                &format!("{label}/adaptive_topk_word_10000_k{k}"),
                WordMc::<LANES>::wide(10_000, 1),
                Some(k),
                Some(LANES),
                q,
            );
        }
        adaptive_row(
            &mut group,
            &format!("{label}/adaptive_topk_traversal_10000_k10"),
            TraversalMc::new(10_000, 1),
            Some(10),
            None,
            q,
        );
    }

    // Cost-based planner rows: `planner_auto_*` scores the seed cost
    // model each iteration and executes whatever strategy it picks,
    // next to a forced row for each of the four strategies on the
    // same graph. Acceptance: auto lands within 10% of the best
    // forced row and never below the worst. Features are extracted
    // once per graph — mirroring the service's features cache — so
    // the row prices the per-query planning decision, not the
    // one-time reduction.
    for (label, q) in [
        ("abcc8", abcc8),
        ("workflow", &workflow),
        ("workflow_wide", &workflow_wide),
    ] {
        let features = PlanFeatures {
            graph: GraphFeatures::extract(q),
            top_k: None,
            trials: TrialsPolicy::Fixed(10_000),
        };
        let chosen = plan(&features, &CostModel::default()).strategy;
        group.bench_function(&format!("{label}/planner_auto_10000"), |b| {
            b.iter(|| {
                let p = plan(black_box(&features), &CostModel::default());
                match p.strategy {
                    Strategy::Exact => ClosedReliability::default().score(black_box(q)),
                    Strategy::ReducedMc => ReducedMc::new(10_000, 1).score(black_box(q)),
                    Strategy::WordMc => WordMc::<LANES>::wide(10_000, 1).score(black_box(q)),
                    Strategy::TraversalMc => TraversalMc::new(10_000, 1).score(black_box(q)),
                }
                .expect("planned scores")
            });
            b.metric("strategy", chosen.index() as f64);
        });
        group.bench_function(&format!("{label}/planner_forced_exact"), |b| {
            b.iter(|| {
                ClosedReliability::default()
                    .score(black_box(q))
                    .expect("scores")
            })
        });
        group.bench_function(&format!("{label}/planner_forced_reduced_10000"), |b| {
            b.iter(|| {
                ReducedMc::new(10_000, 1)
                    .score(black_box(q))
                    .expect("scores")
            })
        });
        group.bench_function(&format!("{label}/planner_forced_word_10000"), |b| {
            b.iter(|| {
                WordMc::<LANES>::wide(10_000, 1)
                    .score(black_box(q))
                    .expect("scores")
            })
        });
        group.bench_function(&format!("{label}/planner_forced_traversal_10000"), |b| {
            b.iter(|| {
                TraversalMc::new(10_000, 1)
                    .score(black_box(q))
                    .expect("scores")
            })
        });
    }
    group.finish();
}

/// Multi-query fusion: `jobs` concurrent 10⁴-trial word queries on one
/// resident CSR as a single `run_fused` sweep, vs the same jobs run
/// back-to-back as solo engines. `ns_per_iter` is the whole sweep;
/// divide by `jobs` for per-query cost — the fusion win is that cost
/// falling as lanes fill with batches from different queries.
fn fused(c: &mut Criterion) {
    let case = abcc8_case();
    let abcc8 = &case.result.query;
    let workflow = generate::layered_workflow(&WorkflowParams::default(), 8);
    let mut group = c.benchmark_group("fused");
    group.sample_size(15);

    for (label, q, jobs) in [
        ("abcc8_x1", abcc8, 1u64),
        ("abcc8_x2", abcc8, 2),
        ("abcc8_x8", abcc8, 8),
        ("workflow_x4", &workflow, 4),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let initial = (0..jobs)
                    .map(|i| {
                        (
                            i,
                            FusedJob {
                                seed: i + 1,
                                trials: 10_000,
                                policy: FusedPolicy::Fixed,
                                deadline: None,
                            },
                        )
                    })
                    .collect();
                let mut outs = 0usize;
                run_fused::<LANES>(
                    black_box(q),
                    initial,
                    Vec::new,
                    |_, res| {
                        res.expect("fused scores");
                        outs += 1;
                    },
                    |_| {},
                );
                outs
            });
            b.metric("jobs", jobs as f64);
            b.metric("lanes", LANES as f64);
        });
        // The unfused baseline: the same jobs as sequential solo runs.
        group.bench_function(&format!("{label}_solo"), |b| {
            b.iter(|| {
                for i in 0..jobs {
                    WordMc::<LANES>::wide(10_000, i + 1)
                        .score(black_box(q))
                        .expect("scores");
                }
            });
            b.metric("jobs", jobs as f64);
            b.metric("lanes", LANES as f64);
        });
    }
    group.finish();
}

criterion_group!(benches, word_vs_traversal, fused);
criterion_main!(benches);
