//! Word-parallel vs per-trial Monte Carlo at equal trial counts, plus
//! adaptive bound-certified rows — full and top-k.
//!
//! The acceptance artifact for the `WordMc` engine: on the paper's
//! query graphs (the ABCC8 running example) and on a generated layered
//! workflow, 64-trials-per-word bitmask propagation must beat the
//! per-trial DFS traversal (Algorithm 3.1) by at least 5× — measured
//! ~20× on the fig8 scenario graphs. The `adaptive_*` rows run the
//! same engines under `AdaptiveRunner` at the paper's (ε = 0.02,
//! δ = 0.05) with the fixed 10⁴ budget as ceiling, reporting
//! **trials-to-certification** as a `trials_used` metric next to the
//! timing. The `adaptive_topk_*_k{1,5,10}` rows restrict certification
//! to the top-k prefix + boundary gap on the wide answer sets the
//! feature targets (ABCC8: 97 answers; `workflow_wide`: 24) — their
//! `trials_used` must sit strictly below the full-certification rows
//! of the same graph. `scripts/bench.sh` records all rows per commit
//! in `BENCH_mc.json`.

use biorank_bench::abcc8_case;
use biorank_graph::generate::{self, WorkflowParams};
use biorank_graph::QueryGraph;
use biorank_rank::{AdaptiveRunner, Estimator, NaiveMc, Ranker, TraversalMc, WordMc};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One adaptive row: certified (optionally top-k) termination at the
/// paper's (ε, δ) under the fixed 10⁴ ceiling, logging
/// trials-to-certification.
fn adaptive_row<E: Estimator + Copy>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    engine: E,
    top_k: Option<usize>,
    q: &QueryGraph,
) {
    group.bench_function(name, |b| {
        let mut used = 0u32;
        b.iter(|| {
            let mut runner = AdaptiveRunner::new(engine, 0.02, 0.05);
            if let Some(k) = top_k {
                runner = runner.with_top_k(k);
            }
            let out = runner.run(black_box(q)).expect("adaptive scores");
            used = out.certificate.trials_used;
            out
        });
        b.metric("trials_used", f64::from(used));
    });
}

fn word_vs_traversal(c: &mut Criterion) {
    let case = abcc8_case();
    let abcc8 = &case.result.query;
    let workflow = generate::layered_workflow(&WorkflowParams::default(), 8);
    // The default workflow has 8 answers — too narrow for a top-10
    // boundary. The wide variant keeps every other parameter and is
    // the generated stand-in for exploratory queries with broad
    // candidate sets.
    let workflow_wide = generate::layered_workflow(
        &WorkflowParams {
            answers: 24,
            ..WorkflowParams::default()
        },
        8,
    );
    let mut group = c.benchmark_group("word_vs_traversal");
    group.sample_size(15);

    for (label, q) in [("abcc8", abcc8), ("workflow", &workflow)] {
        for trials in [1_000u32, 10_000] {
            group.bench_function(&format!("{label}/traversal_{trials}"), |b| {
                b.iter(|| {
                    TraversalMc::new(trials, 1)
                        .score(black_box(q))
                        .expect("scores")
                })
            });
            group.bench_function(&format!("{label}/word_{trials}"), |b| {
                b.iter(|| WordMc::new(trials, 1).score(black_box(q)).expect("scores"))
            });
        }
        // Adaptive rows: same (ε, δ) the fixed 10⁴ budget targets, so
        // `trials_used` IS the win over the fixed schedule.
        adaptive_row(
            &mut group,
            &format!("{label}/adaptive_word_10000"),
            WordMc::new(10_000, 1),
            None,
            q,
        );
        adaptive_row(
            &mut group,
            &format!("{label}/adaptive_traversal_10000"),
            TraversalMc::new(10_000, 1),
            None,
            q,
        );
        // Context: the naive baseline the paper measures against.
        group.bench_function(&format!("{label}/naive_10000"), |b| {
            b.iter(|| NaiveMc::new(10_000, 1).score(black_box(q)).expect("scores"))
        });
    }

    // Top-k certification rows, on the graphs wide enough for k = 10
    // to leave a tail behind the boundary. workflow_wide also gets its
    // own full-certification rows as the in-graph baseline.
    adaptive_row(
        &mut group,
        "workflow_wide/adaptive_word_10000",
        WordMc::new(10_000, 1),
        None,
        &workflow_wide,
    );
    adaptive_row(
        &mut group,
        "workflow_wide/adaptive_traversal_10000",
        TraversalMc::new(10_000, 1),
        None,
        &workflow_wide,
    );
    for (label, q) in [("abcc8", abcc8), ("workflow_wide", &workflow_wide)] {
        for k in [1usize, 5, 10] {
            adaptive_row(
                &mut group,
                &format!("{label}/adaptive_topk_word_10000_k{k}"),
                WordMc::new(10_000, 1),
                Some(k),
                q,
            );
        }
        adaptive_row(
            &mut group,
            &format!("{label}/adaptive_topk_traversal_10000_k10"),
            TraversalMc::new(10_000, 1),
            Some(10),
            q,
        );
    }
    group.finish();
}

criterion_group!(benches, word_vs_traversal);
criterion_main!(benches);
