//! Multi-world tenancy: a registry of named resident worlds.
//!
//! A production deployment serves many worlds at once — per-seed
//! snapshots, the compact vs extended federation, staging data warmed
//! up next to live data — and must swap one out without ever serving a
//! stale ranked answer. [`WorldManager`] owns that registry:
//!
//! * **Concurrent read, exclusive swap.** Resolving a world clones an
//!   `Arc<QueryEngine>` under a briefly-held registry lock; query
//!   execution itself never holds any tenancy lock, so a swap on one
//!   world cannot stall queries on another (or even in-flight queries
//!   on the same world — they complete against the engine they
//!   resolved).
//! * **Swap = fresh engine = cold caches.** [`WorldManager::swap`]
//!   builds the replacement engine *outside* the lock, then replaces
//!   the registry entry in one critical section and bumps the world's
//!   generation counter. Both cache layers of the replaced engine die
//!   with its last `Arc` — there is no window in which a post-swap
//!   request can observe a pre-swap cache entry, which is exactly what
//!   `tests/service_tenancy.rs` asserts.
//! * **LRU eviction under a resident budget.** Worlds are heavy (a
//!   generated world plus two cache layers), so at most
//!   [`WorldManager::budget`] stay resident; loading past the budget
//!   evicts the least-recently-resolved world. The default world is
//!   pinned and never evicted.
//!
//! Generations are drawn from one registry-wide monotonic counter
//! (assigned under the registry lock), so they survive eviction with
//! no per-name bookkeeping: `world.load` → `world.evict` →
//! `world.load` is observably a different generation, and a client
//! can always tell whether two responses could have come from the
//! same engine.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use biorank_mediator::Mediator;
use biorank_obs::{MetricsRegistry, MetricsSnapshot, SlowQueryEntry};
use biorank_rank::Strategy;
use biorank_schema::{biorank_schema_full, biorank_schema_with_ontology};
use biorank_sources::{World, WorldParams};
use biorank_store::{WalOp, WorldStore};

use crate::engine::{EngineStats, QueryEngine, DEFAULT_CACHE_CAPACITY};
use crate::persist;

/// The name of the world queries route to when they name none.
pub const DEFAULT_WORLD: &str = "default";

/// Default resident-world budget.
pub const DEFAULT_WORLD_BUDGET: usize = 4;

/// Default number of hot result-cache keys a `world.swap` replays into
/// the replacement engine before installing it (pass `warm: 0` on the
/// wire to opt out). Small on purpose: each key is one real query
/// against the fresh engine, and the goal is only to keep the hottest
/// requests off the post-swap latency cliff.
pub const DEFAULT_SWAP_WARM: usize = 8;

/// Everything needed to (re)build one world's engine: the generation
/// seed plus the federation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorldSpec {
    /// Master world seed; equal seeds generate equal worlds.
    pub seed: u64,
    /// Integrate over the full 11-source federation instead of the
    /// paper's Fig. 1 subset.
    pub extended: bool,
    /// Per-layer LRU capacity of the world's engine caches.
    pub cache_capacity: usize,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            seed: WorldParams::default().seed,
            extended: false,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl WorldSpec {
    /// Generates the world and wraps it in a fresh engine (fresh, cold
    /// caches). This is the expensive step; callers run it outside any
    /// registry lock.
    pub fn build(&self) -> QueryEngine {
        let world = World::generate(WorldParams {
            seed: self.seed,
            extended: self.extended,
            ..WorldParams::default()
        });
        let bundle = if self.extended {
            biorank_schema_full()
        } else {
            biorank_schema_with_ontology()
        };
        let hints = bundle.hints.clone();
        QueryEngine::with_cache_capacity(
            Mediator::new(bundle.schema, world.registry()),
            self.cache_capacity,
        )
        // The bundle's Theorem 3.2 compose hints feed the query
        // planner's schema-reducibility feature.
        .with_hints(hints)
    }

    /// A stable 64-bit fingerprint of this spec (XXH64 over its
    /// canonical binary encoding). Surfaced in `world.list` so an
    /// operator can confirm a restarted world was rebuilt from — or
    /// snapshot-restored to — exactly the pre-restart configuration;
    /// also embedded in snapshot payloads as a cheap drift check.
    pub fn spec_hash(&self) -> u64 {
        let mut w = biorank_store::Writer::new();
        w.u64(self.seed);
        w.bool(self.extended);
        w.u64(self.cache_capacity as u64);
        biorank_store::xxh64(&w.into_inner(), 0x5bec_6a54)
    }
}

/// Tenancy-level failures, rendered over the wire as error strings.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenancyError {
    /// A query or admin command named a world that is not resident.
    WorldNotFound(String),
    /// A query or admin command named a world whose background build
    /// has not finished yet.
    WorldLoading(String),
    /// `world.load` of an existing name with a different spec (use
    /// `world.swap` to replace a resident world).
    SpecMismatch(String),
    /// The resident budget is exhausted and no world is evictable.
    BudgetExhausted(usize),
    /// The default world cannot be evicted.
    DefaultPinned,
    /// The durability layer failed to record or restore an admin op
    /// (WAL append, snapshot write/read). The in-memory registry may
    /// be ahead of the log; the op itself completed.
    Persist(String),
}

impl fmt::Display for TenancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenancyError::WorldNotFound(name) => write!(f, "world {name:?} is not resident"),
            TenancyError::WorldLoading(name) => {
                write!(f, "world {name:?} is still loading")
            }
            TenancyError::SpecMismatch(name) => write!(
                f,
                "world {name:?} is already resident with a different spec; use world.swap"
            ),
            TenancyError::BudgetExhausted(budget) => write!(
                f,
                "resident-world budget ({budget}) exhausted and nothing is evictable"
            ),
            TenancyError::DefaultPinned => {
                write!(
                    f,
                    "the {DEFAULT_WORLD:?} world is pinned and cannot be evicted"
                )
            }
            TenancyError::Persist(msg) => write!(f, "persistence failed: {msg}"),
        }
    }
}

impl std::error::Error for TenancyError {}

/// Residency state of a world in a `world.list` snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WorldState {
    /// Resident and serving queries.
    #[default]
    Ready,
    /// A background `world.load` is still building the engine.
    Loading,
}

impl WorldState {
    /// The canonical wire spelling.
    pub fn wire_name(&self) -> &'static str {
        match self {
            WorldState::Ready => "ready",
            WorldState::Loading => "loading",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(name: &str) -> Option<WorldState> {
        Some(match name {
            "ready" => WorldState::Ready,
            "loading" => WorldState::Loading,
            _ => return None,
        })
    }
}

/// A snapshot of one resident (or loading) world, as reported by
/// `world.list`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldInfo {
    /// Registry name.
    pub name: String,
    /// The spec the resident engine was built from (for a loading
    /// world: the spec being built).
    pub spec: WorldSpec,
    /// Generation of the resident engine, from the registry-wide
    /// monotonic counter (every load and swap draws a fresh one).
    /// A loading world has no engine yet and reports 0.
    pub generation: u64,
    /// Whether the world is serving or still building.
    pub state: WorldState,
    /// This world's planner strategy mix — its `planner.chosen.*`
    /// counters, indexed by [`biorank_rank::Strategy::index`]
    /// (exact, reduced, word, traversal) — so operators can read the
    /// per-world strategy distribution straight off `world.list`.
    /// All zero for loading worlds (no engine yet).
    pub planner_chosen: [u64; 4],
}

/// Per-world counters inside a [`ServiceStats`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldStats {
    /// Registry name.
    pub name: String,
    /// Current generation.
    pub generation: u64,
    /// Cache counters of the world's engine.
    pub engine: EngineStats,
}

/// The `stats` wire command's payload: every resident world's cache
/// counters plus the tenancy configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceStats {
    /// Resident-world budget.
    pub budget: usize,
    /// Number of resident worlds.
    pub resident: usize,
    /// Whether a durable [`WorldStore`] backs this registry (`biorank
    /// serve --data-dir`): admin ops are WAL-logged and worlds survive
    /// a restart.
    pub durable: bool,
    /// Per-world counters, sorted by name.
    pub worlds: Vec<WorldStats>,
}

/// One resident world's full metrics snapshot inside a
/// [`MetricsReport`]. A world's registry lives (and dies) with its
/// engine, so a swapped world starts its counters from zero — exactly
/// like its caches.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldMetrics {
    /// Registry name.
    pub name: String,
    /// Snapshot of the world engine's metrics registry.
    pub metrics: MetricsSnapshot,
}

/// The `metrics` wire command's payload: the service-level registry
/// (tenancy + server counters), every resident world's registry, and
/// the slow-query ring buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Service-level counters, gauges, and histograms (tenancy
    /// operations, connection/request accounting).
    pub service: MetricsSnapshot,
    /// Per-world snapshots, sorted by name.
    pub worlds: Vec<WorldMetrics>,
    /// Most recent slow queries, oldest first.
    pub slow_queries: Vec<SlowQueryEntry>,
}

struct WorldEntry {
    engine: Arc<QueryEngine>,
    spec: WorldSpec,
    generation: u64,
    last_used: u64,
}

struct Registry {
    worlds: HashMap<String, WorldEntry>,
    /// Worlds whose background `world.load` build is still running.
    /// Disjoint from `worlds`: installation moves a name from here to
    /// there under one critical section.
    loading: HashMap<String, WorldSpec>,
    /// Registry-wide monotonic generation counter. Assigned under the
    /// lock, so later inserts always carry greater generations; being
    /// global (not per-name) it survives eviction with no per-name
    /// state to leak, and any re-load or swap of a name is observably
    /// newer than every earlier engine of that name.
    next_generation: u64,
}

impl Registry {
    fn bump(&mut self) -> u64 {
        self.next_generation += 1;
        self.next_generation
    }
}

/// A thread-safe registry of named resident worlds.
///
/// Share it with an `Arc`; every operation takes `&self`. The registry
/// lock is held only for map bookkeeping — world generation and query
/// execution always happen outside it.
pub struct WorldManager {
    registry: Mutex<Registry>,
    budget: usize,
    clock: AtomicU64,
    /// Service-level metrics: tenancy operations live here, and the
    /// server registers its connection/request counters into the same
    /// registry so one `metrics` snapshot covers the whole service.
    metrics: Arc<MetricsRegistry>,
    /// Durable backing, when serving with `--data-dir`: every
    /// acknowledged load/swap/evict is WAL-logged here **after** the
    /// registry mutation and **before** the op returns, and
    /// [`checkpoint`](WorldManager::checkpoint) compacts the log into
    /// the manifest plus per-world snapshots.
    store: Option<Arc<WorldStore>>,
}

impl WorldManager {
    /// An empty manager with the given resident budget (clamped to at
    /// least 1).
    pub fn new(budget: usize) -> Self {
        WorldManager {
            registry: Mutex::new(Registry {
                worlds: HashMap::new(),
                loading: HashMap::new(),
                next_generation: 0,
            }),
            budget: budget.max(1),
            clock: AtomicU64::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
            store: None,
        }
    }

    /// Attaches a durable [`WorldStore`]: every subsequent
    /// load/swap/evict is WAL-logged before it is acknowledged. Worlds
    /// already resident (e.g. the default world of
    /// [`with_default`](WorldManager::with_default)) are logged
    /// immediately so they too survive a restart. Restore paths
    /// ([`restore_background`](WorldManager::restore_background)) do
    /// **not** re-log — their ops are already in the manifest or WAL.
    pub fn with_store(mut self, store: Arc<WorldStore>) -> Result<Self, TenancyError> {
        {
            let reg = self.registry.lock().expect("world registry");
            for (name, entry) in &reg.worlds {
                store
                    .append(&WalOp::Load {
                        world: name.clone(),
                        spec: persist::stored_spec(entry.spec),
                        generation: entry.generation,
                    })
                    .map_err(|e| TenancyError::Persist(e.to_string()))?;
            }
        }
        self.store = Some(store);
        Ok(self)
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<WorldStore>> {
        self.store.as_ref()
    }

    /// Raises the registry's generation counter so freshly assigned
    /// generations never collide with ones recovered from a store
    /// (`next` is the store's "next unassigned" convention). Called
    /// once at boot, before any restore installs.
    pub fn set_generation_floor(&self, next: u64) {
        let mut reg = self.registry.lock().expect("world registry");
        reg.next_generation = reg.next_generation.max(next.saturating_sub(1));
    }

    /// WAL-logs evictions plus an optional final op, fsync'd, after
    /// the registry mutation they describe. A failure surfaces as
    /// [`TenancyError::Persist`]: the in-memory op stands (a restart
    /// simply won't know about it), the caller's ack carries the
    /// error.
    fn log_ops(&self, victims: &[String], op: Option<WalOp>) -> Result<(), TenancyError> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        for victim in victims {
            store
                .append(&WalOp::Evict {
                    world: victim.clone(),
                })
                .map_err(|e| TenancyError::Persist(e.to_string()))?;
            // Best-effort: a stale snapshot is also guarded against at
            // import time by the spec check.
            let _ = store.remove_snapshot(victim);
        }
        if let Some(op) = op {
            store
                .append(&op)
                .map_err(|e| TenancyError::Persist(e.to_string()))?;
        }
        Ok(())
    }

    /// The service-level metrics registry. Tenancy counters land here;
    /// the server shares it for its own connection/request metrics.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Refreshes the `tenancy.resident` / `tenancy.loading` gauges;
    /// called after any registry mutation, outside the registry lock
    /// where convenient (gauges are last-write-wins by design).
    fn update_residency_gauges(&self, resident: usize, loading: usize) {
        self.metrics.gauge("tenancy.resident").set(resident as u64);
        self.metrics.gauge("tenancy.loading").set(loading as u64);
    }

    /// A manager whose [`DEFAULT_WORLD`] is an already-built engine —
    /// how a single-world `Server::bind` wraps its engine.
    pub fn with_default(engine: Arc<QueryEngine>, spec: WorldSpec, budget: usize) -> Self {
        let mgr = WorldManager::new(budget);
        {
            let mut reg = mgr.registry.lock().expect("world registry");
            let generation = reg.bump();
            reg.worlds.insert(
                DEFAULT_WORLD.to_string(),
                WorldEntry {
                    engine,
                    spec,
                    generation,
                    last_used: 0,
                },
            );
        }
        mgr.metrics.counter("tenancy.load").inc();
        mgr.update_residency_gauges(1, 0);
        mgr
    }

    /// The resident-world budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Resolves a world name (`None` = [`DEFAULT_WORLD`]) to its
    /// engine, marking it most-recently-used. The returned `Arc` stays
    /// valid across concurrent swaps and evictions — callers execute
    /// against it without holding any lock.
    pub fn resolve(&self, world: Option<&str>) -> Result<Arc<QueryEngine>, TenancyError> {
        let name = world.unwrap_or(DEFAULT_WORLD);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut reg = self.registry.lock().expect("world registry");
        let Some(entry) = reg.worlds.get_mut(name) else {
            return Err(if reg.loading.contains_key(name) {
                TenancyError::WorldLoading(name.to_string())
            } else {
                TenancyError::WorldNotFound(name.to_string())
            });
        };
        entry.last_used = stamp;
        Ok(Arc::clone(&entry.engine))
    }

    /// Ensures `name` is resident with `spec`, building it if absent.
    /// Returns the world's generation. Loading an already-resident
    /// world with the identical spec is a cheap no-op; with a
    /// different spec it is an error ([`TenancyError::SpecMismatch`])
    /// — replacement is `swap`'s job, never an accident of `load`.
    pub fn load(&self, name: &str, spec: WorldSpec) -> Result<u64, TenancyError> {
        if let Some(entry) = self.lookup(name)? {
            let (existing, generation) = entry;
            if existing == spec {
                return Ok(generation);
            }
            return Err(TenancyError::SpecMismatch(name.to_string()));
        }
        // An exhausted budget is knowable before paying for a world
        // build; re-checked under the insert lock below (the cheap
        // check can race evictions, never the other way).
        self.check_room(name)?;
        // Build outside the lock: generation takes milliseconds and
        // must not block queries on resident worlds.
        let engine = Arc::new(spec.build());
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut reg = self.registry.lock().expect("world registry");
        // Lost a build race? Keep the winner.
        if let Some(entry) = reg.worlds.get(name) {
            if entry.spec == spec {
                return Ok(entry.generation);
            }
            return Err(TenancyError::SpecMismatch(name.to_string()));
        }
        let victims = Self::make_room(&mut reg, self.budget, name)?;
        let generation = reg.bump();
        reg.worlds.insert(
            name.to_string(),
            WorldEntry {
                engine,
                spec,
                generation,
                last_used: stamp,
            },
        );
        let (resident, loading) = (reg.worlds.len(), reg.loading.len());
        drop(reg);
        self.metrics.counter("tenancy.load").inc();
        if !victims.is_empty() {
            self.metrics
                .counter("tenancy.evict.lru")
                .add(victims.len() as u64);
        }
        self.update_residency_gauges(resident, loading);
        self.log_ops(
            &victims,
            Some(WalOp::Load {
                world: name.to_string(),
                spec: persist::stored_spec(spec),
                generation,
            }),
        )?;
        Ok(generation)
    }

    /// Starts loading `name` on a detached worker thread and returns
    /// immediately: the admin connection (and its worker slot) is free
    /// while the world generates. The world appears in
    /// [`list`](WorldManager::list) as `loading` until the worker
    /// installs it; queries naming it fail with
    /// [`TenancyError::WorldLoading`] until then.
    ///
    /// Returns `Ok(Some(generation))` when `name` is already resident
    /// with the identical spec (nothing to do), `Ok(None)` when a
    /// build is now (or was already) in flight for that spec. A
    /// mismatched spec is refused exactly like the synchronous
    /// [`load`](WorldManager::load). If the budget fills up while the
    /// build runs, the finished engine is discarded and the loading
    /// marker cleared — background loading is best-effort, and
    /// `world.list` tells the operator the outcome either way.
    pub fn load_background(
        self: &Arc<Self>,
        name: &str,
        spec: WorldSpec,
    ) -> Result<Option<u64>, TenancyError> {
        {
            let reg = self.registry.lock().expect("world registry");
            if let Some(entry) = reg.worlds.get(name) {
                if entry.spec == spec {
                    return Ok(Some(entry.generation));
                }
                return Err(TenancyError::SpecMismatch(name.to_string()));
            }
            if let Some(pending) = reg.loading.get(name) {
                if *pending == spec {
                    return Ok(None);
                }
                return Err(TenancyError::WorldLoading(name.to_string()));
            }
        }
        self.check_room(name)?;
        {
            let mut reg = self.registry.lock().expect("world registry");
            // A concurrent load may have won the race above; redo the
            // cheap checks under the lock before claiming the name.
            if reg.worlds.contains_key(name) || reg.loading.contains_key(name) {
                drop(reg);
                return self.load_background(name, spec);
            }
            reg.loading.insert(name.to_string(), spec);
            let (resident, loading) = (reg.worlds.len(), reg.loading.len());
            drop(reg);
            self.metrics.counter("tenancy.load_background").inc();
            self.update_residency_gauges(resident, loading);
        }
        let mgr = Arc::clone(self);
        let name = name.to_string();
        std::thread::spawn(move || {
            // The marker must not outlive this thread no matter how it
            // exits: a panicking world build would otherwise wedge the
            // name in "loading" forever. The guard clears it on every
            // path; the happy path queries `cleared()` to learn whether
            // it still owned the claim (an evict cancels the load by
            // removing the marker first — see `evict`).
            struct ClearMarker {
                mgr: Arc<WorldManager>,
                name: String,
                armed: bool,
            }
            impl Drop for ClearMarker {
                fn drop(&mut self) {
                    if self.armed {
                        let mut reg = self.mgr.registry.lock().expect("world registry");
                        reg.loading.remove(&self.name);
                    }
                }
            }
            let mut guard = ClearMarker {
                mgr: Arc::clone(&mgr),
                name: name.clone(),
                armed: true,
            };
            // Build outside every lock, then clear the marker and
            // install (or give up) in one critical section.
            let engine = Arc::new(spec.build());
            let stamp = mgr.clock.fetch_add(1, Ordering::Relaxed) + 1;
            let mut reg = mgr.registry.lock().expect("world registry");
            guard.armed = false;
            if reg.loading.remove(&name).is_none() {
                return; // the load was cancelled (evicted) mid-build
            }
            if reg.worlds.contains_key(&name) {
                return; // a sync load/swap raced us; keep the winner
            }
            let Ok(victims) = Self::make_room(&mut reg, mgr.budget, &name) else {
                return; // budget filled up mid-build; discard
            };
            let generation = reg.bump();
            reg.worlds.insert(
                name.clone(),
                WorldEntry {
                    engine,
                    spec,
                    generation,
                    last_used: stamp,
                },
            );
            let (resident, loading) = (reg.worlds.len(), reg.loading.len());
            drop(reg);
            mgr.metrics.counter("tenancy.load").inc();
            if !victims.is_empty() {
                mgr.metrics
                    .counter("tenancy.evict.lru")
                    .add(victims.len() as u64);
            }
            mgr.update_residency_gauges(resident, loading);
            // No admin connection is waiting on a background install,
            // so a WAL failure can only be surfaced as telemetry.
            if mgr
                .log_ops(
                    &victims,
                    Some(WalOp::Load {
                        world: name,
                        spec: persist::stored_spec(spec),
                        generation,
                    }),
                )
                .is_err()
            {
                mgr.metrics.counter("tenancy.persist_errors").inc();
            }
        });
        Ok(None)
    }

    /// Replaces (or creates) `name` with a freshly built engine and
    /// bumps its generation. The replaced engine's two cache layers
    /// are dropped with its last `Arc`, so every post-swap request
    /// recomputes — in-flight requests that already resolved the old
    /// engine finish against it, but can never repopulate the new one.
    ///
    /// `warm` replays up to that many of the replaced engine's hottest
    /// result-cache keys against the replacement **before** it is
    /// installed, so the hottest queries don't fall off a latency
    /// cliff at the moment of the swap. The warmed entries are fresh
    /// computations by the new engine — warming can never resurrect a
    /// pre-swap answer. Keys whose stored result was top-k-certified
    /// carry their `k` tag and are replayed as the same
    /// top-k-certified request, so warming spends the trials the hot
    /// clients actually spend (see [`QueryEngine::hot_result_keys`]).
    /// Pass 0 to install cold.
    pub fn swap(&self, name: &str, spec: WorldSpec, warm: usize) -> Result<u64, TenancyError> {
        self.check_room(name)?;
        let engine = Arc::new(spec.build());
        if warm > 0 {
            if let Some(old) = self.peek(name) {
                let replayed = engine.warm(&old.hot_result_keys(warm));
                self.metrics
                    .counter("tenancy.swap.warm_replayed")
                    .add(replayed as u64);
            }
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut reg = self.registry.lock().expect("world registry");
        let victims = if !reg.worlds.contains_key(name) {
            Self::make_room(&mut reg, self.budget, name)?
        } else {
            Vec::new()
        };
        let generation = reg.bump();
        reg.worlds.insert(
            name.to_string(),
            WorldEntry {
                engine,
                spec,
                generation,
                last_used: stamp,
            },
        );
        let (resident, loading) = (reg.worlds.len(), reg.loading.len());
        drop(reg);
        self.metrics.counter("tenancy.swap").inc();
        self.update_residency_gauges(resident, loading);
        self.log_ops(
            &victims,
            Some(WalOp::Swap {
                world: name.to_string(),
                spec: persist::stored_spec(spec),
                generation,
            }),
        )?;
        Ok(generation)
    }

    /// The currently installed engine of `name`, without touching the
    /// LRU clock (swap warm-up must not promote the world it is about
    /// to replace).
    fn peek(&self, name: &str) -> Option<Arc<QueryEngine>> {
        let reg = self.registry.lock().expect("world registry");
        reg.worlds.get(name).map(|e| Arc::clone(&e.engine))
    }

    /// Evicts a resident world. The default world is pinned. Evicting
    /// a name that is still background-loading **cancels** the load:
    /// the marker is cleared here, and the worker discards its engine
    /// when it finds the claim gone at install time.
    pub fn evict(&self, name: &str) -> Result<(), TenancyError> {
        if name == DEFAULT_WORLD {
            return Err(TenancyError::DefaultPinned);
        }
        let mut reg = self.registry.lock().expect("world registry");
        if reg.worlds.remove(name).is_some() || reg.loading.remove(name).is_some() {
            let (resident, loading) = (reg.worlds.len(), reg.loading.len());
            drop(reg);
            self.metrics.counter("tenancy.evict").inc();
            self.update_residency_gauges(resident, loading);
            self.log_ops(std::slice::from_ref(&name.to_string()), None)?;
            return Ok(());
        }
        Err(TenancyError::WorldNotFound(name.to_string()))
    }

    /// `world.save`: writes a durable snapshot of one resident world —
    /// its spec plus both engine cache layers — as an atomic,
    /// checksummed container file in the data directory. Returns the
    /// world's generation and the snapshot size in bytes. Requires an
    /// attached store.
    pub fn save(&self, name: &str) -> Result<(u64, u64), TenancyError> {
        let store = self.require_store()?;
        let (engine, spec, generation) = {
            let reg = self.registry.lock().expect("world registry");
            let Some(e) = reg.worlds.get(name) else {
                return Err(if reg.loading.contains_key(name) {
                    TenancyError::WorldLoading(name.to_string())
                } else {
                    TenancyError::WorldNotFound(name.to_string())
                });
            };
            (Arc::clone(&e.engine), e.spec, e.generation)
        };
        // Export and write outside the registry lock: a snapshot of a
        // busy world must not stall resolves on other worlds.
        let payload = persist::export_snapshot(&engine, spec);
        let (_file, bytes) = store
            .save_snapshot(name, &payload)
            .map_err(|e| TenancyError::Persist(e.to_string()))?;
        Ok((generation, bytes))
    }

    /// `checkpoint`: snapshots every resident world, rewrites the
    /// manifest to the current registry state (with snapshot
    /// pointers), and truncates the WAL — log compaction. A restart
    /// after a checkpoint replays zero WAL records and reloads every
    /// world from its snapshot. Returns `(worlds, total snapshot
    /// bytes)`. Requires an attached store.
    pub fn checkpoint(&self) -> Result<(usize, u64), TenancyError> {
        let store = self.require_store()?;
        let (worlds, next_generation) = {
            let reg = self.registry.lock().expect("world registry");
            let worlds: Vec<(String, WorldSpec, u64, Arc<QueryEngine>)> = reg
                .worlds
                .iter()
                .map(|(name, e)| (name.clone(), e.spec, e.generation, Arc::clone(&e.engine)))
                .collect();
            // The store convention is "next unassigned"; the registry
            // counter holds the last assigned generation.
            (worlds, reg.next_generation + 1)
        };
        let mut total_bytes = 0u64;
        let mut entries = Vec::with_capacity(worlds.len());
        for (name, spec, generation, engine) in &worlds {
            let payload = persist::export_snapshot(engine, *spec);
            let (file, bytes) = store
                .save_snapshot(name, &payload)
                .map_err(|e| TenancyError::Persist(e.to_string()))?;
            total_bytes += bytes;
            entries.push((name.clone(), *spec, *generation, Some(file)));
        }
        let mut manifest = WorldStore::manifest_from_worlds(
            next_generation,
            entries.iter().map(|(name, spec, generation, file)| {
                (
                    name.as_str(),
                    persist::stored_spec(*spec),
                    *generation,
                    file.clone(),
                )
            }),
        );
        store
            .checkpoint(&mut manifest)
            .map_err(|e| TenancyError::Persist(e.to_string()))?;
        Ok((worlds.len(), total_bytes))
    }

    /// Warm-restart install: rebuilds a recovered world on a detached
    /// worker thread under its **recorded** generation (no counter
    /// bump, no WAL append — the op being replayed is already
    /// durable), then replays the snapshot payload's cache entries
    /// into the fresh engine so it answers bit-identically from its
    /// first request. A payload whose embedded spec mismatches `spec`
    /// is skipped (cold caches) — the stale-snapshot guard. The world
    /// lists as `loading` until installed, exactly like a background
    /// load.
    pub fn restore_background(
        self: &Arc<Self>,
        name: &str,
        spec: WorldSpec,
        generation: u64,
        snapshot: Option<Vec<u8>>,
    ) -> Result<(), TenancyError> {
        {
            let mut reg = self.registry.lock().expect("world registry");
            if reg.worlds.contains_key(name) || reg.loading.contains_key(name) {
                return Err(TenancyError::SpecMismatch(name.to_string()));
            }
            reg.loading.insert(name.to_string(), spec);
            let (resident, loading) = (reg.worlds.len(), reg.loading.len());
            drop(reg);
            self.metrics.counter("tenancy.restore").inc();
            self.update_residency_gauges(resident, loading);
        }
        let mgr = Arc::clone(self);
        let name = name.to_string();
        std::thread::spawn(move || {
            struct ClearMarker {
                mgr: Arc<WorldManager>,
                name: String,
                armed: bool,
            }
            impl Drop for ClearMarker {
                fn drop(&mut self) {
                    if self.armed {
                        let mut reg = self.mgr.registry.lock().expect("world registry");
                        reg.loading.remove(&self.name);
                    }
                }
            }
            let mut guard = ClearMarker {
                mgr: Arc::clone(&mgr),
                name: name.clone(),
                armed: true,
            };
            let engine = Arc::new(spec.build());
            if let Some(payload) = snapshot {
                match persist::import_snapshot(&engine, &payload, spec) {
                    Ok(_) => {
                        mgr.metrics.counter("tenancy.restore.snapshot").inc();
                    }
                    Err(_) => {
                        // Corrupt or stale payload: serve cold rather
                        // than wrong.
                        mgr.metrics.counter("tenancy.restore.cold").inc();
                    }
                }
            }
            let stamp = mgr.clock.fetch_add(1, Ordering::Relaxed) + 1;
            let mut reg = mgr.registry.lock().expect("world registry");
            guard.armed = false;
            if reg.loading.remove(&name).is_none() {
                return; // cancelled by an evict mid-restore
            }
            if reg.worlds.contains_key(&name) {
                return; // an admin op raced the restore; keep it
            }
            if Self::make_room(&mut reg, mgr.budget, &name).is_err() {
                return; // budget filled mid-restore; discard
            }
            reg.next_generation = reg.next_generation.max(generation);
            reg.worlds.insert(
                name,
                WorldEntry {
                    engine,
                    spec,
                    generation,
                    last_used: stamp,
                },
            );
            let (resident, loading) = (reg.worlds.len(), reg.loading.len());
            drop(reg);
            mgr.update_residency_gauges(resident, loading);
        });
        Ok(())
    }

    fn require_store(&self) -> Result<&Arc<WorldStore>, TenancyError> {
        self.store.as_ref().ok_or_else(|| {
            TenancyError::Persist("no data directory attached (serve with --data-dir)".into())
        })
    }

    /// Snapshot of every resident and loading world, sorted by name.
    pub fn list(&self) -> Vec<WorldInfo> {
        // Clone the engines out of the lock, then read their planner
        // counters unlocked — metric reads must not nest inside the
        // registry lock.
        let (ready, loading) = {
            let reg = self.registry.lock().expect("world registry");
            (
                reg.worlds
                    .iter()
                    .map(|(name, e)| (name.clone(), e.spec, e.generation, Arc::clone(&e.engine)))
                    .collect::<Vec<_>>(),
                reg.loading
                    .iter()
                    .map(|(name, spec)| (name.clone(), *spec))
                    .collect::<Vec<_>>(),
            )
        };
        let mut out: Vec<WorldInfo> = ready
            .into_iter()
            .map(|(name, spec, generation, engine)| {
                let mut planner_chosen = [0u64; 4];
                for strategy in Strategy::ALL {
                    planner_chosen[strategy.index()] = engine
                        .metrics()
                        .counter(&format!("planner.chosen.{}", strategy.wire_name()))
                        .get();
                }
                WorldInfo {
                    name,
                    spec,
                    generation,
                    state: WorldState::Ready,
                    planner_chosen,
                }
            })
            .chain(loading.into_iter().map(|(name, spec)| WorldInfo {
                name,
                spec,
                generation: 0,
                state: WorldState::Loading,
                planner_chosen: [0; 4],
            }))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The `stats` payload: per-world cache counters, sorted by name.
    pub fn stats(&self) -> ServiceStats {
        // Clone the engines out of the lock, then read their counters
        // unlocked — `QueryEngine::stats` itself takes cache-shard
        // locks and must not nest inside the registry lock.
        let engines: Vec<(String, u64, Arc<QueryEngine>)> = {
            let reg = self.registry.lock().expect("world registry");
            reg.worlds
                .iter()
                .map(|(name, e)| (name.clone(), e.generation, Arc::clone(&e.engine)))
                .collect()
        };
        let mut worlds: Vec<WorldStats> = engines
            .into_iter()
            .map(|(name, generation, engine)| WorldStats {
                name,
                generation,
                engine: engine.stats(),
            })
            .collect();
        worlds.sort_by(|a, b| a.name.cmp(&b.name));
        ServiceStats {
            budget: self.budget,
            resident: worlds.len(),
            durable: self.store.is_some(),
            worlds,
        }
    }

    /// Per-world metrics snapshots, sorted by name. Like
    /// [`stats`](WorldManager::stats), engines are cloned out of the
    /// registry lock and snapshotted unlocked. `reset` zeroes each
    /// world's registry *after* its snapshot is taken, so a
    /// `metrics {reset: true}` reads and clears atomically enough for
    /// interval scraping.
    pub fn world_metrics(&self, reset: bool) -> Vec<WorldMetrics> {
        let engines: Vec<(String, Arc<QueryEngine>)> = {
            let reg = self.registry.lock().expect("world registry");
            reg.worlds
                .iter()
                .map(|(name, e)| (name.clone(), Arc::clone(&e.engine)))
                .collect()
        };
        let mut worlds: Vec<WorldMetrics> = engines
            .into_iter()
            .map(|(name, engine)| {
                let metrics = engine.metrics_snapshot();
                if reset {
                    engine.metrics().reset();
                }
                WorldMetrics { name, metrics }
            })
            .collect();
        worlds.sort_by(|a, b| a.name.cmp(&b.name));
        worlds
    }

    /// Evicts the least-recently-resolved evictable world until there
    /// is room for one more entry. `incoming` is the name about to be
    /// inserted (never a candidate). The default world is pinned.
    /// Returns the evicted names so the caller can WAL-log them.
    fn make_room(
        reg: &mut Registry,
        budget: usize,
        incoming: &str,
    ) -> Result<Vec<String>, TenancyError> {
        let mut victims = Vec::new();
        while reg.worlds.len() >= budget {
            let victim = reg
                .worlds
                .iter()
                .filter(|(name, _)| name.as_str() != DEFAULT_WORLD && name.as_str() != incoming)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(name, _)| name.clone())
                .ok_or(TenancyError::BudgetExhausted(budget))?;
            reg.worlds.remove(&victim);
            victims.push(victim);
        }
        Ok(victims)
    }

    /// Cheap pre-flight for `load`/`swap`: would inserting `name`
    /// succeed right now? Checked before the expensive world build so
    /// an exhausted budget rejects in microseconds, not after
    /// generating (and discarding) a full world.
    fn check_room(&self, incoming: &str) -> Result<(), TenancyError> {
        let reg = self.registry.lock().expect("world registry");
        if reg.worlds.contains_key(incoming) || reg.worlds.len() < self.budget {
            return Ok(());
        }
        let evictable = reg
            .worlds
            .keys()
            .any(|name| name != DEFAULT_WORLD && name != incoming);
        if evictable {
            Ok(())
        } else {
            Err(TenancyError::BudgetExhausted(self.budget))
        }
    }

    /// Spec and generation of a resident world; errors when the name
    /// is mid-background-load (a sync load must not race the worker).
    fn lookup(&self, name: &str) -> Result<Option<(WorldSpec, u64)>, TenancyError> {
        let reg = self.registry.lock().expect("world registry");
        if let Some(e) = reg.worlds.get(name) {
            return Ok(Some((e.spec, e.generation)));
        }
        if reg.loading.contains_key(name) {
            return Err(TenancyError::WorldLoading(name.to_string()));
        }
        Ok(None)
    }
}

// Tenancy is the concurrency boundary of the service; prove at compile
// time it can cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WorldManager>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    fn tiny(seed: u64) -> WorldSpec {
        WorldSpec {
            seed,
            extended: false,
            cache_capacity: 8,
        }
    }

    #[test]
    fn resolve_unknown_world_errors() {
        let mgr = WorldManager::new(2);
        assert_eq!(
            mgr.resolve(None).err(),
            Some(TenancyError::WorldNotFound(DEFAULT_WORLD.to_string()))
        );
        assert_eq!(
            mgr.resolve(Some("nope")).err(),
            Some(TenancyError::WorldNotFound("nope".to_string()))
        );
    }

    #[test]
    fn load_is_idempotent_and_spec_guarded() {
        let mgr = WorldManager::new(2);
        let g1 = mgr.load("a", tiny(1)).expect("load");
        assert_eq!(mgr.load("a", tiny(1)).expect("reload"), g1);
        assert_eq!(
            mgr.load("a", tiny(2)),
            Err(TenancyError::SpecMismatch("a".to_string()))
        );
        assert!(mgr.resolve(Some("a")).is_ok());
    }

    #[test]
    fn swap_bumps_generation_and_replaces_engine() {
        let mgr = WorldManager::new(2);
        let g1 = mgr.load("a", tiny(1)).expect("load");
        let before = mgr.resolve(Some("a")).expect("resolve");
        let g2 = mgr.swap("a", tiny(2), 0).expect("swap");
        assert!(g2 > g1);
        let after = mgr.resolve(Some("a")).expect("resolve");
        assert!(
            !Arc::ptr_eq(&before, &after),
            "swap must install a fresh engine"
        );
    }

    #[test]
    fn generation_survives_eviction() {
        let mgr = WorldManager::new(3);
        let g1 = mgr.load("a", tiny(1)).expect("load");
        mgr.evict("a").expect("evict");
        let g2 = mgr.load("a", tiny(1)).expect("reload");
        assert!(g2 > g1, "re-load must be observably a new generation");
    }

    #[test]
    fn lru_eviction_respects_budget_and_pin() {
        let mgr = WorldManager::new(2);
        mgr.load(DEFAULT_WORLD, tiny(0)).expect("default");
        mgr.load("a", tiny(1)).expect("a");
        // Touch "a", then load "b": the budget is 2, "default" is
        // pinned, so "a" (the only evictable world) goes.
        mgr.resolve(Some("a")).expect("touch a");
        mgr.load("b", tiny(2)).expect("b");
        let names: Vec<String> = mgr.list().into_iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["b".to_string(), DEFAULT_WORLD.to_string()]);
        assert!(mgr.resolve(Some("a")).is_err());
    }

    #[test]
    fn default_world_cannot_be_evicted() {
        let mgr = WorldManager::new(1);
        mgr.load(DEFAULT_WORLD, tiny(0)).expect("default");
        assert_eq!(mgr.evict(DEFAULT_WORLD), Err(TenancyError::DefaultPinned));
        // Budget 1 fully pinned: nothing can make room.
        assert_eq!(
            mgr.load("a", tiny(1)),
            Err(TenancyError::BudgetExhausted(1))
        );
    }

    #[test]
    fn stats_report_per_world_counters() {
        let mgr = WorldManager::new(2);
        mgr.load("a", tiny(1)).expect("a");
        let engine = mgr.resolve(Some("a")).expect("resolve");
        let req = crate::engine::QueryRequest::protein_functions(
            "GALT",
            crate::engine::RankerSpec::new(crate::engine::Method::InEdge),
        );
        engine.execute(&req).expect("cold");
        engine.execute(&req).expect("warm");
        let stats = mgr.stats();
        assert_eq!(stats.resident, 1);
        assert_eq!(stats.budget, 2);
        let w = &stats.worlds[0];
        assert_eq!(w.name, "a");
        assert_eq!(w.engine.results.hits, 1);
        assert_eq!(w.engine.results.misses, 1);
        assert!((w.engine.results.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_zero_without_lookups() {
        // The zero-division guard `admin stats` rendering relies on.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    fn wait_ready(mgr: &Arc<WorldManager>, name: &str) {
        for _ in 0..600 {
            if mgr.resolve(Some(name)).is_ok() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("world {name:?} never became ready");
    }

    #[test]
    fn background_load_installs_from_a_worker_thread() {
        let mgr = Arc::new(WorldManager::new(3));
        assert_eq!(mgr.load_background("bg", tiny(5)).expect("start"), None);
        // Until the worker installs it, the world lists as loading and
        // queries naming it get the dedicated error.
        let listed = mgr.list();
        if let Some(info) = listed.iter().find(|w| w.name == "bg") {
            if info.state == WorldState::Loading {
                assert_eq!(info.generation, 0);
                assert_eq!(info.spec, tiny(5));
                assert!(matches!(
                    mgr.resolve(Some("bg")),
                    Err(TenancyError::WorldLoading(_))
                ));
                // A sync load of a loading name must not race the
                // worker; starting the same build again is a no-op.
                assert!(matches!(
                    mgr.load("bg", tiny(5)),
                    Err(TenancyError::WorldLoading(_))
                ));
                assert_eq!(
                    mgr.load_background("bg", tiny(5)).expect("idempotent"),
                    None
                );
                assert!(matches!(
                    mgr.load_background("bg", tiny(6)),
                    Err(TenancyError::WorldLoading(_))
                ));
            }
        }
        wait_ready(&mgr, "bg");
        let info = mgr
            .list()
            .into_iter()
            .find(|w| w.name == "bg")
            .expect("installed");
        assert_eq!(info.state, WorldState::Ready);
        assert!(info.generation > 0);
        // Re-loading in the background when already resident reports
        // the generation instead of rebuilding.
        assert_eq!(
            mgr.load_background("bg", tiny(5)).expect("resident"),
            Some(info.generation)
        );
        assert!(matches!(
            mgr.load_background("bg", tiny(7)),
            Err(TenancyError::SpecMismatch(_))
        ));
    }

    #[test]
    fn evicting_a_loading_world_cancels_the_load() {
        let mgr = Arc::new(WorldManager::new(3));
        mgr.load_background("c", tiny(9)).expect("start");
        // Whether we catch the build in flight (clears the marker, the
        // worker discards its engine) or after install (removes the
        // resident world), eviction must leave the name gone for good.
        mgr.evict("c").expect("evict cancels or removes");
        assert!(matches!(
            mgr.resolve(Some("c")),
            Err(TenancyError::WorldNotFound(_))
        ));
        // Give the worker ample time to finish building; it must not
        // resurrect the evicted name.
        for _ in 0..20 {
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert!(
                mgr.list().into_iter().all(|w| w.name != "c"),
                "cancelled load must not install"
            );
        }
    }

    #[test]
    fn swap_warm_replays_hot_keys_into_the_fresh_engine() {
        let mgr = WorldManager::new(2);
        mgr.load("a", tiny(1)).expect("load");
        let req = crate::engine::QueryRequest::protein_functions(
            "GALT",
            crate::engine::RankerSpec::new(crate::engine::Method::InEdge),
        );
        // Make GALT/InEdge the hot key of the outgoing engine.
        let old = mgr.resolve(Some("a")).expect("resolve");
        old.execute(&req).expect("warm the old engine");
        drop(old);

        mgr.swap("a", tiny(1), 4).expect("swap with warm-up");
        let fresh = mgr.resolve(Some("a")).expect("resolve new");
        let replayed = fresh.execute(&req).expect("hot query");
        assert!(
            replayed.cached_scores,
            "the hot key must be resident in the replacement engine"
        );

        // warm: 0 installs cold — the control for the test above.
        mgr.swap("a", tiny(1), 0).expect("cold swap");
        let cold = mgr.resolve(Some("a")).expect("resolve cold");
        assert!(!cold.execute(&req).expect("cold query").cached_scores);
    }

    #[test]
    fn swap_warm_replays_top_k_keys_at_their_certified_k() {
        use crate::engine::{AdaptiveConfig, Method, RankerSpec, Trials};

        let mgr = WorldManager::new(2);
        mgr.load("a", tiny(1)).expect("load");
        let spec = RankerSpec {
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            ..RankerSpec::new(Method::TraversalMc)
        };
        let topk = crate::engine::QueryRequest::protein_functions("GALT", spec).certified_top(3);
        let old = mgr.resolve(Some("a")).expect("resolve");
        let cold = old.execute(&topk).expect("top-k query");
        assert_eq!(cold.certificate.and_then(|c| c.mode.certified_k()), Some(3));
        // The hot key carries its certified-k tag out of the cache.
        assert_eq!(old.hot_result_keys(4)[0].2, Some(3));
        drop(old);

        mgr.swap("a", tiny(1), 4).expect("swap with warm-up");
        let fresh = mgr.resolve(Some("a")).expect("resolve new");
        let replayed = fresh.execute(&topk).expect("hot top-k query");
        assert!(
            replayed.cached_scores,
            "the top-k entry must be warm in the replacement engine"
        );
        assert_eq!(
            replayed.certificate.and_then(|c| c.mode.certified_k()),
            Some(3),
            "warm-up must have replayed the key as a top-3-certified run"
        );
    }
}
