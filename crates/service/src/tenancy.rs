//! Multi-world tenancy: a registry of named resident worlds.
//!
//! A production deployment serves many worlds at once — per-seed
//! snapshots, the compact vs extended federation, staging data warmed
//! up next to live data — and must swap one out without ever serving a
//! stale ranked answer. [`WorldManager`] owns that registry:
//!
//! * **Concurrent read, exclusive swap.** Resolving a world clones an
//!   `Arc<QueryEngine>` under a briefly-held registry lock; query
//!   execution itself never holds any tenancy lock, so a swap on one
//!   world cannot stall queries on another (or even in-flight queries
//!   on the same world — they complete against the engine they
//!   resolved).
//! * **Swap = fresh engine = cold caches.** [`WorldManager::swap`]
//!   builds the replacement engine *outside* the lock, then replaces
//!   the registry entry in one critical section and bumps the world's
//!   generation counter. Both cache layers of the replaced engine die
//!   with its last `Arc` — there is no window in which a post-swap
//!   request can observe a pre-swap cache entry, which is exactly what
//!   `tests/service_tenancy.rs` asserts.
//! * **LRU eviction under a resident budget.** Worlds are heavy (a
//!   generated world plus two cache layers), so at most
//!   [`WorldManager::budget`] stay resident; loading past the budget
//!   evicts the least-recently-resolved world. The default world is
//!   pinned and never evicted.
//!
//! Generations are drawn from one registry-wide monotonic counter
//! (assigned under the registry lock), so they survive eviction with
//! no per-name bookkeeping: `world.load` → `world.evict` →
//! `world.load` is observably a different generation, and a client
//! can always tell whether two responses could have come from the
//! same engine.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use biorank_mediator::Mediator;
use biorank_schema::{biorank_schema_full, biorank_schema_with_ontology};
use biorank_sources::{World, WorldParams};

use crate::engine::{EngineStats, QueryEngine, DEFAULT_CACHE_CAPACITY};

/// The name of the world queries route to when they name none.
pub const DEFAULT_WORLD: &str = "default";

/// Default resident-world budget.
pub const DEFAULT_WORLD_BUDGET: usize = 4;

/// Everything needed to (re)build one world's engine: the generation
/// seed plus the federation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorldSpec {
    /// Master world seed; equal seeds generate equal worlds.
    pub seed: u64,
    /// Integrate over the full 11-source federation instead of the
    /// paper's Fig. 1 subset.
    pub extended: bool,
    /// Per-layer LRU capacity of the world's engine caches.
    pub cache_capacity: usize,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            seed: WorldParams::default().seed,
            extended: false,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl WorldSpec {
    /// Generates the world and wraps it in a fresh engine (fresh, cold
    /// caches). This is the expensive step; callers run it outside any
    /// registry lock.
    pub fn build(&self) -> QueryEngine {
        let world = World::generate(WorldParams {
            seed: self.seed,
            extended: self.extended,
            ..WorldParams::default()
        });
        let schema = if self.extended {
            biorank_schema_full().schema
        } else {
            biorank_schema_with_ontology().schema
        };
        QueryEngine::with_cache_capacity(
            Mediator::new(schema, world.registry()),
            self.cache_capacity,
        )
    }
}

/// Tenancy-level failures, rendered over the wire as error strings.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenancyError {
    /// A query or admin command named a world that is not resident.
    WorldNotFound(String),
    /// `world.load` of an existing name with a different spec (use
    /// `world.swap` to replace a resident world).
    SpecMismatch(String),
    /// The resident budget is exhausted and no world is evictable.
    BudgetExhausted(usize),
    /// The default world cannot be evicted.
    DefaultPinned,
}

impl fmt::Display for TenancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenancyError::WorldNotFound(name) => write!(f, "world {name:?} is not resident"),
            TenancyError::SpecMismatch(name) => write!(
                f,
                "world {name:?} is already resident with a different spec; use world.swap"
            ),
            TenancyError::BudgetExhausted(budget) => write!(
                f,
                "resident-world budget ({budget}) exhausted and nothing is evictable"
            ),
            TenancyError::DefaultPinned => {
                write!(
                    f,
                    "the {DEFAULT_WORLD:?} world is pinned and cannot be evicted"
                )
            }
        }
    }
}

impl std::error::Error for TenancyError {}

/// A snapshot of one resident world, as reported by `world.list`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldInfo {
    /// Registry name.
    pub name: String,
    /// The spec the resident engine was built from.
    pub spec: WorldSpec,
    /// Generation of the resident engine, from the registry-wide
    /// monotonic counter (every load and swap draws a fresh one).
    pub generation: u64,
}

/// Per-world counters inside a [`ServiceStats`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldStats {
    /// Registry name.
    pub name: String,
    /// Current generation.
    pub generation: u64,
    /// Cache counters of the world's engine.
    pub engine: EngineStats,
}

/// The `stats` wire command's payload: every resident world's cache
/// counters plus the tenancy configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceStats {
    /// Resident-world budget.
    pub budget: usize,
    /// Number of resident worlds.
    pub resident: usize,
    /// Per-world counters, sorted by name.
    pub worlds: Vec<WorldStats>,
}

struct WorldEntry {
    engine: Arc<QueryEngine>,
    spec: WorldSpec,
    generation: u64,
    last_used: u64,
}

struct Registry {
    worlds: HashMap<String, WorldEntry>,
    /// Registry-wide monotonic generation counter. Assigned under the
    /// lock, so later inserts always carry greater generations; being
    /// global (not per-name) it survives eviction with no per-name
    /// state to leak, and any re-load or swap of a name is observably
    /// newer than every earlier engine of that name.
    next_generation: u64,
}

impl Registry {
    fn bump(&mut self) -> u64 {
        self.next_generation += 1;
        self.next_generation
    }
}

/// A thread-safe registry of named resident worlds.
///
/// Share it with an `Arc`; every operation takes `&self`. The registry
/// lock is held only for map bookkeeping — world generation and query
/// execution always happen outside it.
pub struct WorldManager {
    registry: Mutex<Registry>,
    budget: usize,
    clock: AtomicU64,
}

impl WorldManager {
    /// An empty manager with the given resident budget (clamped to at
    /// least 1).
    pub fn new(budget: usize) -> Self {
        WorldManager {
            registry: Mutex::new(Registry {
                worlds: HashMap::new(),
                next_generation: 0,
            }),
            budget: budget.max(1),
            clock: AtomicU64::new(0),
        }
    }

    /// A manager whose [`DEFAULT_WORLD`] is an already-built engine —
    /// how a single-world `Server::bind` wraps its engine.
    pub fn with_default(engine: Arc<QueryEngine>, spec: WorldSpec, budget: usize) -> Self {
        let mgr = WorldManager::new(budget);
        {
            let mut reg = mgr.registry.lock().expect("world registry");
            let generation = reg.bump();
            reg.worlds.insert(
                DEFAULT_WORLD.to_string(),
                WorldEntry {
                    engine,
                    spec,
                    generation,
                    last_used: 0,
                },
            );
        }
        mgr
    }

    /// The resident-world budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Resolves a world name (`None` = [`DEFAULT_WORLD`]) to its
    /// engine, marking it most-recently-used. The returned `Arc` stays
    /// valid across concurrent swaps and evictions — callers execute
    /// against it without holding any lock.
    pub fn resolve(&self, world: Option<&str>) -> Result<Arc<QueryEngine>, TenancyError> {
        let name = world.unwrap_or(DEFAULT_WORLD);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut reg = self.registry.lock().expect("world registry");
        let entry = reg
            .worlds
            .get_mut(name)
            .ok_or_else(|| TenancyError::WorldNotFound(name.to_string()))?;
        entry.last_used = stamp;
        Ok(Arc::clone(&entry.engine))
    }

    /// Ensures `name` is resident with `spec`, building it if absent.
    /// Returns the world's generation. Loading an already-resident
    /// world with the identical spec is a cheap no-op; with a
    /// different spec it is an error ([`TenancyError::SpecMismatch`])
    /// — replacement is `swap`'s job, never an accident of `load`.
    pub fn load(&self, name: &str, spec: WorldSpec) -> Result<u64, TenancyError> {
        if let Some(entry) = self.lookup(name) {
            let (existing, generation) = entry;
            if existing == spec {
                return Ok(generation);
            }
            return Err(TenancyError::SpecMismatch(name.to_string()));
        }
        // An exhausted budget is knowable before paying for a world
        // build; re-checked under the insert lock below (the cheap
        // check can race evictions, never the other way).
        self.check_room(name)?;
        // Build outside the lock: generation takes milliseconds and
        // must not block queries on resident worlds.
        let engine = Arc::new(spec.build());
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut reg = self.registry.lock().expect("world registry");
        // Lost a build race? Keep the winner.
        if let Some(entry) = reg.worlds.get(name) {
            if entry.spec == spec {
                return Ok(entry.generation);
            }
            return Err(TenancyError::SpecMismatch(name.to_string()));
        }
        Self::make_room(&mut reg, self.budget, name)?;
        let generation = reg.bump();
        reg.worlds.insert(
            name.to_string(),
            WorldEntry {
                engine,
                spec,
                generation,
                last_used: stamp,
            },
        );
        Ok(generation)
    }

    /// Replaces (or creates) `name` with a freshly built engine and
    /// bumps its generation. The replaced engine's two cache layers
    /// are dropped with its last `Arc`, so every post-swap request
    /// recomputes — in-flight requests that already resolved the old
    /// engine finish against it, but can never repopulate the new one.
    pub fn swap(&self, name: &str, spec: WorldSpec) -> Result<u64, TenancyError> {
        self.check_room(name)?;
        let engine = Arc::new(spec.build());
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut reg = self.registry.lock().expect("world registry");
        if !reg.worlds.contains_key(name) {
            Self::make_room(&mut reg, self.budget, name)?;
        }
        let generation = reg.bump();
        reg.worlds.insert(
            name.to_string(),
            WorldEntry {
                engine,
                spec,
                generation,
                last_used: stamp,
            },
        );
        Ok(generation)
    }

    /// Evicts a resident world. The default world is pinned.
    pub fn evict(&self, name: &str) -> Result<(), TenancyError> {
        if name == DEFAULT_WORLD {
            return Err(TenancyError::DefaultPinned);
        }
        let mut reg = self.registry.lock().expect("world registry");
        reg.worlds
            .remove(name)
            .map(drop)
            .ok_or_else(|| TenancyError::WorldNotFound(name.to_string()))
    }

    /// Snapshot of every resident world, sorted by name.
    pub fn list(&self) -> Vec<WorldInfo> {
        let reg = self.registry.lock().expect("world registry");
        let mut out: Vec<WorldInfo> = reg
            .worlds
            .iter()
            .map(|(name, e)| WorldInfo {
                name: name.clone(),
                spec: e.spec,
                generation: e.generation,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The `stats` payload: per-world cache counters, sorted by name.
    pub fn stats(&self) -> ServiceStats {
        // Clone the engines out of the lock, then read their counters
        // unlocked — `QueryEngine::stats` itself takes cache-shard
        // locks and must not nest inside the registry lock.
        let engines: Vec<(String, u64, Arc<QueryEngine>)> = {
            let reg = self.registry.lock().expect("world registry");
            reg.worlds
                .iter()
                .map(|(name, e)| (name.clone(), e.generation, Arc::clone(&e.engine)))
                .collect()
        };
        let mut worlds: Vec<WorldStats> = engines
            .into_iter()
            .map(|(name, generation, engine)| WorldStats {
                name,
                generation,
                engine: engine.stats(),
            })
            .collect();
        worlds.sort_by(|a, b| a.name.cmp(&b.name));
        ServiceStats {
            budget: self.budget,
            resident: worlds.len(),
            worlds,
        }
    }

    /// Evicts the least-recently-resolved evictable world until there
    /// is room for one more entry. `incoming` is the name about to be
    /// inserted (never a candidate). The default world is pinned.
    fn make_room(reg: &mut Registry, budget: usize, incoming: &str) -> Result<(), TenancyError> {
        while reg.worlds.len() >= budget {
            let victim = reg
                .worlds
                .iter()
                .filter(|(name, _)| name.as_str() != DEFAULT_WORLD && name.as_str() != incoming)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(name, _)| name.clone())
                .ok_or(TenancyError::BudgetExhausted(budget))?;
            reg.worlds.remove(&victim);
        }
        Ok(())
    }

    /// Cheap pre-flight for `load`/`swap`: would inserting `name`
    /// succeed right now? Checked before the expensive world build so
    /// an exhausted budget rejects in microseconds, not after
    /// generating (and discarding) a full world.
    fn check_room(&self, incoming: &str) -> Result<(), TenancyError> {
        let reg = self.registry.lock().expect("world registry");
        if reg.worlds.contains_key(incoming) || reg.worlds.len() < self.budget {
            return Ok(());
        }
        let evictable = reg
            .worlds
            .keys()
            .any(|name| name != DEFAULT_WORLD && name != incoming);
        if evictable {
            Ok(())
        } else {
            Err(TenancyError::BudgetExhausted(self.budget))
        }
    }

    fn lookup(&self, name: &str) -> Option<(WorldSpec, u64)> {
        let reg = self.registry.lock().expect("world registry");
        reg.worlds.get(name).map(|e| (e.spec, e.generation))
    }
}

// Tenancy is the concurrency boundary of the service; prove at compile
// time it can cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WorldManager>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    fn tiny(seed: u64) -> WorldSpec {
        WorldSpec {
            seed,
            extended: false,
            cache_capacity: 8,
        }
    }

    #[test]
    fn resolve_unknown_world_errors() {
        let mgr = WorldManager::new(2);
        assert_eq!(
            mgr.resolve(None).err(),
            Some(TenancyError::WorldNotFound(DEFAULT_WORLD.to_string()))
        );
        assert_eq!(
            mgr.resolve(Some("nope")).err(),
            Some(TenancyError::WorldNotFound("nope".to_string()))
        );
    }

    #[test]
    fn load_is_idempotent_and_spec_guarded() {
        let mgr = WorldManager::new(2);
        let g1 = mgr.load("a", tiny(1)).expect("load");
        assert_eq!(mgr.load("a", tiny(1)).expect("reload"), g1);
        assert_eq!(
            mgr.load("a", tiny(2)),
            Err(TenancyError::SpecMismatch("a".to_string()))
        );
        assert!(mgr.resolve(Some("a")).is_ok());
    }

    #[test]
    fn swap_bumps_generation_and_replaces_engine() {
        let mgr = WorldManager::new(2);
        let g1 = mgr.load("a", tiny(1)).expect("load");
        let before = mgr.resolve(Some("a")).expect("resolve");
        let g2 = mgr.swap("a", tiny(2)).expect("swap");
        assert!(g2 > g1);
        let after = mgr.resolve(Some("a")).expect("resolve");
        assert!(
            !Arc::ptr_eq(&before, &after),
            "swap must install a fresh engine"
        );
    }

    #[test]
    fn generation_survives_eviction() {
        let mgr = WorldManager::new(3);
        let g1 = mgr.load("a", tiny(1)).expect("load");
        mgr.evict("a").expect("evict");
        let g2 = mgr.load("a", tiny(1)).expect("reload");
        assert!(g2 > g1, "re-load must be observably a new generation");
    }

    #[test]
    fn lru_eviction_respects_budget_and_pin() {
        let mgr = WorldManager::new(2);
        mgr.load(DEFAULT_WORLD, tiny(0)).expect("default");
        mgr.load("a", tiny(1)).expect("a");
        // Touch "a", then load "b": the budget is 2, "default" is
        // pinned, so "a" (the only evictable world) goes.
        mgr.resolve(Some("a")).expect("touch a");
        mgr.load("b", tiny(2)).expect("b");
        let names: Vec<String> = mgr.list().into_iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["b".to_string(), DEFAULT_WORLD.to_string()]);
        assert!(mgr.resolve(Some("a")).is_err());
    }

    #[test]
    fn default_world_cannot_be_evicted() {
        let mgr = WorldManager::new(1);
        mgr.load(DEFAULT_WORLD, tiny(0)).expect("default");
        assert_eq!(mgr.evict(DEFAULT_WORLD), Err(TenancyError::DefaultPinned));
        // Budget 1 fully pinned: nothing can make room.
        assert_eq!(
            mgr.load("a", tiny(1)),
            Err(TenancyError::BudgetExhausted(1))
        );
    }

    #[test]
    fn stats_report_per_world_counters() {
        let mgr = WorldManager::new(2);
        mgr.load("a", tiny(1)).expect("a");
        let engine = mgr.resolve(Some("a")).expect("resolve");
        let req = crate::engine::QueryRequest::protein_functions(
            "GALT",
            crate::engine::RankerSpec::new(crate::engine::Method::InEdge),
        );
        engine.execute(&req).expect("cold");
        engine.execute(&req).expect("warm");
        let stats = mgr.stats();
        assert_eq!(stats.resident, 1);
        assert_eq!(stats.budget, 2);
        let w = &stats.worlds[0];
        assert_eq!(w.name, "a");
        assert_eq!(w.engine.results.hits, 1);
        assert_eq!(w.engine.results.misses, 1);
        assert!((w.engine.results.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_zero_without_lookups() {
        // The zero-division guard the shutdown log relies on.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
