//! Service-side snapshot payload codec: the bridge between a live
//! [`QueryEngine`] and the [`biorank_store`] container files.
//!
//! A snapshot freezes a resident world's *cached state* — its spec
//! plus both engine cache layers — so a `--data-dir` restart answers
//! the same queries bit-identically from the reloaded entries instead
//! of rebuilding and recomputing. The payload layout (inside a
//! [`FileKind::Snapshot`](biorank_store::FileKind::Snapshot)
//! container, which supplies magic, version, and checksum):
//!
//! ```text
//! [seed: u64][extended: bool][cache_capacity: u64]      world spec
//! [spec_hash: u64]                                      fingerprint of the spec above
//! [graph entries: u64 count]
//!   count × [query][integration result]                 MRU first
//! [result entries: u64 count]
//!   count × [query][ranker spec][ranked result]         MRU first
//! ```
//!
//! Every float is encoded as its IEEE-754 bit pattern, every graph via
//! the slot-preserving codec in [`biorank_store::codec`], so a decoded
//! entry is **bit-identical** to the one exported — the round-trip
//! guarantee the restart test asserts under every estimator.
//!
//! [`import_snapshot`] refuses a payload whose embedded spec does not
//! match the world the caller is restoring (a snapshot left on disk
//! after the world was re-loaded with a different seed must never leak
//! stale answers); the caller falls back to a cold rebuild.

use std::collections::BTreeMap;
use std::sync::Arc;

use biorank_graph::{NodeId, Prob};
use biorank_mediator::{ExploratoryQuery, IntegrationResult, IntegrationStats};
use biorank_rank::{Certificate, CertificateMode};
use biorank_sources::Record;
use biorank_store::{
    decode_query_graph, encode_query_graph, Reader, StoreError, StoredSpec, Writer,
};

use crate::engine::{
    AdaptiveConfig, Estimator, Method, QueryEngine, RankedAnswer, RankedResult, RankerSpec, Trials,
};
use crate::tenancy::WorldSpec;

type Result<T> = std::result::Result<T, StoreError>;

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Converts a live spec to its on-disk form.
pub fn stored_spec(spec: WorldSpec) -> StoredSpec {
    StoredSpec {
        seed: spec.seed,
        extended: spec.extended,
        cache_capacity: spec.cache_capacity as u64,
    }
}

/// Converts an on-disk spec back to the live form.
pub fn world_spec(stored: StoredSpec) -> Result<WorldSpec> {
    Ok(WorldSpec {
        seed: stored.seed,
        extended: stored.extended,
        cache_capacity: usize::try_from(stored.cache_capacity).map_err(|_| {
            corrupt(format!(
                "implausible cache capacity {}",
                stored.cache_capacity
            ))
        })?,
    })
}

fn encode_spec(spec: WorldSpec, w: &mut Writer) {
    w.u64(spec.seed);
    w.bool(spec.extended);
    w.u64(spec.cache_capacity as u64);
}

fn decode_spec(r: &mut Reader<'_>) -> Result<WorldSpec> {
    world_spec(StoredSpec {
        seed: r.u64()?,
        extended: r.bool()?,
        cache_capacity: r.u64()?,
    })
}

fn encode_query(q: &ExploratoryQuery, w: &mut Writer) {
    w.str(&q.input);
    w.str(&q.attribute);
    w.str(&q.value);
    w.u64(q.outputs.len() as u64);
    for o in &q.outputs {
        w.str(o);
    }
}

fn decode_query(r: &mut Reader<'_>) -> Result<ExploratoryQuery> {
    let input = r.str()?;
    let attribute = r.str()?;
    let value = r.str()?;
    let n = r.u64()?;
    let n = usize::try_from(n)
        .ok()
        .filter(|&n| n <= 1 << 20)
        .ok_or_else(|| corrupt(format!("implausible output count {n}")))?;
    let mut outputs = Vec::with_capacity(n);
    for _ in 0..n {
        outputs.push(r.str()?);
    }
    Ok(ExploratoryQuery::new(input, attribute, value, outputs))
}

fn method_tag(m: Method) -> u8 {
    match m {
        Method::Reliability => 0,
        Method::TraversalMc => 1,
        Method::Propagation => 2,
        Method::Diffusion => 3,
        Method::InEdge => 4,
        Method::PathCount => 5,
        Method::Exact => 6,
    }
}

fn method_from(tag: u8) -> Result<Method> {
    Ok(match tag {
        0 => Method::Reliability,
        1 => Method::TraversalMc,
        2 => Method::Propagation,
        3 => Method::Diffusion,
        4 => Method::InEdge,
        5 => Method::PathCount,
        6 => Method::Exact,
        t => return Err(corrupt(format!("unknown method tag {t}"))),
    })
}

fn encode_ranker(spec: &RankerSpec, w: &mut Writer) {
    w.u8(method_tag(spec.method));
    match spec.trials {
        Trials::Fixed(n) => {
            w.u8(0);
            w.u32(n);
        }
        Trials::Adaptive(cfg) => {
            w.u8(1);
            w.f64(cfg.epsilon);
            w.f64(cfg.delta);
            w.u32(cfg.max_trials);
        }
    }
    w.u64(spec.seed);
    w.bool(spec.parallel);
    // Cached specs are always post-resolution (`cache_key` output),
    // so `auto` never reaches a snapshot in practice — but the codec
    // round-trips it anyway rather than panic on a hand-built spec.
    w.u8(match spec.estimator {
        None => 0,
        Some(Estimator::Traversal) => 1,
        Some(Estimator::Word) => 2,
        Some(Estimator::Auto) => 3,
    });
}

fn decode_ranker(r: &mut Reader<'_>) -> Result<RankerSpec> {
    let method = method_from(r.u8()?)?;
    let trials = match r.u8()? {
        0 => Trials::Fixed(r.u32()?),
        1 => Trials::Adaptive(AdaptiveConfig {
            epsilon: r.f64()?,
            delta: r.f64()?,
            max_trials: r.u32()?,
        }),
        t => return Err(corrupt(format!("unknown trials tag {t}"))),
    };
    let seed = r.u64()?;
    let parallel = r.bool()?;
    let estimator = match r.u8()? {
        0 => None,
        1 => Some(Estimator::Traversal),
        2 => Some(Estimator::Word),
        3 => Some(Estimator::Auto),
        t => return Err(corrupt(format!("unknown estimator tag {t}"))),
    };
    Ok(RankerSpec {
        method,
        trials,
        seed,
        parallel,
        estimator,
    })
}

fn encode_record(rec: &Record, w: &mut Writer) {
    w.str(&rec.entity_set);
    w.str(&rec.key);
    w.str(&rec.label);
    w.f64(rec.pr.get());
    w.u64(rec.attrs.len() as u64);
    for (k, v) in &rec.attrs {
        w.str(k);
        w.str(v);
    }
}

fn decode_record(r: &mut Reader<'_>) -> Result<Record> {
    let entity_set = r.str()?;
    let key = r.str()?;
    let label = r.str()?;
    let pr =
        Prob::new(r.f64()?).map_err(|e| corrupt(format!("invalid record probability: {e}")))?;
    let n = r.u64()?;
    let n = usize::try_from(n)
        .ok()
        .filter(|&n| n <= 1 << 20)
        .ok_or_else(|| corrupt(format!("implausible attr count {n}")))?;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        attrs.push((r.str()?, r.str()?));
    }
    Ok(Record {
        entity_set,
        key,
        label,
        pr,
        attrs,
    })
}

fn encode_integration(res: &IntegrationResult, w: &mut Writer) {
    encode_query_graph(&res.query, w);
    w.u64(res.records.len() as u64);
    for (node, rec) in &res.records {
        w.u64(node.index() as u64);
        encode_record(rec, w);
    }
    let s = res.stats;
    for v in [
        s.records_fetched,
        s.links_followed,
        s.dangling_links,
        s.unmapped_links,
        s.nodes_raw,
        s.edges_raw,
        s.nodes,
        s.edges,
    ] {
        w.u64(v as u64);
    }
}

fn decode_integration(r: &mut Reader<'_>) -> Result<IntegrationResult> {
    let query = decode_query_graph(r)?;
    let bound = query.graph().node_bound();
    let n = r.u64()?;
    let n = usize::try_from(n)
        .ok()
        .filter(|&n| n <= bound)
        .ok_or_else(|| corrupt(format!("implausible record count {n}")))?;
    let mut records = BTreeMap::new();
    for _ in 0..n {
        let i = r.u64()?;
        let i = usize::try_from(i)
            .ok()
            .filter(|&i| i < bound)
            .ok_or_else(|| corrupt(format!("record node {i} out of bound {bound}")))?;
        records.insert(NodeId::from_index(i), decode_record(r)?);
    }
    let mut f = || -> Result<usize> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| corrupt(format!("implausible stat {v}")))
    };
    let stats = IntegrationStats {
        records_fetched: f()?,
        links_followed: f()?,
        dangling_links: f()?,
        unmapped_links: f()?,
        nodes_raw: f()?,
        edges_raw: f()?,
        nodes: f()?,
        edges: f()?,
    };
    Ok(IntegrationResult {
        query,
        records,
        stats,
    })
}

fn encode_ranked(res: &RankedResult, w: &mut Writer) {
    w.u64(res.answers.len() as u64);
    for a in &res.answers {
        w.str(&a.key);
        w.str(&a.label);
        w.f64(a.score);
        w.u64(a.rank_lo as u64);
        w.u64(a.rank_hi as u64);
    }
    match &res.certificate {
        None => w.bool(false),
        Some(c) => {
            w.bool(true);
            w.u32(c.trials_used);
            w.f64(c.epsilon);
            w.bool(c.certified);
            match c.mode {
                CertificateMode::Full => w.u8(0),
                CertificateMode::TopK(k) => {
                    w.u8(1);
                    w.u32(k);
                }
            }
        }
    }
}

fn decode_ranked(r: &mut Reader<'_>) -> Result<RankedResult> {
    let n = r.u64()?;
    let n = usize::try_from(n)
        .ok()
        .filter(|&n| n <= 1 << 24)
        .ok_or_else(|| corrupt(format!("implausible answer count {n}")))?;
    let mut answers = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.str()?;
        let label = r.str()?;
        let score = r.f64()?;
        let lo = r.u64()?;
        let hi = r.u64()?;
        answers.push(RankedAnswer {
            key,
            label,
            score,
            rank_lo: usize::try_from(lo).map_err(|_| corrupt("implausible rank"))?,
            rank_hi: usize::try_from(hi).map_err(|_| corrupt("implausible rank"))?,
        });
    }
    let certificate = if r.bool()? {
        let trials_used = r.u32()?;
        let epsilon = r.f64()?;
        let certified = r.bool()?;
        let mode = match r.u8()? {
            0 => CertificateMode::Full,
            1 => CertificateMode::TopK(r.u32()?),
            t => return Err(corrupt(format!("unknown certificate mode tag {t}"))),
        };
        Some(Certificate {
            trials_used,
            epsilon,
            certified,
            mode,
        })
    } else {
        None
    };
    Ok(RankedResult {
        answers,
        certificate,
    })
}

/// Serializes a world's spec plus both engine cache layers into a
/// snapshot payload ([`import_snapshot`] is the inverse). Entries are
/// exported most-recently-used first, so the importer can rebuild the
/// same recency order.
pub fn export_snapshot(engine: &QueryEngine, spec: WorldSpec) -> Vec<u8> {
    let (graphs, results) = engine.export_cache();
    let mut w = Writer::new();
    encode_spec(spec, &mut w);
    w.u64(spec.spec_hash());
    w.u64(graphs.len() as u64);
    for (query, res) in &graphs {
        encode_query(query, &mut w);
        encode_integration(res, &mut w);
    }
    w.u64(results.len() as u64);
    for ((query, rspec), ranked) in &results {
        encode_query(query, &mut w);
        encode_ranker(rspec, &mut w);
        encode_ranked(ranked, &mut w);
    }
    w.into_inner()
}

/// The spec a snapshot payload was exported from, without decoding
/// the cache entries (cheap pre-flight check for restore paths).
pub fn snapshot_spec(payload: &[u8]) -> Result<WorldSpec> {
    let mut r = Reader::new(payload);
    let spec = decode_spec(&mut r)?;
    let hash = r.u64()?;
    if hash != spec.spec_hash() {
        return Err(corrupt(format!(
            "snapshot spec hash {hash:#x} does not match spec (want {:#x})",
            spec.spec_hash()
        )));
    }
    Ok(spec)
}

/// Decodes a snapshot payload and replays its cache entries into
/// `engine`, which must have been built from `expected` — a payload
/// whose embedded spec differs is rejected without touching the
/// engine (the stale-snapshot guard). Returns the number of result
/// entries imported (each also counts on the engine's
/// `warm.replayed`).
pub fn import_snapshot(engine: &QueryEngine, payload: &[u8], expected: WorldSpec) -> Result<usize> {
    let mut r = Reader::new(payload);
    let spec = decode_spec(&mut r)?;
    let hash = r.u64()?;
    if hash != spec.spec_hash() {
        return Err(corrupt(format!(
            "snapshot spec hash {hash:#x} does not match spec (want {:#x})",
            spec.spec_hash()
        )));
    }
    if spec != expected {
        return Err(corrupt(format!(
            "snapshot spec {spec:?} does not match expected {expected:?}"
        )));
    }
    let n = r.u64()?;
    let n = usize::try_from(n)
        .ok()
        .filter(|&n| n <= 1 << 24)
        .ok_or_else(|| corrupt(format!("implausible graph entry count {n}")))?;
    let mut graphs = Vec::with_capacity(n);
    for _ in 0..n {
        let query = decode_query(&mut r)?;
        let res = decode_integration(&mut r)?;
        graphs.push((query, Arc::new(res)));
    }
    let n = r.u64()?;
    let n = usize::try_from(n)
        .ok()
        .filter(|&n| n <= 1 << 24)
        .ok_or_else(|| corrupt(format!("implausible result entry count {n}")))?;
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        let query = decode_query(&mut r)?;
        let rspec = decode_ranker(&mut r)?;
        let ranked = decode_ranked(&mut r)?;
        results.push(((query, rspec), Arc::new(ranked)));
    }
    r.finish()?;
    Ok(engine.import_cache(graphs, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryRequest;

    fn tiny_spec() -> WorldSpec {
        WorldSpec {
            seed: 11,
            extended: false,
            // Shard placement is randomized per process; a capacity this
            // small would mean one slot per shard, where two of our five
            // keys colliding in a shard silently evicts one. Keep every
            // shard deep enough that the round-trip is exact.
            cache_capacity: 256,
        }
    }

    fn specs() -> Vec<RankerSpec> {
        vec![
            RankerSpec::new(Method::InEdge),
            RankerSpec::new(Method::Propagation),
            RankerSpec {
                estimator: Some(Estimator::Traversal),
                ..RankerSpec::new(Method::TraversalMc)
            },
            RankerSpec {
                estimator: Some(Estimator::Word),
                trials: Trials::Adaptive(AdaptiveConfig::default()),
                ..RankerSpec::new(Method::TraversalMc)
            },
            RankerSpec {
                trials: Trials::Fixed(500),
                ..RankerSpec::new(Method::Reliability)
            },
        ]
    }

    /// The tentpole round-trip guarantee: export a warmed engine,
    /// import into a fresh engine built from the same spec, and every
    /// estimator answers bit-identically from cache.
    #[test]
    fn snapshot_round_trips_bit_identically() {
        let spec = tiny_spec();
        let source = spec.build();
        let mut baseline = Vec::new();
        for rspec in specs() {
            let req = QueryRequest::protein_functions("GALT", rspec);
            baseline.push((req.clone(), source.execute(&req).expect("source query")));
        }

        let payload = export_snapshot(&source, spec);
        let restored = spec.build();
        let imported = import_snapshot(&restored, &payload, spec).expect("import");
        assert_eq!(imported, specs().len());

        for (req, want) in &baseline {
            let got = restored.execute(req).expect("restored query");
            assert!(got.cached_scores, "restored answer must come from cache");
            assert_eq!(got.answers.len(), want.answers.len());
            for (g, w) in got.answers.iter().zip(&want.answers) {
                assert_eq!(g.key, w.key);
                assert_eq!(g.label, w.label);
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "score drift");
                assert_eq!((g.rank_lo, g.rank_hi), (w.rank_lo, w.rank_hi));
            }
            assert_eq!(got.certificate, want.certificate);
        }
        assert!(
            restored
                .metrics_snapshot()
                .counters
                .get("warm.replayed")
                .copied()
                .unwrap_or(0)
                > 0
        );
    }

    /// A payload carrying a different spec must be rejected — stale
    /// snapshots never leak answers into a re-seeded world.
    #[test]
    fn mismatched_spec_is_rejected() {
        let spec = tiny_spec();
        let engine = spec.build();
        let payload = export_snapshot(&engine, spec);
        let other = WorldSpec { seed: 12, ..spec };
        assert!(import_snapshot(&engine, &payload, other).is_err());
        assert_eq!(snapshot_spec(&payload).expect("spec"), spec);
    }

    /// Truncated payloads error instead of importing partial state.
    #[test]
    fn truncated_payload_is_rejected() {
        let spec = tiny_spec();
        let engine = spec.build();
        let req = QueryRequest::protein_functions("GALT", RankerSpec::new(Method::InEdge));
        engine.execute(&req).expect("query");
        let payload = export_snapshot(&engine, spec);
        let fresh = spec.build();
        for cut in [0, 10, payload.len() / 2, payload.len() - 1] {
            assert!(
                import_snapshot(&fresh, &payload[..cut], spec).is_err(),
                "cut {cut} accepted"
            );
        }
    }
}
