//! A sharded LRU cache for resident query state.
//!
//! The serving layer keeps two of these per engine: integrated query
//! graphs and ranked score vectors. Sharding by key hash keeps lock
//! contention bounded under concurrent batches — each shard is an
//! independent `Mutex<LruShard>`, so two workers touching different
//! queries almost never serialize on the same lock.
//!
//! The LRU list is intrusive: entries live in a slab (`Vec`) and carry
//! `prev`/`next` indices, so promotion and eviction are O(1) with no
//! per-operation allocation beyond the slab growth itself.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: a classic slab-backed LRU list + hash index.
struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slab[i].value.clone())
    }

    /// Entries in most-recently-used order (head → tail walk of the
    /// intrusive list).
    fn entries_mru(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push((self.slab[i].key.clone(), self.slab[i].value.clone()));
            i = self.slab[i].next;
        }
        out
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// Cache hit/miss counters, cheap enough to sample per request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
    /// Writes accepted (plain inserts plus guarded inserts whose
    /// predicate approved the replacement).
    pub inserts: u64,
    /// Guarded inserts declined because the resident entry was at
    /// least as strong ([`ShardedLru::insert_if`]).
    pub rejected: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe LRU cache split into independently locked shards.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    rejected: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache holding at most `capacity` entries, spread over
    /// `shards` locks. A zero `capacity` disables caching entirely
    /// (every lookup misses) — used by the uncached benchmark baseline.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(capacity.max(1));
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = self.hasher.build_hasher();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let got = self.shard(key).lock().expect("cache shard").get(key);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Inserts (or refreshes) an entry, evicting the least recently
    /// used entry of the target shard when it is full.
    pub fn insert(&self, key: K, value: V) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.shard(&key)
            .lock()
            .expect("cache shard")
            .insert(key, value);
    }

    /// Inserts `value` unless a resident entry for `key` exists and
    /// `replace(&resident)` says to keep it. The predicate runs under
    /// the shard lock, so the decision and the write are atomic — two
    /// racing computations cannot interleave a weaker value over the
    /// stronger one the predicate just approved against.
    pub fn insert_if(&self, key: K, value: V, replace: impl FnOnce(&V) -> bool) {
        let mut shard = self.shard(&key).lock().expect("cache shard");
        if let Some(&i) = shard.map.get(&key) {
            if !replace(&shard.slab[i].value) {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, value);
    }

    /// Up to `limit` resident keys, hottest (approximately
    /// most-recently-used) first.
    ///
    /// Recency is tracked per shard, so the global order is an
    /// interleaving of per-shard MRU lists — position `i` of every
    /// shard before position `i + 1` of any. That approximation is
    /// exactly good enough for its one caller, cache warm-up on world
    /// swap, where "the hot set" matters and its internal order does
    /// not.
    pub fn hot_keys(&self, limit: usize) -> Vec<K> {
        self.hot_entries(limit)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// Like [`hot_keys`](ShardedLru::hot_keys), but each key arrives
    /// with (a clone of) its resident value — for callers that replay
    /// the hot set and need per-entry context, like the swap warm-up
    /// replaying a result's certified coverage.
    pub fn hot_entries(&self, limit: usize) -> Vec<(K, V)> {
        let lists: Vec<Vec<(K, V)>> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard").entries_mru())
            .collect();
        let mut out = Vec::new();
        let longest = lists.iter().map(Vec::len).max().unwrap_or(0);
        'fill: for rank in 0..longest {
            for list in &lists {
                if let Some(entry) = list.get(rank) {
                    out.push(entry.clone());
                    if out.len() == limit {
                        break 'fill;
                    }
                }
            }
        }
        out
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard").map.len())
                .sum(),
            inserts: self.inserts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit() {
        let c: ShardedLru<u32, String> = ShardedLru::new(8, 2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_order() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // promote 1
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn insert_if_keeps_resident_when_predicate_declines() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        c.insert_if(1, 10, |_| unreachable!("no resident yet"));
        assert_eq!(c.get(&1), Some(10));
        c.insert_if(1, 5, |&resident| 5 > resident);
        assert_eq!(c.get(&1), Some(10), "weaker value must not replace");
        c.insert_if(1, 99, |&resident| 99 > resident);
        assert_eq!(c.get(&1), Some(99), "stronger value replaces");
        let s = c.stats();
        assert_eq!((s.inserts, s.rejected), (2, 1));
    }

    #[test]
    fn reinsert_updates_value() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(0, 4);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        for i in 0..100 {
            c.insert(i, i);
        }
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.get(&99), Some(99));
        assert_eq!(c.get(&98), Some(98));
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn hot_keys_are_mru_first_and_bounded() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(8, 1);
        for i in 0..5 {
            c.insert(i, i);
        }
        c.get(&1); // promote 1 to the front
        let hot = c.hot_keys(3);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0], 1, "most recently used leads");
        assert!(c.hot_keys(100).len() == 5, "limit caps at residency");
        assert!(ShardedLru::<u32, u32>::new(4, 2).hot_keys(3).is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(ShardedLru::<u64, u64>::new(64, 8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let k = (t * 31 + i) % 100;
                        c.insert(k, k * 2);
                        if let Some(v) = c.get(&k) {
                            assert_eq!(v, k * 2);
                        }
                    }
                });
            }
        });
        assert!(c.stats().entries <= 64);
    }
}
