//! # biorank-serve
//!
//! The serving layer of the BioRank reproduction: a long-lived,
//! multi-threaded query service over a resident
//! [`World`](biorank_sources::World).
//!
//! The experiment binaries re-integrate the world from scratch on
//! every invocation; a production deployment cannot. This crate keeps
//! everything resident and adds the three pieces a service needs:
//!
//! * [`QueryEngine`] — wraps a [`Mediator`](biorank_mediator::Mediator)
//!   and ranker construction behind a sharded LRU cache keyed by
//!   `(entity_set, keyword, ranker, params)`, at two layers:
//!   integrated query graphs and ranked score vectors.
//! * [`WorkerPool`] — a fixed pool of std threads draining an `mpsc`
//!   job queue. Monte Carlo seeds are derived from request *content*
//!   ([`RankerSpec::effective_seed`]), so an N-worker batch is
//!   bit-identical to a sequential one.
//! * [`WorldManager`] — multi-world tenancy: a registry of named
//!   worlds (seed + federation config → engine) with concurrent-read /
//!   exclusive-swap semantics, LRU eviction under a resident budget,
//!   and per-world generation counters. A swap installs a fresh
//!   engine, atomically invalidating both cache layers of the
//!   replaced one.
//! * [`Server`] / [`Client`] — a line-delimited JSON protocol
//!   (hand-rolled in [`wire`]; the workspace is deliberately std-only)
//!   over `std::net::TcpListener`, surfaced as the `biorank serve`,
//!   `biorank query --addr`, and `biorank admin` subcommands. Admin
//!   lines (`world.load`, `world.swap`, `world.evict`, `world.save`,
//!   `checkpoint`, `world.list`, `stats`, `metrics`) drive the
//!   registry over the same connection.
//! * [`persist`] / [`WorldStore`] — durable world persistence: each
//!   resident world snapshots to a checksummed container file, admin
//!   ops append to a write-ahead log, and `serve --data-dir` replays
//!   manifest + WAL on boot so a restarted server answers
//!   bit-identically from its snapshots without a full rebuild.
//!
//! ```no_run
//! use std::sync::Arc;
//! use biorank_mediator::Mediator;
//! use biorank_schema::biorank_schema_with_ontology;
//! use biorank_service::{
//!     Method, QueryEngine, QueryRequest, RankerSpec, ServeOptions, Server,
//! };
//! use biorank_sources::{World, WorldParams};
//!
//! let world = World::generate(WorldParams::default());
//! let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
//! let engine = Arc::new(QueryEngine::new(mediator));
//!
//! // In-process use: no sockets needed.
//! let response = engine
//!     .execute(&QueryRequest::protein_functions(
//!         "GALT",
//!         RankerSpec::new(Method::Reliability),
//!     ))
//!     .unwrap();
//! assert_eq!(response.total_answers, 15); // Table 1: GALT → 15
//!
//! // Or serve it over TCP.
//! let server = Server::bind("127.0.0.1:7878", engine, ServeOptions::default()).unwrap();
//! server.run().unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod persist;
pub mod pool;
pub mod server;
pub mod tenancy;
pub mod wire;

pub use admission::{ConnectionBudget, ConnectionPermit, FaultPlan, InFlightGauge, TokenBucket};
pub use biorank_obs::{
    HistogramBucket, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SlowQueryEntry,
    SlowQueryLog, TraceSpan,
};
pub use biorank_rank::{AdaptiveOutcome, Certificate, CertificateMode};
pub use biorank_store::{RecoveredWorld, Recovery, StoreError, WorldStore};
pub use cache::{CacheStats, ShardedLru};
pub use engine::{
    query_schema_reducible, run_adaptive, spec_for_strategy, AdaptiveConfig, Coverage, EngineStats,
    Estimator, Method, QueryEngine, QueryRequest, QueryResponse, RankedAnswer, RankedResult,
    RankerSpec, Trials, DEFAULT_CACHE_CAPACITY, FUSION_LANES, PARALLEL_MC_CHUNKS,
    RECALIBRATION_INTERVAL,
};
pub use persist::{export_snapshot, import_snapshot, snapshot_spec};
pub use pool::WorkerPool;
pub use server::{
    Client, ClientOptions, ServeOptions, Server, ServerHandle, DEFAULT_DRAIN_DEADLINE_MS,
    DEFAULT_MAX_CONNECTIONS, DEFAULT_MAX_REQUEST_BYTES, DEFAULT_QUEUE_DEPTH,
    DEFAULT_READ_TIMEOUT_MS, DEFAULT_RETRY_AFTER_MS, DEFAULT_SLOW_QUERY_MICROS,
    DEFAULT_WRITE_TIMEOUT_MS,
};
pub use tenancy::{
    MetricsReport, ServiceStats, TenancyError, WorldInfo, WorldManager, WorldMetrics, WorldSpec,
    WorldState, WorldStats, DEFAULT_SWAP_WARM, DEFAULT_WORLD, DEFAULT_WORLD_BUDGET,
};
pub use wire::{AdminRequest, AdminResponse, RequestDefaults};

use std::fmt;

/// Errors produced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Integration failed.
    Mediator(biorank_mediator::Error),
    /// Ranking failed.
    Rank(biorank_rank::Error),
    /// A malformed protocol message.
    Wire(wire::WireError),
    /// A world-registry failure (unknown world, budget, pinning).
    Tenancy(tenancy::TenancyError),
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered with an error, rendered as text.
    Remote(String),
    /// The server shed the request at admission (connection budget,
    /// queue depth, or rate limit); retry after the hinted backoff.
    Overloaded {
        /// The server's backoff hint, in milliseconds.
        retry_after_ms: u64,
    },
}

impl Error {
    /// `true` when the server shed this request under overload —
    /// either at the connection level ([`Error::Overloaded`]) or as a
    /// per-request `overloaded` error line — and a bounded retry with
    /// backoff is the right client response.
    pub fn is_overload(&self) -> bool {
        match self {
            Error::Overloaded { .. } => true,
            Error::Remote(msg) => msg.contains("overloaded"),
            _ => false,
        }
    }

    /// The server's `retry_after_ms` backoff hint, when this error
    /// carries one (shed notices embed it in the message as
    /// `retry_after_ms=N`).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Error::Overloaded { retry_after_ms } => Some(*retry_after_ms),
            Error::Remote(msg) => msg.split("retry_after_ms=").nth(1).and_then(|rest| {
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                digits.parse().ok()
            }),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Mediator(e) => write!(f, "integration failed: {e}"),
            Error::Rank(e) => write!(f, "ranking failed: {e}"),
            Error::Wire(e) => write!(f, "{e}"),
            Error::Tenancy(e) => write!(f, "tenancy: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Remote(msg) => write!(f, "remote: {msg}"),
            Error::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Mediator(e) => Some(e),
            Error::Rank(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::Tenancy(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Remote(_) | Error::Overloaded { .. } => None,
        }
    }
}

impl From<biorank_mediator::Error> for Error {
    fn from(e: biorank_mediator::Error) -> Self {
        Error::Mediator(e)
    }
}

impl From<biorank_rank::Error> for Error {
    fn from(e: biorank_rank::Error) -> Self {
        Error::Rank(e)
    }
}

impl From<wire::WireError> for Error {
    fn from(e: wire::WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<tenancy::TenancyError> for Error {
    fn from(e: tenancy::TenancyError) -> Self {
        Error::Tenancy(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e: Error = biorank_mediator::Error::EmptyAnswerSet.into();
        assert!(e.to_string().contains("integration"));
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = biorank_rank::Error::ZeroTrials.into();
        assert!(e.to_string().contains("ranking"));
        let e = Error::Remote("boom".into());
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
