//! The query engine: a resident world behind two sharded LRU caches.
//!
//! `QueryEngine` wraps a [`Mediator`] plus ranker construction behind
//! two cache layers:
//!
//! 1. **Graph cache** — `ExploratoryQuery → Arc<IntegrationResult>`:
//!    repeated exploratory queries (the dominant interactive pattern —
//!    the same protein ranked under different semantics) skip
//!    re-integrating the world entirely.
//! 2. **Result cache** — `(ExploratoryQuery, RankerSpec) → ranked
//!    answers`: an identical query+ranker pair is answered without
//!    scoring at all.
//!
//! Below the caches sit two concurrency collapses, both invisible on
//! the wire:
//!
//! - **Single-flight** — concurrent misses on the same result key
//!   elect one leader; followers block, then serve the leader's
//!   freshly cached entry (`queries.coalesced` counts them).
//! - **Fusion sweeps** — concurrent word-estimator Monte Carlo jobs
//!   on the same exploratory query (same resident CSR) share one
//!   [`run_fused`] multi-query sweep: each job owns a lane group of
//!   the [`FUSION_LANES`]-wide propagation blocks, and counts demux
//!   per job. `fusion.{batches,lanes_used}` and the `fusion_width`
//!   histogram record the sharing.
//!
//! Determinism is load-bearing: Monte Carlo rankers are seeded from
//! `mix(spec.seed, fnv1a(query))`, a value derived only from request
//! *content*, never from arrival order or worker identity. A batch
//! therefore produces bit-identical rankings on one worker and on N,
//! and a cache hit returns exactly what recomputation would. Lane
//! widening and fusion preserve this bit-for-bit: batch `b` of a job
//! draws from the stream keyed `(seed, b)` no matter which lane of
//! whose block executes it, so a fused response is byte-identical to
//! the same request computed alone.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use biorank_mediator::{ExploratoryQuery, IntegrationResult, Mediator};
use biorank_obs::{MetricsRegistry, MetricsSnapshot, TraceRecorder, TraceSpan};
use biorank_rank::{
    run_fused, AdaptiveRunner, CalibrationInput, Certificate, CertificateMode, ClosedReliability,
    CostModel, Diffusion, FusedJob, FusedOutcome, FusedPolicy, GraphFeatures, InEdge, PathCount,
    Plan, PlanFeatures, Propagation, Ranker, Ranking, ReducedMc, Scores, Strategy,
    StrategyTelemetry, TraversalMc, TrialsPolicy, WordMc,
};
use biorank_schema::{check_query_reducible, ComposeHints, Schema};

use crate::cache::{CacheStats, ShardedLru};
use crate::Error;

/// The ranking semantics a request can ask for, mirroring the paper's
/// five methods (§3) plus the plain traversal-MC estimator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Possible-worlds reliability via reduction + Monte Carlo
    /// (`ReducedMc`, the paper's headline configuration).
    Reliability,
    /// Reliability via plain traversal Monte Carlo (Algorithm 3.1).
    TraversalMc,
    /// Propagation (Algorithm 3.2).
    Propagation,
    /// Diffusion (Algorithm 3.3).
    Diffusion,
    /// Deterministic in-edge count.
    InEdge,
    /// Deterministic s→t path count.
    PathCount,
    /// Per-answer closed-form reliability
    /// ([`biorank_rank::ClosedReliability`], the paper's "C"
    /// strategy, §3.1(3)): exact where the reduction theory applies,
    /// with deterministic factoring / fixed-seed sampling backstops
    /// elsewhere. Deterministic with respect to the request spec —
    /// `trials`/`seed` are ignored.
    Exact,
}

impl Method {
    /// Parses the wire / CLI spelling (`rel`, `mc`, `prop`, `diff`,
    /// `inedge`, `pathc` and a few obvious synonyms).
    pub fn parse(name: &str) -> Option<Method> {
        Some(match name.to_ascii_lowercase().as_str() {
            "rel" | "reliability" => Method::Reliability,
            "mc" | "relmc" => Method::TraversalMc,
            "prop" | "propagation" => Method::Propagation,
            "diff" | "diffusion" => Method::Diffusion,
            "inedge" => Method::InEdge,
            "pathc" | "pathcount" => Method::PathCount,
            "exact" | "closed" => Method::Exact,
            _ => return None,
        })
    }

    /// The canonical wire spelling.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Method::Reliability => "rel",
            Method::TraversalMc => "mc",
            Method::Propagation => "prop",
            Method::Diffusion => "diff",
            Method::InEdge => "inedge",
            Method::PathCount => "pathc",
            Method::Exact => "exact",
        }
    }

    /// `true` for the Monte Carlo methods whose output depends on
    /// `(trials, seed)`. [`Method::Exact`] is deliberately *not* one
    /// of them: its backstops are seeded by fixed internal constants,
    /// so its output is a function of the query alone.
    pub fn is_stochastic(&self) -> bool {
        matches!(self, Method::Reliability | Method::TraversalMc)
    }

    /// `true` for the methods whose execution strategy the cost-based
    /// planner may choose (`estimator: "auto"`): the reliability
    /// semantics the paper's Fig. 8a compares across exact, reduced,
    /// and sampled evaluations.
    pub fn is_plannable(&self) -> bool {
        matches!(self, Method::Reliability | Method::TraversalMc)
    }
}

/// Which Monte Carlo engine executes a [`Method::TraversalMc`]
/// request.
///
/// Both estimate the same reliability semantics from the same
/// `(trials, seed)` contract, but through different (and differently
/// seeded) sampling schedules, so their outputs are distinct values —
/// the result cache keys them separately.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Per-trial depth-first traversal (Algorithm 3.1) — the paper's
    /// reference engine.
    #[default]
    Traversal,
    /// Word-parallel batches: 64 trials per `u64` bitmask propagated
    /// over a frozen CSR snapshot ([`biorank_rank::WordMc`]). The fast
    /// path for DAG query graphs — which is all of them in the
    /// paper's workload.
    Word,
    /// Defer the choice to the cost-based planner
    /// ([`biorank_rank::planner`]). The engine resolves `auto` into a
    /// concrete strategy — possibly re-routing the method to the
    /// closed solution or reduction + Monte Carlo — *before* any
    /// cache key is formed, so a planned request shares cache entries
    /// with (and is byte-identical to) an explicit request for the
    /// chosen strategy. The `serve` default.
    Auto,
}

impl Estimator {
    /// Parses the wire / CLI spelling.
    pub fn parse(name: &str) -> Option<Estimator> {
        Some(match name.to_ascii_lowercase().as_str() {
            "traversal" | "trav" => Estimator::Traversal,
            "word" | "wordmc" => Estimator::Word,
            "auto" => Estimator::Auto,
            _ => return None,
        })
    }

    /// The canonical wire spelling.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Estimator::Traversal => "traversal",
            Estimator::Word => "word",
            Estimator::Auto => "auto",
        }
    }
}

/// The adaptive trial policy: run Monte Carlo batches until
/// [`biorank_rank::bounds`] certifies the ranking at (ε, δ) or the
/// trial ceiling hits (see [`biorank_rank::AdaptiveRunner`]).
///
/// `PartialEq`/`Hash` compare the float parameters by bit pattern —
/// the struct is a cache-key dimension, and two policies are "the same
/// configuration" exactly when every parameter is bit-equal.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Smallest score separation that must be ranked correctly.
    pub epsilon: f64,
    /// Allowed per-pair failure probability.
    pub delta: f64,
    /// Hard trial ceiling when the ranking never certifies.
    pub max_trials: u32,
}

impl Default for AdaptiveConfig {
    /// The paper's M1 parameters: ε = 0.02 at 95% confidence, ceiling
    /// at the fixed default of [`RankerSpec::DEFAULT_TRIALS`].
    fn default() -> Self {
        AdaptiveConfig {
            epsilon: 0.02,
            delta: 0.05,
            max_trials: RankerSpec::DEFAULT_TRIALS,
        }
    }
}

impl PartialEq for AdaptiveConfig {
    fn eq(&self, other: &Self) -> bool {
        self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.delta.to_bits() == other.delta.to_bits()
            && self.max_trials == other.max_trials
    }
}

impl Eq for AdaptiveConfig {}

impl std::hash::Hash for AdaptiveConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.epsilon.to_bits().hash(state);
        self.delta.to_bits().hash(state);
        self.max_trials.hash(state);
    }
}

/// The trial dimension of a Monte Carlo request: a fixed count, or the
/// adaptive bound-certified policy. Part of the result-cache key —
/// fixed and adaptive executions of the same query are distinct
/// results and must never answer each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trials {
    /// Run exactly this many trials (the paper's fixed schedule).
    Fixed(u32),
    /// Run batches until the ranking certifies (or the ceiling hits),
    /// echoing a [`Certificate`] in the response.
    Adaptive(AdaptiveConfig),
}

impl Trials {
    /// `true` for the adaptive policy.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, Trials::Adaptive(_))
    }
}

/// A ranker configuration — part of the result-cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RankerSpec {
    /// Ranking semantics.
    pub method: Method,
    /// Monte Carlo trial policy (ignored by deterministic methods).
    pub trials: Trials,
    /// Base RNG seed (ignored by deterministic methods). The effective
    /// per-query seed also mixes in the query content; see
    /// [`RankerSpec::effective_seed`].
    pub seed: u64,
    /// Opt into intra-query parallel Monte Carlo. Only meaningful for
    /// [`Method::TraversalMc`]: under the traversal estimator the
    /// trials run as [`PARALLEL_MC_CHUNKS`] fixed RNG streams spread
    /// over OS threads, so the estimate depends only on request
    /// content — never on the thread count — and stays cache-coherent
    /// with repeated parallel executions. Under the word estimator
    /// the flag spreads trial batches over threads without changing a
    /// single output bit. Other methods ignore the flag.
    pub parallel: bool,
    /// Which Monte Carlo engine runs a [`Method::TraversalMc`]
    /// request. `None` means "unspecified": a server applies its
    /// configured default (`biorank serve --estimator`), direct
    /// [`QueryEngine`] callers get [`Estimator::Traversal`]. The two
    /// engines produce different sample schedules, so the resolved
    /// estimator is part of the result-cache key. Other methods
    /// ignore the field.
    pub estimator: Option<Estimator>,
}

impl RankerSpec {
    /// Default trial count — the paper's M1 configuration (Theorem 3.1
    /// bound for ε = 0.02 at 95% confidence).
    pub const DEFAULT_TRIALS: u32 = 10_000;
    /// Default base seed, shared with the experiment binaries.
    pub const DEFAULT_SEED: u64 = 0xB10_C0DE;

    /// A spec for `method` with the default fixed trials/seed,
    /// sequential, with the default (traversal) estimator.
    pub fn new(method: Method) -> Self {
        RankerSpec {
            method,
            trials: Trials::Fixed(Self::DEFAULT_TRIALS),
            seed: Self::DEFAULT_SEED,
            parallel: false,
            estimator: None,
        }
    }

    /// The Monte Carlo engine this spec executes with: the explicit
    /// choice, or [`Estimator::Traversal`] when unspecified.
    pub fn resolved_estimator(&self) -> Estimator {
        self.estimator.unwrap_or_default()
    }

    /// The seed actually handed to a Monte Carlo ranker for `query`:
    /// a content-derived mix, so concurrent execution order cannot
    /// influence results.
    pub fn effective_seed(&self, query: &ExploratoryQuery) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut eat = |s: &str| {
            for b in s.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff; // field separator
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(&query.input);
        eat(&query.attribute);
        eat(&query.value);
        for o in &query.outputs {
            eat(o);
        }
        // SplitMix64 finalizer over seed ⊕ content hash.
        let mut z = self.seed ^ h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The spec as used in the result-cache key. Deterministic
    /// methods ignore `trials`/`seed`, so those fields are normalized
    /// to zero — requests differing only in an irrelevant seed share
    /// one cache entry instead of recomputing identical rankings.
    ///
    /// For [`Method::TraversalMc`] the estimator is resolved to its
    /// concrete engine (`None` ≡ explicit traversal — same bits, one
    /// entry), and distinct engines get distinct keys: a word-parallel
    /// result must never answer a traversal request or vice versa.
    /// `parallel` survives only for the traversal engine under
    /// **fixed** trials, where it selects the (different, chunked)
    /// sampling schedule; the word engine is bit-identical at every
    /// thread count, and the adaptive runner always drives the
    /// engine's canonical incremental schedule, so the flag is
    /// normalized away in both cases. Everywhere else both fields are
    /// irrelevant and zeroed.
    ///
    /// The trial policy itself stays verbatim for stochastic methods:
    /// `Trials::Fixed(10_000)` and `Trials::Adaptive { .. }` are
    /// different sampling schedules and never share an entry.
    pub fn cache_key(&self) -> RankerSpec {
        if self.method.is_stochastic() {
            let estimator = if self.method == Method::TraversalMc {
                Some(self.resolved_estimator())
            } else {
                None
            };
            RankerSpec {
                parallel: self.parallel
                    && !self.trials.is_adaptive()
                    && estimator == Some(Estimator::Traversal),
                estimator,
                ..*self
            }
        } else {
            RankerSpec {
                method: self.method,
                trials: Trials::Fixed(0),
                seed: 0,
                parallel: false,
                estimator: None,
            }
        }
    }

    /// The per-engine latency histogram this spec's executions record
    /// into. Static strings (one per `(method, estimator)` pair) keep
    /// the hot path free of per-request name formatting.
    pub fn latency_metric(&self) -> &'static str {
        match self.method {
            Method::TraversalMc => match self.resolved_estimator() {
                Estimator::Traversal => "query_ns.mc.traversal",
                // `auto` is resolved by the engine before execution;
                // an unresolved spec runs (and records as) the word
                // engine, the strongest single default.
                Estimator::Word | Estimator::Auto => "query_ns.mc.word",
            },
            Method::Reliability => "query_ns.rel",
            Method::Propagation => "query_ns.prop",
            Method::Diffusion => "query_ns.diff",
            Method::InEdge => "query_ns.inedge",
            Method::PathCount => "query_ns.pathc",
            Method::Exact => "query_ns.exact",
        }
    }

    /// The per-engine request counter this spec's executions bump,
    /// same keying as [`latency_metric`](RankerSpec::latency_metric).
    pub fn count_metric(&self) -> &'static str {
        match self.method {
            Method::TraversalMc => match self.resolved_estimator() {
                Estimator::Traversal => "queries.mc.traversal",
                Estimator::Word | Estimator::Auto => "queries.mc.word",
            },
            Method::Reliability => "queries.rel",
            Method::Propagation => "queries.prop",
            Method::Diffusion => "queries.diff",
            Method::InEdge => "queries.inedge",
            Method::PathCount => "queries.pathc",
            Method::Exact => "queries.exact",
        }
    }

    /// Builds the ranker for one fixed-trial (or deterministic) query.
    /// Adaptive Monte Carlo executions go through
    /// [`biorank_rank::AdaptiveRunner`] instead (they return a
    /// certificate, which the `Ranker` interface cannot carry); for a
    /// stochastic method with an adaptive policy this builds the
    /// ceiling-trials fixed engine.
    pub fn build(&self, query: &ExploratoryQuery) -> Box<dyn Ranker + Send + Sync> {
        let seed = self.effective_seed(query);
        let trials = match self.trials {
            Trials::Fixed(n) => n,
            Trials::Adaptive(cfg) => cfg.max_trials,
        };
        match self.method {
            Method::Reliability => Box::new(ReducedMc::new(trials, seed)),
            Method::TraversalMc => match self.resolved_estimator() {
                Estimator::Traversal => Box::new(TraversalMc::new(trials, seed)),
                Estimator::Word | Estimator::Auto => {
                    Box::new(WordMc::<FUSION_LANES>::wide(trials, seed))
                }
            },
            Method::Propagation => Box::new(Propagation::auto()),
            Method::Diffusion => Box::new(Diffusion::auto()),
            Method::InEdge => Box::new(InEdge),
            Method::PathCount => Box::new(PathCount),
            // `trials`/`seed` are deliberately not forwarded: the
            // closed solution's backstops run fixed internal budgets,
            // keeping the method deterministic w.r.t. the spec.
            Method::Exact => Box::new(ClosedReliability::default()),
        }
    }
}

/// One query to execute: what to integrate and how to rank it.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// The exploratory query.
    pub query: ExploratoryQuery,
    /// Ranker configuration.
    pub spec: RankerSpec,
    /// Truncate the response to the first `top` ranked answers
    /// (`None` = all). Truncation happens at response assembly; the
    /// cache always holds the full (answer-set-wide) ranking.
    pub top: Option<usize>,
    /// Restrict adaptive certification to the `top` prefix: stop
    /// Monte Carlo batches once the top-`top` answers and their
    /// boundary gap resolve at (ε, δ), ignoring gaps further down
    /// (see [`biorank_rank::AdaptiveRunner::with_top_k`]). Only
    /// meaningful for stochastic methods under an adaptive trial
    /// policy with `top` set; everywhere else the flag is a no-op.
    /// Not a cache-key dimension — see [`RankedResult::covers`] for
    /// the prefix-reuse rule that takes its place.
    pub certify_top: bool,
    /// Which resident world to execute against (`None` = the server's
    /// default world). Routed by the server via
    /// [`WorldManager`](crate::tenancy::WorldManager); a
    /// [`QueryEngine`] itself is always single-world, so the field is
    /// not part of any cache key.
    pub world: Option<String>,
    /// Echo the per-stage span breakdown in the response. Purely
    /// observational: tracing changes neither the execution path nor
    /// any cache key (it is not a [`RankerSpec`] field), so a traced
    /// request is bit-identical to its untraced twin — answers,
    /// certificates, and cache effects included.
    pub trace: bool,
    /// Execution time budget in milliseconds, measured from
    /// [`QueryEngine::execute`] entry. A stochastic run still going
    /// when the budget expires is aborted between estimator batches
    /// with [`Error::Rank`] over
    /// [`biorank_rank::Error::DeadlineExceeded`], carrying
    /// partial-trial telemetry. Like `world` and `trace` this is not
    /// part of any cache key: the deadline only decides whether a run
    /// finishes, never what a finished run computes — a request that
    /// beats its deadline is bit-identical to the undeadlined twin,
    /// and an aborted run never reaches the result cache.
    pub deadline_ms: Option<u64>,
}

impl QueryRequest {
    /// The common case: rank a protein's candidate functions on the
    /// default world.
    pub fn protein_functions(protein: &str, spec: RankerSpec) -> Self {
        QueryRequest {
            query: ExploratoryQuery::protein_functions(protein),
            spec,
            top: None,
            certify_top: false,
            world: None,
            trace: false,
            deadline_ms: None,
        }
    }

    /// The same request with per-stage trace spans echoed back.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// The same request under an execution deadline of `ms`
    /// milliseconds (see [`QueryRequest::deadline_ms`]).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// The same request routed to a named world.
    pub fn on_world(mut self, world: impl Into<String>) -> Self {
        self.world = Some(world.into());
        self
    }

    /// The same request with top-k certification: return (and, under
    /// an adaptive policy, certify only) the first `k` answers.
    pub fn certified_top(mut self, k: usize) -> Self {
        self.top = Some(k);
        self.certify_top = true;
        self
    }

    /// The ranking coverage this request needs from a result: a
    /// certified top-k prefix when it opts into top-k certification
    /// under an adaptive policy, the fully ordered ranking otherwise.
    pub fn coverage(&self) -> Coverage {
        match self.top {
            Some(k)
                if self.certify_top
                    && self.spec.method.is_stochastic()
                    && self.spec.trials.is_adaptive() =>
            {
                Coverage::TopK(k)
            }
            _ => Coverage::Full,
        }
    }
}

/// The ranking coverage a request needs: how much of the answer order
/// must be backed by the executed trial schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coverage {
    /// The full answer ranking (every request that does not opt into
    /// top-k certification).
    Full,
    /// The top-k prefix plus its boundary gap.
    TopK(usize),
}

/// One ranked answer, fully resolved for transport.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedAnswer {
    /// Record key (e.g. the GO term id).
    pub key: String,
    /// Display label.
    pub label: String,
    /// Relevance score under the requested semantics.
    pub score: f64,
    /// First rank of the answer's tie group (1-based).
    pub rank_lo: usize,
    /// Last rank of the answer's tie group (1-based).
    pub rank_hi: usize,
}

/// The outcome of executing one [`QueryRequest`].
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// Ranked answers, best first, truncated to the request's `top`.
    pub answers: Vec<RankedAnswer>,
    /// Size of the full answer set before truncation.
    pub total_answers: usize,
    /// The stop certificate of an adaptive Monte Carlo execution
    /// (`None` for fixed-trial and deterministic requests). Cached
    /// alongside the ranking, so a result-cache hit echoes the
    /// certificate of the run that populated the entry.
    pub certificate: Option<Certificate>,
    /// `true` when this call did not have to run integration — the
    /// query graph came from the graph cache, or scoring was skipped
    /// entirely via the result cache. (It does not assert the graph
    /// entry is *still* resident: on a result-cache hit the graph
    /// layer is never consulted.)
    pub cached_graph: bool,
    /// `true` when the ranking was served from the result cache.
    pub cached_scores: bool,
    /// Wall-clock execution time of this call, in microseconds.
    pub micros: u64,
    /// Per-stage span breakdown, present only when the request set
    /// [`QueryRequest::trace`] (empty otherwise — and omitted from the
    /// wire encoding when empty).
    pub trace: Vec<TraceSpan>,
    /// The cost-based planner's verdict when this execution was
    /// planned (`estimator: "auto"`): chosen strategy, predicted
    /// cost, and the feature vector it scored. `None` for explicit
    /// requests. Echo-only, like `trace` — never a cache-key
    /// dimension; a result-cache hit echoes the *requesting* call's
    /// plan, whatever populated the entry.
    pub plan: Option<Plan>,
}

/// Combined cache counters for an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Graph-cache (integration) counters.
    pub graphs: CacheStats,
    /// Result-cache (ranking) counters.
    pub results: CacheStats,
}

/// A fully ranked (and possibly certified) result, as stored in the
/// result cache.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedResult {
    /// The full ranking, best first. Under a top-k certificate only
    /// the certified prefix is bound-backed; the tail carries running
    /// estimates.
    pub answers: Vec<RankedAnswer>,
    /// The adaptive stop certificate, when one was produced.
    pub certificate: Option<Certificate>,
}

impl RankedResult {
    /// The prefix-reuse rule: can this stored result answer a request
    /// needing `coverage` exactly as well as (or better than)
    /// recomputing would?
    ///
    /// * Fixed-trial and deterministic results (no certificate) ran
    ///   the full precision schedule: they serve any coverage — two
    ///   requests differing only in `top`/`certify_top` share one
    ///   entry.
    /// * A **certified full** adaptive result satisfies any `k'`.
    /// * A **certified top-k** result serves `k' ≤ k`; a deeper
    ///   prefix (or the full ranking) must recompute — and the fresh,
    ///   strictly-more-certified entry then *replaces* this one.
    /// * An **uncertified** result (ceiling hit) only answers the
    ///   exact coverage it ran under: a narrower top-k request could
    ///   legitimately certify where this run could not, so it must be
    ///   allowed to try.
    pub fn covers(&self, coverage: Coverage) -> bool {
        let Some(cert) = &self.certificate else {
            return true;
        };
        match (cert.mode, coverage) {
            (CertificateMode::Full, Coverage::Full) => true,
            (CertificateMode::Full, Coverage::TopK(_)) => cert.certified,
            (CertificateMode::TopK(_), Coverage::Full) => false,
            (CertificateMode::TopK(m), Coverage::TopK(k)) => {
                if cert.certified {
                    k <= m as usize
                } else {
                    k == m as usize
                }
            }
        }
    }

    /// Does this result serve every coverage `other` serves? The
    /// replacement guard of the result cache: a freshly computed
    /// result only replaces a resident entry it dominates, so a run
    /// that certified *less* (or hit its ceiling uncertified) can
    /// never evict a stronger answer — without this, mixed top-k/full
    /// client populations whose full runs end uncertified would
    /// ping-pong the entry and recompute forever.
    ///
    /// The serving sets, per [`covers`](RankedResult::covers): no
    /// certificate or certified-full serve everything; certified
    /// top-m serves `k ≤ m`; uncertified runs serve only the exact
    /// coverage they ran under.
    pub fn serves_at_least(&self, other: &RankedResult) -> bool {
        use CertificateMode::{Full, TopK};
        let class = |r: &RankedResult| r.certificate.map(|c| (c.mode, c.certified));
        match (class(self), class(other)) {
            // Fixed/deterministic and certified-full serve everything.
            (None | Some((Full, true)), _) => true,
            (_, None | Some((Full, true))) => false,
            (Some((TopK(m), true)), Some((TopK(n), _))) => n <= m,
            (Some((Full, false)), Some((Full, false))) => true,
            (Some((TopK(m), false)), Some((TopK(n), false))) => m == n,
            // Remaining pairs serve disjoint coverages (an uncertified
            // run's singleton vs anything else).
            _ => false,
        }
    }
}

/// A long-lived, thread-safe query engine over a resident world.
///
/// Cheap to share: wrap it in an [`Arc`] and call
/// [`execute`](QueryEngine::execute) from any number of threads.
pub struct QueryEngine {
    mediator: Mediator,
    graphs: ShardedLru<ExploratoryQuery, Arc<IntegrationResult>>,
    results: ShardedLru<(ExploratoryQuery, RankerSpec), Arc<RankedResult>>,
    metrics: Arc<MetricsRegistry>,
    /// Result-cache keys populated by [`QueryEngine::warm`] that no
    /// client request has hit yet. Each key converts at most once
    /// (`warm.hits` counts conversions, not repeat traffic), and the
    /// atomic size mirror keeps the hit path lock-free once the set
    /// drains — the steady state of every engine that was never
    /// warmed, or whose warm set has fully converted.
    warmed: Mutex<HashSet<(ExploratoryQuery, RankerSpec)>>,
    warmed_remaining: AtomicU64,
    /// Single-flight table: one in-progress computation per result
    /// key. Concurrent identical misses block here instead of
    /// recomputing, then serve the leader's cached entry.
    flights: Mutex<HashMap<(ExploratoryQuery, RankerSpec), Arc<Flight>>>,
    /// Open fusion sweeps, one per exploratory query: word-estimator
    /// Monte Carlo jobs arriving while a sweep over the same resident
    /// CSR is running join its lane groups instead of propagating
    /// alone.
    sweeps: Mutex<HashMap<ExploratoryQuery, Arc<Sweep>>>,
    /// Structural planner features per integrated query, so repeat
    /// `auto` requests skip re-extraction (and re-integration)
    /// entirely. Same capacity policy as the other cache layers.
    features: ShardedLru<ExploratoryQuery, GraphFeatures>,
    /// Theorem 3.2 compose hints of the resident schema, consulted
    /// for the planner's schema-reducibility feature (see
    /// [`QueryEngine::with_hints`]).
    hints: ComposeHints,
    /// The calibrated planner cost model. A plain mutex: planning
    /// copies the (small, `Copy`) model out; only the rare
    /// recalibration writes.
    planner: Mutex<CostModel>,
    /// Planned executions since startup, driving the periodic
    /// recalibration cadence ([`RECALIBRATION_INTERVAL`]).
    planned: AtomicU64,
}

/// A single-flight entry: followers block on `done` until the leader
/// finishes (successfully or not) and re-check the result cache.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("flight");
        while !*done {
            done = self.cv.wait(done).expect("flight");
        }
    }

    fn signal(&self) {
        *self.done.lock().expect("flight") = true;
        self.cv.notify_all();
    }
}

/// One fused sweep over a query's resident CSR. The leader drives
/// [`run_fused`]; joiners enqueue a [`FusedJob`] and block until their
/// result lands (or the sweep closes without serving them, in which
/// case they retry — typically becoming the next leader).
///
/// Lock order: the engine's `sweeps` map lock is always taken before
/// a sweep's `state` lock; the sweep callbacks take only `state`.
struct Sweep {
    state: Mutex<SweepState>,
    cv: Condvar,
}

struct SweepState {
    /// New jobs may still join. Cleared as soon as the leader's own
    /// job completes, so a leader never drives other queries'
    /// batches longer than its own request lives.
    accepting: bool,
    /// The sweep has returned; queued-but-unserved jobs must retry.
    closed: bool,
    /// Next joiner id (the leader owns id 0).
    next_id: u64,
    /// Jobs waiting to be dealt into lanes, drained by the sweep's
    /// `source` callback before every block.
    queue: Vec<(u64, FusedJob)>,
    /// Finished joiner results, keyed by id.
    results: HashMap<u64, Result<FusedOutcome, biorank_rank::Error>>,
}

impl Sweep {
    fn new() -> Self {
        Sweep {
            state: Mutex::new(SweepState {
                accepting: true,
                closed: false,
                next_id: 1,
                queue: Vec::new(),
                results: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }
}

/// Default number of cached integration results / rankings.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

/// Default shard count for the engine caches.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// RNG-stream count for `parallel` traversal-MC requests. Pinned (not
/// derived from the host CPU count) so a parallel request ranks
/// bit-identically on every machine and on every thread budget; only
/// the scheduling of the chunks follows the hardware.
pub const PARALLEL_MC_CHUNKS: usize = 8;

/// Lane width of the service's word engines and fusion sweeps: every
/// propagation block carries 8 × 64 trials. Width never changes
/// results — batch `b` draws from the stream keyed `(seed, b)`
/// regardless of lane placement — so this is purely a throughput
/// knob.
pub const FUSION_LANES: usize = 8;

/// Planned executions between automatic cost-model recalibrations
/// ([`QueryEngine::recalibrate`]). Small enough that a warm server
/// converges toward its own hardware within the first minutes of
/// traffic, large enough that calibration cost is noise.
pub const RECALIBRATION_INTERVAL: u64 = 64;

/// The outcome of resolving one `estimator: auto` request: the
/// rewritten request that actually executes, the plan to echo, and
/// whether feature extraction had to run integration itself (so the
/// response's `cached_graph` can stay truthful).
struct Planned {
    request: QueryRequest,
    plan: Plan,
    fresh_graph: bool,
}

impl QueryEngine {
    /// Creates an engine over a mediator with the default cache size.
    pub fn new(mediator: Mediator) -> Self {
        Self::with_cache_capacity(mediator, DEFAULT_CACHE_CAPACITY)
    }

    /// Creates an engine with an explicit per-layer cache capacity.
    /// Capacity 0 disables caching (every request recomputes) — the
    /// benchmark baseline.
    pub fn with_cache_capacity(mediator: Mediator, capacity: usize) -> Self {
        QueryEngine {
            mediator,
            graphs: ShardedLru::new(capacity, DEFAULT_CACHE_SHARDS),
            results: ShardedLru::new(capacity, DEFAULT_CACHE_SHARDS),
            metrics: Arc::new(MetricsRegistry::new()),
            warmed: Mutex::new(HashSet::new()),
            warmed_remaining: AtomicU64::new(0),
            flights: Mutex::new(HashMap::new()),
            sweeps: Mutex::new(HashMap::new()),
            features: ShardedLru::new(capacity, DEFAULT_CACHE_SHARDS),
            hints: ComposeHints::none(),
            planner: Mutex::new(CostModel::default()),
            planned: AtomicU64::new(0),
        }
    }

    /// This engine with the schema's Theorem 3.2 compose hints, so
    /// the planner can recognize schema-reducible queries and offer
    /// the closed solution. Engines built without hints still plan —
    /// the exact strategy is then only eligible on instance-trivial
    /// reduction residuals.
    pub fn with_hints(mut self, hints: ComposeHints) -> Self {
        self.hints = hints;
        self
    }

    /// A copy of the planner's current (possibly calibrated) cost
    /// model.
    pub fn planner_model(&self) -> CostModel {
        *self.planner.lock().expect("planner model")
    }

    /// The wrapped mediator.
    pub fn mediator(&self) -> &Mediator {
        &self.mediator
    }

    /// This engine's metrics registry: per-stage timing histograms,
    /// per-estimator latency/count series, `trials_used`, and
    /// cache/warm-up counters. Engine-scoped on purpose — per-world
    /// metrics die with the engine at swap, exactly like its caches.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time copy of this engine's metrics. Cache counters
    /// (`cache.{graphs,results}.{hits,misses,entries,inserts,rejected}`)
    /// are folded in as gauges at snapshot time, so every scrape —
    /// including the final one a server takes at shutdown — carries
    /// the hit-rate numbers without a separate log line.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let stats = self.stats();
        for (layer, c) in [("graphs", stats.graphs), ("results", stats.results)] {
            for (field, value) in [
                ("hits", c.hits),
                ("misses", c.misses),
                ("entries", c.entries as u64),
                ("inserts", c.inserts),
                ("rejected", c.rejected),
            ] {
                self.metrics
                    .gauge(&format!("cache.{layer}.{field}"))
                    .set(value);
            }
        }
        self.metrics.snapshot()
    }

    /// Executes one request, consulting both cache layers.
    ///
    /// The result cache holds **one entry per `(query, spec)`** —
    /// `top` and `certify_top` are not key dimensions. A lookup hits
    /// when the stored entry's certification covers what the request
    /// needs ([`RankedResult::covers`]); a request needing more (a
    /// deeper certified prefix, or the fully certified ranking)
    /// recomputes, and the fresh result **replaces** the entry only
    /// when it serves at least everything the resident entry does
    /// ([`RankedResult::serves_at_least`]) — a run that certified
    /// less, or hit its ceiling uncertified, is returned to its
    /// caller but never evicts a stronger cached answer.
    pub fn execute(&self, req: &QueryRequest) -> Result<QueryResponse, Error> {
        let start = Instant::now();
        // The budget starts counting here: queueing upstream of the
        // engine (server queue, worker pool) is the caller's to
        // account — the server rewrites `deadline_ms` to the budget
        // remaining at submission.
        let deadline = req.deadline_ms.map(|ms| start + Duration::from_millis(ms));
        let mut trace = TraceRecorder::new(req.trace);
        // `estimator: auto` resolves into a concrete strategy *here*,
        // before the result key is formed — planned and explicit
        // requests for the chosen strategy share one cache entry and
        // execute identical code paths.
        let planned = self.resolve_plan(req, &mut trace)?;
        let req = planned.as_ref().map_or(req, |p| &p.request);
        let result_key = (req.query.clone(), req.spec.cache_key());
        let coverage = req.coverage();

        let mut response = loop {
            let (hit, cache_ns) = trace.time("cache", || {
                self.results
                    .get(&result_key)
                    .filter(|ranked| ranked.covers(coverage))
            });
            self.metrics.histogram("stage_ns.cache").record(cache_ns);

            if let Some(ranked) = hit {
                self.note_warm_hit(&result_key);
                let (response, serialize_ns) = trace.time("serialize", || {
                    Self::assemble(&ranked, req.top, true, true, start)
                });
                self.metrics
                    .histogram("stage_ns.serialize")
                    .record(serialize_ns);
                self.finish_query(req, start, true);
                break response;
            }

            // Single-flight: one computation per result key at a time.
            // A follower blocks on the resident leader, then loops to
            // serve the entry the leader just cached; if the leader
            // failed — or certified less coverage than this request
            // needs — the re-check misses and this request becomes
            // the next leader.
            let role = {
                let mut flights = self.flights.lock().expect("flight map");
                match flights.get(&result_key) {
                    Some(leader) => {
                        self.metrics.counter("queries.coalesced").inc();
                        Err(Arc::clone(leader))
                    }
                    None => {
                        let flight = Arc::new(Flight::new());
                        flights.insert(result_key.clone(), Arc::clone(&flight));
                        Ok(flight)
                    }
                }
            };
            match role {
                Err(leader) => {
                    let waited = Instant::now();
                    leader.wait();
                    trace.span("coalesce", waited.elapsed().as_nanos() as u64);
                }
                Ok(flight) => {
                    let out = self.compute(req, &result_key, coverage, &mut trace, start, deadline);
                    self.flights.lock().expect("flight map").remove(&result_key);
                    flight.signal();
                    break out?;
                }
            }
        };
        if let Some(planned) = &planned {
            self.note_planned(&mut response, planned);
        }
        response.trace = trace.into_spans();
        Ok(response)
    }

    /// The miss path of [`execute`](QueryEngine::execute), run under
    /// single-flight leadership of `result_key`: integrate (through
    /// the graph cache), rank — joining the query's fusion sweep for
    /// Monte Carlo word jobs — record stage metrics, and publish to
    /// the result cache.
    fn compute(
        &self,
        req: &QueryRequest,
        result_key: &(ExploratoryQuery, RankerSpec),
        coverage: Coverage,
        trace: &mut TraceRecorder,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<QueryResponse, Error> {
        let (graph, graph_ns) = trace.time("graph", || -> Result<_, Error> {
            match self.graphs.get(&req.query) {
                Some(hit) => Ok((hit, true)),
                None => {
                    let computed = Arc::new(self.mediator.execute(&req.query)?);
                    self.graphs.insert(req.query.clone(), computed.clone());
                    Ok((computed, false))
                }
            }
        });
        self.metrics.histogram("stage_ns.graph").record(graph_ns);
        let (integration, cached_graph) = graph?;

        // The scoring stage splits into "estimate" (estimator batches,
        // plus ranking assembly) and "certify" (the adaptive runner's
        // between-batch gap polls; zero for fixed and deterministic
        // runs) — certify is measured inside the run, estimate is the
        // remainder, so the two always sum to the full scoring time.
        let rank_start = Instant::now();
        let (ranked, certify_ns) =
            self.rank_resident(&integration, &req.query, &req.spec, coverage, deadline)?;
        let estimate_ns = (rank_start.elapsed().as_nanos() as u64).saturating_sub(certify_ns);
        trace.span("estimate", estimate_ns);
        trace.span("certify", certify_ns);
        self.metrics
            .histogram("stage_ns.estimate")
            .record(estimate_ns);
        self.metrics
            .histogram("stage_ns.certify")
            .record(certify_ns);
        if let Some(cert) = &ranked.certificate {
            self.metrics
                .histogram("trials_used")
                .record(u64::from(cert.trials_used));
            self.metrics
                .counter(if cert.certified {
                    "certified"
                } else {
                    "uncertified"
                })
                .inc();
        }

        let ranked = Arc::new(ranked);
        let ((), insert_ns) = trace.time("insert", || {
            self.results
                .insert_if(result_key.clone(), ranked.clone(), |resident| {
                    ranked.serves_at_least(resident)
                })
        });
        self.metrics.histogram("stage_ns.insert").record(insert_ns);

        let (response, serialize_ns) = trace.time("serialize", || {
            Self::assemble(&ranked, req.top, cached_graph, false, start)
        });
        self.metrics
            .histogram("stage_ns.serialize")
            .record(serialize_ns);
        self.finish_query(req, start, false);
        Ok(response)
    }

    /// Per-request counters and the per-estimator latency series,
    /// recorded on every completed execution, hit or computed.
    fn finish_query(&self, req: &QueryRequest, start: Instant, cached: bool) {
        self.metrics.counter("queries").inc();
        self.metrics
            .counter(if cached {
                "queries.cached"
            } else {
                "queries.computed"
            })
            .inc();
        self.metrics.counter(req.spec.count_metric()).inc();
        self.metrics
            .histogram(req.spec.latency_metric())
            .record(start.elapsed().as_nanos() as u64);
    }

    /// Counts the first client hit on each warm-up-populated key
    /// (`warm.hits`). Lock-free once the warm set has drained.
    fn note_warm_hit(&self, result_key: &(ExploratoryQuery, RankerSpec)) {
        if self.warmed_remaining.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut warmed = self.warmed.lock().expect("warmed keys");
        if warmed.remove(result_key) {
            self.warmed_remaining
                .store(warmed.len() as u64, Ordering::Relaxed);
            self.metrics.counter("warm.hits").inc();
        }
    }

    /// Resolves an `estimator: auto` request into the concrete
    /// strategy the planner chooses, or `None` when the request
    /// doesn't ask for planning. Bumps `planner.chosen.<strategy>` and
    /// `planner.fallback`, and records the whole resolution as the
    /// `plan` trace span.
    fn resolve_plan(
        &self,
        req: &QueryRequest,
        trace: &mut TraceRecorder,
    ) -> Result<Option<Planned>, Error> {
        if req.spec.estimator != Some(Estimator::Auto) || !req.spec.method.is_plannable() {
            // Non-plannable methods ignore the estimator field
            // everywhere (cache keys included), so `auto` on them
            // needs no rewriting at all.
            return Ok(None);
        }
        let (planned, plan_ns) = trace.time("plan", || -> Result<_, Error> {
            let (graph, fresh_graph) = self.plan_features(&req.query)?;
            let features = PlanFeatures::for_request(
                graph,
                match req.coverage() {
                    Coverage::TopK(k) => Some(k as u32),
                    Coverage::Full => None,
                },
                Self::trials_policy(req.spec.trials),
            );
            let model = self.planner_model();
            let plan = biorank_rank::plan(&features, &model);
            self.metrics.counter(chosen_metric(plan.strategy)).inc();
            if plan.fallback {
                self.metrics.counter("planner.fallback").inc();
            }
            let mut request = req.clone();
            request.spec = spec_for_strategy(plan.strategy, &req.spec);
            Ok(Planned {
                request,
                plan,
                fresh_graph,
            })
        });
        self.metrics.histogram("stage_ns.plan").record(plan_ns);
        planned.map(Some)
    }

    /// The planner features of one query's integrated graph, through
    /// the feature cache (and, on a miss, the graph cache). The bool
    /// reports whether this call had to run integration itself.
    fn plan_features(&self, query: &ExploratoryQuery) -> Result<(GraphFeatures, bool), Error> {
        if let Some(features) = self.features.get(query) {
            return Ok((features, false));
        }
        let (integration, fresh) = match self.graphs.get(query) {
            Some(hit) => (hit, false),
            None => {
                let computed = Arc::new(self.mediator.execute(query)?);
                self.graphs.insert(query.clone(), computed.clone());
                (computed, true)
            }
        };
        let features = GraphFeatures::extract(&integration.query)
            .with_schema_reducible(self.schema_reducible(query));
        self.features.insert(query.clone(), features);
        Ok((features, fresh))
    }

    /// Theorem 3.2 verdict for one query's schema shape under this
    /// engine's compose hints (see [`query_schema_reducible`]).
    fn schema_reducible(&self, query: &ExploratoryQuery) -> bool {
        query_schema_reducible(self.mediator.schema(), &self.hints, query)
    }

    /// Post-execution bookkeeping of a planned request: patches the
    /// response's provenance flags, attaches the plan echo, and — for
    /// computed (non-cache-hit) executions — feeds the
    /// observed/predicted latency pair into the calibration
    /// histograms, recalibrating every [`RECALIBRATION_INTERVAL`]
    /// planned computations.
    fn note_planned(&self, response: &mut QueryResponse, planned: &Planned) {
        if planned.fresh_graph {
            response.cached_graph = false;
        }
        if !response.cached_scores {
            let strategy = planned.plan.strategy;
            self.metrics
                .histogram(observed_metric(strategy))
                .record(response.micros.saturating_mul(1_000));
            self.metrics
                .histogram(predicted_metric(strategy))
                .record(planned.plan.predicted_ns);
            let planned_so_far = self.planned.fetch_add(1, Ordering::Relaxed) + 1;
            if planned_so_far % RECALIBRATION_INTERVAL == 0 {
                self.recalibrate();
            }
        }
        response.plan = Some(planned.plan);
    }

    /// One cost-model calibration round against this engine's current
    /// metrics. Returns `true` (and bumps `planner.recalibrations`)
    /// when any model constant moved. Runs automatically every
    /// [`RECALIBRATION_INTERVAL`] planned computations; public so
    /// operators and tests can force a round.
    pub fn recalibrate(&self) -> bool {
        let snapshot = self.metrics.snapshot();
        self.recalibrate_from(&snapshot)
    }

    /// Calibration from an explicit snapshot. Deterministic: the same
    /// snapshot applied to the same model always yields the same
    /// blended model (see [`CostModel::calibrate`]).
    pub fn recalibrate_from(&self, snapshot: &MetricsSnapshot) -> bool {
        let input = Self::calibration_input(snapshot);
        let moved = self
            .planner
            .lock()
            .expect("planner model")
            .calibrate(&input);
        if moved {
            self.metrics.counter("planner.recalibrations").inc();
        }
        moved
    }

    /// Distills a metrics snapshot into the planner's calibration
    /// shape: per-strategy observed/predicted latency means from the
    /// `planner.{observed,predicted}_ns.*` histograms, plus the mean
    /// adaptive trial fraction from `trials_used` (normalized against
    /// the default ceiling every adaptive client inherits).
    fn calibration_input(snapshot: &MetricsSnapshot) -> CalibrationInput {
        let mut input = CalibrationInput::default();
        for strategy in Strategy::ALL {
            let observed = snapshot.histogram(observed_metric(strategy));
            let predicted = snapshot.histogram(predicted_metric(strategy));
            if observed.count > 0 && predicted.count > 0 {
                input.observed[strategy.index()] = Some(StrategyTelemetry {
                    observed_mean_ns: observed.mean(),
                    predicted_mean_ns: predicted.mean(),
                    samples: observed.count,
                });
            }
        }
        let trials = snapshot.histogram("trials_used");
        if trials.count >= biorank_rank::planner::MIN_CALIBRATION_SAMPLES {
            input.mean_trials_frac = Some(trials.mean() / f64::from(RankerSpec::DEFAULT_TRIALS));
        }
        input
    }

    /// The planner's view of one trial policy.
    fn trials_policy(trials: Trials) -> TrialsPolicy {
        match trials {
            Trials::Fixed(n) => TrialsPolicy::Fixed(n),
            Trials::Adaptive(cfg) => TrialsPolicy::Adaptive {
                max_trials: cfg.max_trials,
            },
        }
    }

    /// Integrates and ranks without touching the caches (used by the
    /// cache-coherence test to cross-check cached responses). `auto`
    /// requests are planned here too — against the same live model,
    /// so an uncached cross-check sees the same strategy `execute`
    /// resolves to.
    pub fn execute_uncached(&self, req: &QueryRequest) -> Result<QueryResponse, Error> {
        let start = Instant::now();
        let integration = self.mediator.execute(&req.query)?;
        let mut spec = req.spec;
        let mut plan_echo = None;
        if spec.estimator == Some(Estimator::Auto) && spec.method.is_plannable() {
            let features = PlanFeatures::for_request(
                GraphFeatures::extract(&integration.query)
                    .with_schema_reducible(self.schema_reducible(&req.query)),
                match req.coverage() {
                    Coverage::TopK(k) => Some(k as u32),
                    Coverage::Full => None,
                },
                Self::trials_policy(spec.trials),
            );
            let plan = biorank_rank::plan(&features, &self.planner_model());
            spec = spec_for_strategy(plan.strategy, &req.spec);
            plan_echo = Some(plan);
        }
        let resolved = QueryRequest {
            spec,
            ..req.clone()
        };
        let (ranked, _) = Self::rank(
            &integration,
            &resolved.query,
            &spec,
            resolved.coverage(),
            None,
        )?;
        let mut response = Self::assemble(&ranked, req.top, false, false, start);
        response.plan = plan_echo;
        Ok(response)
    }

    /// Scores one resident-world request. Stochastic word-estimator
    /// jobs — fixed and adaptive alike — are routed through the
    /// query's fusion sweep, sharing [`FUSION_LANES`]-wide
    /// propagation blocks with any concurrent word job on the same
    /// integration; everything else delegates to the stateless
    /// [`rank`](Self::rank). Either path produces byte-identical
    /// results: fusion only changes which sweep executes a batch,
    /// never what the batch draws.
    fn rank_resident(
        &self,
        integration: &IntegrationResult,
        query: &ExploratoryQuery,
        spec: &RankerSpec,
        coverage: Coverage,
        deadline: Option<Instant>,
    ) -> Result<(RankedResult, u64), Error> {
        if spec.method != Method::TraversalMc || spec.resolved_estimator() != Estimator::Word {
            return Self::rank(integration, query, spec, coverage, deadline);
        }
        let job = FusedJob {
            seed: spec.effective_seed(query),
            trials: match spec.trials {
                Trials::Fixed(n) => n,
                Trials::Adaptive(cfg) => cfg.max_trials,
            },
            policy: match spec.trials {
                Trials::Fixed(_) => FusedPolicy::Fixed,
                Trials::Adaptive(cfg) => FusedPolicy::Adaptive {
                    epsilon: cfg.epsilon,
                    delta: cfg.delta,
                    top_k: match coverage {
                        Coverage::TopK(k) => Some(k),
                        Coverage::Full => None,
                    },
                },
            },
            deadline,
        };
        let outcome = self.run_in_sweep(query, &integration.query, job)?;
        Ok((
            Self::ranked_result(integration, &outcome.scores, outcome.certificate),
            outcome.poll_nanos,
        ))
    }

    /// Executes one word job inside the query's fusion sweep: join the
    /// open sweep if one is accepting, otherwise become the leader and
    /// drive [`run_fused`] — coalescing any jobs that arrive while it
    /// runs. A job queued into a sweep that closes before dealing it
    /// simply retries (becoming the next leader); [`run_fused`]
    /// guarantees every *dealt* job completes through the sink.
    fn run_in_sweep(
        &self,
        query: &ExploratoryQuery,
        q: &biorank_graph::QueryGraph,
        job: FusedJob,
    ) -> Result<FusedOutcome, Error> {
        loop {
            // Ok(sweep) = lead it; Err((sweep, Some(id))) = enqueued as
            // joiner `id`; Err((sweep, None)) = sweep is draining, wait
            // for it to close and retry. Map lock before state lock,
            // always.
            let role = {
                let mut sweeps = self.sweeps.lock().expect("sweep map");
                match sweeps.get(query) {
                    Some(sweep) => {
                        let mut state = sweep.state.lock().expect("sweep state");
                        if state.accepting {
                            let id = state.next_id;
                            state.next_id += 1;
                            state.queue.push((id, job));
                            Err((Arc::clone(sweep), Some(id)))
                        } else {
                            Err((Arc::clone(sweep), None))
                        }
                    }
                    None => {
                        let sweep = Arc::new(Sweep::new());
                        sweeps.insert(query.clone(), Arc::clone(&sweep));
                        Ok(sweep)
                    }
                }
            };
            match role {
                Ok(sweep) => return self.lead_sweep(query, q, &sweep, job),
                Err((sweep, joined)) => {
                    let mut state = sweep.state.lock().expect("sweep state");
                    loop {
                        if let Some(id) = joined {
                            if let Some(res) = state.results.remove(&id) {
                                return res.map_err(Error::Rank);
                            }
                        }
                        if state.closed {
                            break; // never dealt — retry from the top
                        }
                        state = sweep.cv.wait(state).expect("sweep state");
                    }
                }
            }
        }
    }

    /// Drives one fused sweep to completion: the leader's own job
    /// starts it, the sweep's source callback admits queued joiners
    /// before every block, and its sink hands each joiner's result
    /// back through the sweep. Admission stops the moment the
    /// leader's own job finishes (already-dealt joiners still run to
    /// completion), and the sweep is closed and unpublished before
    /// this returns.
    fn lead_sweep(
        &self,
        query: &ExploratoryQuery,
        q: &biorank_graph::QueryGraph,
        sweep: &Arc<Sweep>,
        job: FusedJob,
    ) -> Result<FusedOutcome, Error> {
        const LEADER_ID: u64 = 0;
        let batches = self.metrics.counter("fusion.batches");
        let lanes_used = self.metrics.counter("fusion.lanes_used");
        let width = self.metrics.histogram("fusion_width");
        let mut own = None;
        run_fused::<FUSION_LANES>(
            q,
            vec![(LEADER_ID, job)],
            || {
                let mut state = sweep.state.lock().expect("sweep state");
                if state.accepting {
                    std::mem::take(&mut state.queue)
                } else {
                    Vec::new()
                }
            },
            |id, res| {
                if id == LEADER_ID {
                    sweep.state.lock().expect("sweep state").accepting = false;
                    own = Some(res);
                } else {
                    let mut state = sweep.state.lock().expect("sweep state");
                    state.results.insert(id, res);
                    drop(state);
                    sweep.cv.notify_all();
                }
            },
            |stats| {
                // Fault-injection hook: one relaxed load per batch
                // when no stall is installed. Sitting in the observe
                // callback keeps it between batches, where a stalled
                // job's deadline can fire without perturbing the
                // sample schedule of jobs that finish on time.
                crate::admission::maybe_stall_batch();
                batches.inc();
                lanes_used.add(u64::from(stats.lanes));
                width.record(u64::from(stats.jobs));
            },
        );
        {
            let mut sweeps = self.sweeps.lock().expect("sweep map");
            if sweeps.get(query).is_some_and(|s| Arc::ptr_eq(s, sweep)) {
                sweeps.remove(query);
            }
            let mut state = sweep.state.lock().expect("sweep state");
            state.accepting = false;
            state.closed = true;
        }
        sweep.cv.notify_all();
        own.expect("leader's job completes before its sweep returns")
            .map_err(Error::Rank)
    }

    /// Turns a score vector (plus optional certificate) into the
    /// cached [`RankedResult`] form, resolving answer keys and labels
    /// against the integration.
    fn ranked_result(
        integration: &IntegrationResult,
        scores: &Scores,
        certificate: Option<Certificate>,
    ) -> RankedResult {
        let ranking = Ranking::rank(scores.answers(&integration.query));
        RankedResult {
            answers: ranking
                .entries()
                .iter()
                .map(|e| RankedAnswer {
                    key: integration.answer_key(e.node).unwrap_or("?").to_string(),
                    label: integration.label(e.node).to_string(),
                    score: e.score,
                    rank_lo: e.rank_lo,
                    rank_hi: e.rank_hi,
                })
                .collect(),
            certificate,
        }
    }

    /// Scores and ranks one request, returning the result plus the
    /// nanoseconds its adaptive runner spent in certification polls
    /// (zero for fixed and deterministic executions).
    fn rank(
        integration: &IntegrationResult,
        query: &ExploratoryQuery,
        spec: &RankerSpec,
        coverage: Coverage,
        deadline: Option<Instant>,
    ) -> Result<(RankedResult, u64), Error> {
        let q = &integration.query;
        let mut certify_nanos = 0u64;
        let (scores, certificate) = match spec.trials {
            // Deterministic methods never sample, so the trial policy
            // (fixed or adaptive) is irrelevant to them.
            Trials::Adaptive(cfg) if spec.method.is_stochastic() => {
                let outcome = run_adaptive_with_deadline(
                    spec.method,
                    spec.resolved_estimator(),
                    cfg,
                    spec.effective_seed(query),
                    match coverage {
                        Coverage::TopK(k) => Some(k),
                        Coverage::Full => None,
                    },
                    deadline,
                    q,
                )?;
                certify_nanos = outcome.poll_nanos;
                (outcome.scores, Some(outcome.certificate))
            }
            Trials::Fixed(trials) if spec.method == Method::TraversalMc && spec.parallel => {
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let scores = match spec.resolved_estimator() {
                    // Traversal: chunk count pinned for determinism,
                    // thread budget following the hardware.
                    Estimator::Traversal => TraversalMc::new(trials, spec.effective_seed(query))
                        .score_chunked(q, PARALLEL_MC_CHUNKS, threads.min(PARALLEL_MC_CHUNKS))?,
                    // Word: every thread split is bit-identical, so the
                    // hardware budget needs no pinning at all. (`auto`
                    // is resolved before execution; unresolved specs
                    // run the word engine, matching `build`.)
                    Estimator::Word | Estimator::Auto => {
                        WordMc::<FUSION_LANES>::wide(trials, spec.effective_seed(query))
                            .score_parallel(q, threads)?
                    }
                };
                (scores, None)
            }
            _ => (spec.build(query).score(q)?, None),
        };
        Ok((
            Self::ranked_result(integration, &scores, certificate),
            certify_nanos,
        ))
    }

    fn assemble(
        ranked: &RankedResult,
        top: Option<usize>,
        cached_graph: bool,
        cached_scores: bool,
        start: Instant,
    ) -> QueryResponse {
        let total_answers = ranked.answers.len();
        let take = top.unwrap_or(total_answers).min(total_answers);
        QueryResponse {
            answers: ranked.answers[..take].to_vec(),
            total_answers,
            certificate: ranked.certificate,
            cached_graph,
            cached_scores,
            micros: start.elapsed().as_micros() as u64,
            trace: Vec::new(),
            plan: None,
        }
    }

    /// Cache counters for observability (`stats` responses, logs).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            graphs: self.graphs.stats(),
            results: self.results.stats(),
        }
    }

    /// Up to `limit` hottest result-cache keys, approximately
    /// most-recently-used first (per-shard MRU lists, interleaved),
    /// each tagged with the certified top-k of its stored entry
    /// (`None` = fully covered: fixed, deterministic, or
    /// full-certified adaptive). These are the queries a replacement
    /// engine should answer fast from its first second — see
    /// [`QueryEngine::warm`].
    pub fn hot_result_keys(
        &self,
        limit: usize,
    ) -> Vec<(ExploratoryQuery, RankerSpec, Option<u32>)> {
        self.results
            .hot_entries(limit)
            .into_iter()
            .map(|((query, spec), ranked)| {
                let k = ranked.certificate.and_then(|c| c.mode.certified_k());
                (query, spec, k)
            })
            .collect()
    }

    /// Replays result-cache keys (typically another engine's
    /// [`hot_result_keys`](QueryEngine::hot_result_keys)) against this
    /// engine, populating both cache layers with **freshly computed**
    /// entries. A key tagged with a certified top-k is replayed as the
    /// same top-k-certified request, so warming costs what the hot
    /// queries cost — never the full-certification trial budget a
    /// top-k client avoided. Returns how many keys executed
    /// successfully; failures (e.g. a query the new world cannot
    /// answer) are skipped — warming is best-effort by design.
    pub fn warm(&self, keys: &[(ExploratoryQuery, RankerSpec, Option<u32>)]) -> usize {
        let mut replayed = Vec::new();
        for (query, spec, k) in keys {
            let ok = self
                .execute(&QueryRequest {
                    query: query.clone(),
                    spec: *spec,
                    top: Some(k.map(|k| k as usize).unwrap_or(0)),
                    certify_top: k.is_some(),
                    world: None,
                    trace: false,
                    deadline_ms: None,
                })
                .is_ok();
            if ok {
                self.metrics.counter("warm.replayed").inc();
                replayed.push((query.clone(), spec.cache_key()));
            } else {
                self.metrics.counter("warm.failed").inc();
            }
        }
        let count = replayed.len();
        if count > 0 {
            let mut warmed = self.warmed.lock().expect("warmed keys");
            warmed.extend(replayed);
            self.warmed_remaining
                .store(warmed.len() as u64, Ordering::Relaxed);
        }
        count
    }

    /// Both cache layers' entries, most-recently-used first — the raw
    /// material of a durable snapshot (see `crate::persist`). The
    /// `Arc`s are clones; exporting never blocks the query path beyond
    /// the per-shard locks a normal lookup takes.
    #[allow(clippy::type_complexity)]
    pub fn export_cache(
        &self,
    ) -> (
        Vec<(ExploratoryQuery, Arc<IntegrationResult>)>,
        Vec<((ExploratoryQuery, RankerSpec), Arc<RankedResult>)>,
    ) {
        (
            self.graphs.hot_entries(usize::MAX),
            self.results.hot_entries(usize::MAX),
        )
    }

    /// Replays exported cache entries (see
    /// [`export_cache`](QueryEngine::export_cache)) into this engine
    /// **verbatim** — no recomputation, so a snapshot restore is
    /// bit-identical by construction where [`QueryEngine::warm`]
    /// merely re-runs the same requests. Entries arrive MRU-first and
    /// are inserted in reverse, so the restored LRU order matches the
    /// exported one. Every imported result entry counts on
    /// `warm.replayed` and joins the warm set (first client hit counts
    /// on `warm.hits`), exactly like a swap warm-up. Returns the
    /// number of result entries imported.
    #[allow(clippy::type_complexity)]
    pub fn import_cache(
        &self,
        graphs: Vec<(ExploratoryQuery, Arc<IntegrationResult>)>,
        results: Vec<((ExploratoryQuery, RankerSpec), Arc<RankedResult>)>,
    ) -> usize {
        for (query, res) in graphs.into_iter().rev() {
            self.graphs.insert(query, res);
        }
        let mut keys = Vec::new();
        for ((query, spec), ranked) in results.into_iter().rev() {
            self.metrics.counter("warm.replayed").inc();
            keys.push((query.clone(), spec));
            self.results.insert((query, spec), ranked);
        }
        let count = keys.len();
        if count > 0 {
            let mut warmed = self.warmed.lock().expect("warmed keys");
            warmed.extend(keys);
            self.warmed_remaining
                .store(warmed.len() as u64, Ordering::Relaxed);
        }
        count
    }
}

/// The explicit [`RankerSpec`] one planner strategy maps onto:
/// `trials`, `seed`, and `parallel` survive verbatim, only the
/// `(method, estimator)` pair is rewritten — so a planned execution
/// is byte-identical to a client naming the strategy outright.
/// Shared by [`QueryEngine`] and the CLI's local `--estimator auto`
/// path.
pub fn spec_for_strategy(strategy: Strategy, spec: &RankerSpec) -> RankerSpec {
    let (method, estimator) = match strategy {
        Strategy::Exact => (Method::Exact, None),
        Strategy::ReducedMc => (Method::Reliability, None),
        Strategy::WordMc => (Method::TraversalMc, Some(Estimator::Word)),
        Strategy::TraversalMc => (Method::TraversalMc, Some(Estimator::Traversal)),
    };
    RankerSpec {
        method,
        estimator,
        ..*spec
    }
}

/// Theorem 3.2 verdict for one query's schema shape: every output
/// set must check out reducible from the query root under the given
/// compose hints. Conservative by design — unknown entity sets (or
/// empty hints) read as irreducible, which only costs the planner the
/// exact strategy. Shared by [`QueryEngine`] and the CLI's local
/// `--estimator auto` path.
pub fn query_schema_reducible(
    schema: &Schema,
    hints: &ComposeHints,
    query: &ExploratoryQuery,
) -> bool {
    let Some(root) = schema
        .entity_set_by_name("Query")
        .or_else(|| schema.entity_set_by_name(&query.input))
    else {
        return false;
    };
    !query.outputs.is_empty()
        && query.outputs.iter().all(|output| {
            schema.entity_set_by_name(output).is_some_and(|answers| {
                check_query_reducible(schema, root, answers, hints).is_reducible()
            })
        })
}

/// `planner.chosen.<strategy>` counter name, statically interned.
fn chosen_metric(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Exact => "planner.chosen.exact",
        Strategy::ReducedMc => "planner.chosen.reduced",
        Strategy::WordMc => "planner.chosen.word",
        Strategy::TraversalMc => "planner.chosen.traversal",
    }
}

/// `planner.observed_ns.<strategy>` histogram name.
fn observed_metric(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Exact => "planner.observed_ns.exact",
        Strategy::ReducedMc => "planner.observed_ns.reduced",
        Strategy::WordMc => "planner.observed_ns.word",
        Strategy::TraversalMc => "planner.observed_ns.traversal",
    }
}

/// `planner.predicted_ns.<strategy>` histogram name.
fn predicted_metric(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Exact => "planner.predicted_ns.exact",
        Strategy::ReducedMc => "planner.predicted_ns.reduced",
        Strategy::WordMc => "planner.predicted_ns.word",
        Strategy::TraversalMc => "planner.predicted_ns.traversal",
    }
}

/// Runs one adaptive Monte Carlo execution: the single place the
/// `(method, estimator) → engine` dispatch lives, shared by
/// [`QueryEngine`] and the CLI's local-query path so the two can
/// never diverge. `method` must be stochastic; `estimator` selects
/// the engine for [`Method::TraversalMc`] and is ignored by
/// [`Method::Reliability`] (reduction + traversal batches). A
/// `top_k` restricts certification to that prefix and its boundary
/// gap ([`AdaptiveRunner::with_top_k`]).
pub fn run_adaptive(
    method: Method,
    estimator: Estimator,
    cfg: AdaptiveConfig,
    seed: u64,
    top_k: Option<usize>,
    q: &biorank_graph::QueryGraph,
) -> Result<biorank_rank::AdaptiveOutcome, biorank_rank::Error> {
    run_adaptive_with_deadline(method, estimator, cfg, seed, top_k, None, q)
}

/// [`run_adaptive`] under an optional execution deadline: the runner
/// aborts between batches with
/// [`biorank_rank::Error::DeadlineExceeded`] once `deadline` passes
/// (see [`AdaptiveRunner::with_deadline`]). A run that completes in
/// time is bit-identical to an undeadlined run.
pub fn run_adaptive_with_deadline(
    method: Method,
    estimator: Estimator,
    cfg: AdaptiveConfig,
    seed: u64,
    top_k: Option<usize>,
    deadline: Option<Instant>,
    q: &biorank_graph::QueryGraph,
) -> Result<biorank_rank::AdaptiveOutcome, biorank_rank::Error> {
    fn run<E: biorank_rank::Estimator>(
        engine: E,
        cfg: AdaptiveConfig,
        top_k: Option<usize>,
        deadline: Option<Instant>,
        q: &biorank_graph::QueryGraph,
    ) -> Result<biorank_rank::AdaptiveOutcome, biorank_rank::Error> {
        let mut runner = AdaptiveRunner::new(engine, cfg.epsilon, cfg.delta);
        if let Some(k) = top_k {
            runner = runner.with_top_k(k);
        }
        if let Some(d) = deadline {
            runner = runner.with_deadline(d);
        }
        runner.run(q)
    }
    match method {
        Method::Reliability => run(
            ReducedMc::new(cfg.max_trials, seed),
            cfg,
            top_k,
            deadline,
            q,
        ),
        Method::TraversalMc => match estimator {
            Estimator::Traversal => run(
                TraversalMc::new(cfg.max_trials, seed),
                cfg,
                top_k,
                deadline,
                q,
            ),
            // `auto` is resolved before execution; unresolved callers
            // get the word engine, matching `RankerSpec::build`.
            Estimator::Word | Estimator::Auto => run(
                WordMc::<FUSION_LANES>::wide(cfg.max_trials, seed),
                cfg,
                top_k,
                deadline,
                q,
            ),
        },
        // Deterministic methods have no trials to adapt; callers
        // filter on `Method::is_stochastic` first.
        _ => Err(biorank_rank::Error::InvalidParameter {
            name: "method",
            value: f64::NAN,
        }),
    }
}

// The whole point of the serving layer: the engine must be shareable
// across worker threads. Compile-time proof, so a future `Rc` or
// `RefCell` slipped into the mediator/ranker stack fails here, not in
// a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<Mediator>();
    assert_send_sync::<IntegrationResult>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parse_roundtrip() {
        for m in [
            Method::Reliability,
            Method::TraversalMc,
            Method::Propagation,
            Method::Diffusion,
            Method::InEdge,
            Method::PathCount,
            Method::Exact,
        ] {
            assert_eq!(Method::parse(m.wire_name()), Some(m));
        }
        assert_eq!(Method::parse("nope"), None);
        assert_eq!(Method::parse("RELIABILITY"), Some(Method::Reliability));
        assert_eq!(Method::parse("closed"), Some(Method::Exact));
        assert!(!Method::Exact.is_stochastic());
        assert!(!Method::Exact.is_plannable());
    }

    #[test]
    fn estimator_parse_roundtrip() {
        for e in [Estimator::Traversal, Estimator::Word, Estimator::Auto] {
            assert_eq!(Estimator::parse(e.wire_name()), Some(e));
        }
        assert_eq!(Estimator::parse("WORD"), Some(Estimator::Word));
        assert_eq!(Estimator::parse("nope"), None);
    }

    #[test]
    fn strategy_specs_are_explicitly_requestable() {
        // Every planner strategy must map onto a spec a client can
        // name outright — that's what makes a planned execution
        // byte-identical to an explicit request, and lets auto and
        // explicit traffic share cache entries.
        let base = RankerSpec {
            estimator: Some(Estimator::Auto),
            ..RankerSpec::new(Method::TraversalMc)
        };
        for (strategy, method, estimator) in [
            (Strategy::Exact, Method::Exact, None),
            (Strategy::ReducedMc, Method::Reliability, None),
            (Strategy::WordMc, Method::TraversalMc, Some(Estimator::Word)),
            (
                Strategy::TraversalMc,
                Method::TraversalMc,
                Some(Estimator::Traversal),
            ),
        ] {
            let resolved = spec_for_strategy(strategy, &base);
            assert_eq!(resolved.method, method);
            assert_eq!(resolved.estimator, estimator);
            // Trials/seed/parallel survive verbatim.
            assert_eq!(resolved.trials, base.trials);
            assert_eq!(resolved.seed, base.seed);
            assert_eq!(resolved.parallel, base.parallel);
            // And the resolved spec keys exactly like the explicit one.
            let explicit = RankerSpec {
                method,
                estimator,
                ..base
            };
            assert_eq!(resolved.cache_key(), explicit.cache_key());
        }
    }

    #[test]
    fn exact_cache_key_ignores_trials_and_seed() {
        let a = RankerSpec::new(Method::Exact);
        let b = RankerSpec {
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            seed: 99,
            parallel: true,
            estimator: Some(Estimator::Auto),
            ..a
        };
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn cache_key_resolves_estimators() {
        // Unspecified ≡ explicit traversal: one cache entry.
        let unspecified = RankerSpec::new(Method::TraversalMc);
        let traversal = RankerSpec {
            estimator: Some(Estimator::Traversal),
            ..unspecified
        };
        let word = RankerSpec {
            estimator: Some(Estimator::Word),
            ..unspecified
        };
        assert_eq!(unspecified.cache_key(), traversal.cache_key());
        // Word gets its own key: no cross-estimator cache hits.
        assert_ne!(unspecified.cache_key(), word.cache_key());
        // The word engine is thread-count-invariant, so `parallel`
        // normalizes away for it but not for traversal.
        let word_parallel = RankerSpec {
            parallel: true,
            ..word
        };
        assert_eq!(word.cache_key(), word_parallel.cache_key());
        let traversal_parallel = RankerSpec {
            parallel: true,
            ..traversal
        };
        assert_ne!(traversal.cache_key(), traversal_parallel.cache_key());
        // Methods that never consult the estimator fold it away.
        let pathc = RankerSpec {
            estimator: Some(Estimator::Word),
            ..RankerSpec::new(Method::PathCount)
        };
        assert_eq!(
            pathc.cache_key(),
            RankerSpec::new(Method::PathCount).cache_key()
        );
        let rel = RankerSpec {
            estimator: Some(Estimator::Word),
            ..RankerSpec::new(Method::Reliability)
        };
        assert_eq!(
            rel.cache_key(),
            RankerSpec::new(Method::Reliability).cache_key()
        );
    }

    #[test]
    fn cache_key_separates_trial_policies() {
        // Fixed and adaptive runs of the same query are different
        // sampling schedules: no shared entry, ever.
        let fixed = RankerSpec::new(Method::TraversalMc);
        let adaptive = RankerSpec {
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            ..fixed
        };
        assert_ne!(fixed.cache_key(), adaptive.cache_key());
        // Same policy → same key (bit-equal floats compare equal).
        let again = RankerSpec {
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            ..fixed
        };
        assert_eq!(adaptive.cache_key(), again.cache_key());
        // Different ε is a different policy.
        let tighter = RankerSpec {
            trials: Trials::Adaptive(AdaptiveConfig {
                epsilon: 0.01,
                ..AdaptiveConfig::default()
            }),
            ..fixed
        };
        assert_ne!(adaptive.cache_key(), tighter.cache_key());
        // The adaptive runner drives the canonical sequential
        // schedule, so `parallel` normalizes away under it...
        let adaptive_parallel = RankerSpec {
            parallel: true,
            ..adaptive
        };
        assert_eq!(adaptive.cache_key(), adaptive_parallel.cache_key());
        // ...and estimators still get distinct adaptive keys.
        let adaptive_word = RankerSpec {
            estimator: Some(Estimator::Word),
            ..adaptive
        };
        assert_ne!(adaptive.cache_key(), adaptive_word.cache_key());
        // Deterministic methods ignore the policy entirely.
        let pathc_adaptive = RankerSpec {
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            ..RankerSpec::new(Method::PathCount)
        };
        assert_eq!(
            pathc_adaptive.cache_key(),
            RankerSpec::new(Method::PathCount).cache_key()
        );
    }

    #[test]
    fn coverage_follows_certify_top_only_when_it_can_apply() {
        let adaptive = RankerSpec {
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            ..RankerSpec::new(Method::TraversalMc)
        };
        let req = QueryRequest::protein_functions("GALT", adaptive).certified_top(10);
        assert_eq!(req.coverage(), Coverage::TopK(10));
        // `top` alone shapes the response; it never narrows coverage.
        let mut shaped = QueryRequest::protein_functions("GALT", adaptive);
        shaped.top = Some(10);
        assert_eq!(shaped.coverage(), Coverage::Full);
        // certify_top without a top has no k to certify: full.
        let mut no_k = QueryRequest::protein_functions("GALT", adaptive);
        no_k.certify_top = true;
        assert_eq!(no_k.coverage(), Coverage::Full);
        // Fixed trials and deterministic methods run full schedules.
        let fixed = QueryRequest::protein_functions("GALT", RankerSpec::new(Method::TraversalMc))
            .certified_top(10);
        assert_eq!(fixed.coverage(), Coverage::Full);
        let pathc = QueryRequest::protein_functions(
            "GALT",
            RankerSpec {
                trials: Trials::Adaptive(AdaptiveConfig::default()),
                ..RankerSpec::new(Method::PathCount)
            },
        )
        .certified_top(10);
        assert_eq!(pathc.coverage(), Coverage::Full);
    }

    #[test]
    fn prefix_reuse_rule_on_stored_results() {
        let stored = |certificate: Option<Certificate>| RankedResult {
            answers: Vec::new(),
            certificate,
        };
        let cert = |mode, certified| Certificate {
            trials_used: 640,
            epsilon: 0.07,
            certified,
            mode,
        };
        // No certificate (fixed / deterministic): serves everything —
        // requests differing only in top/certify_top share the entry.
        let fixed = stored(None);
        assert!(fixed.covers(Coverage::Full));
        assert!(fixed.covers(Coverage::TopK(3)));
        // Certified full: serves any k'.
        let full = stored(Some(cert(CertificateMode::Full, true)));
        assert!(full.covers(Coverage::Full));
        assert!(full.covers(Coverage::TopK(100)));
        // Certified top-10: serves k' ≤ 10; deeper needs recompute.
        let top10 = stored(Some(cert(CertificateMode::TopK(10), true)));
        assert!(top10.covers(Coverage::TopK(10)));
        assert!(top10.covers(Coverage::TopK(3)));
        assert!(!top10.covers(Coverage::TopK(11)));
        assert!(!top10.covers(Coverage::Full));
        // Uncertified runs only answer the exact coverage they ran
        // under: a narrower top-k could still certify on its own.
        let full_u = stored(Some(cert(CertificateMode::Full, false)));
        assert!(full_u.covers(Coverage::Full));
        assert!(!full_u.covers(Coverage::TopK(3)));
        let top10_u = stored(Some(cert(CertificateMode::TopK(10), false)));
        assert!(top10_u.covers(Coverage::TopK(10)));
        assert!(!top10_u.covers(Coverage::TopK(3)));
        assert!(!top10_u.covers(Coverage::Full));
    }

    #[test]
    fn replacement_guard_never_lets_weaker_results_evict_stronger() {
        let stored = |certificate: Option<Certificate>| RankedResult {
            answers: Vec::new(),
            certificate,
        };
        let cert = |mode, certified| Certificate {
            trials_used: 640,
            epsilon: 0.07,
            certified,
            mode,
        };
        let fixed = stored(None);
        let full = stored(Some(cert(CertificateMode::Full, true)));
        let full_u = stored(Some(cert(CertificateMode::Full, false)));
        let top10 = stored(Some(cert(CertificateMode::TopK(10), true)));
        let top3 = stored(Some(cert(CertificateMode::TopK(3), true)));
        let top10_u = stored(Some(cert(CertificateMode::TopK(10), false)));

        // All-serving results replace anything.
        for resident in [&fixed, &full, &full_u, &top10, &top10_u] {
            assert!(fixed.serves_at_least(resident));
            assert!(full.serves_at_least(resident));
        }
        // Certified top-k dominates shallower (and equal) top-k —
        // certified or not — but nothing full-shaped.
        assert!(top10.serves_at_least(&top3));
        assert!(top10.serves_at_least(&top10));
        assert!(top10.serves_at_least(&top10_u));
        assert!(!top3.serves_at_least(&top10));
        assert!(!top10.serves_at_least(&full));
        assert!(!top10.serves_at_least(&full_u));
        assert!(!top10.serves_at_least(&fixed));
        // The review scenario: an uncertified full (ceiling) run must
        // NOT evict a certified top-k entry — mixed top-k/full
        // populations would otherwise ping-pong the entry forever.
        assert!(!full_u.serves_at_least(&top10));
        assert!(full_u.serves_at_least(&full_u));
        assert!(!full_u.serves_at_least(&full));
        // Uncertified top-k serves only its exact coverage.
        assert!(top10_u.serves_at_least(&top10_u));
        assert!(!top10_u.serves_at_least(&top3));
        assert!(!top10_u.serves_at_least(&top10));
        assert!(!top10_u.serves_at_least(&full_u));
    }

    #[test]
    fn effective_seed_depends_on_content_not_order() {
        let spec = RankerSpec::new(Method::Reliability);
        let a = spec.effective_seed(&ExploratoryQuery::protein_functions("GALT"));
        let b = spec.effective_seed(&ExploratoryQuery::protein_functions("GALT"));
        let c = spec.effective_seed(&ExploratoryQuery::protein_functions("CFTR"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Different base seeds give different effective seeds.
        let spec2 = RankerSpec {
            seed: 1,
            ..RankerSpec::new(Method::Reliability)
        };
        assert_ne!(
            a,
            spec2.effective_seed(&ExploratoryQuery::protein_functions("GALT"))
        );
    }

    #[test]
    fn field_separation_avoids_concat_collisions() {
        let spec = RankerSpec::new(Method::Reliability);
        let q1 = ExploratoryQuery::new("AB", "x", "v", ["O"]);
        let q2 = ExploratoryQuery::new("A", "Bx", "v", ["O"]);
        assert_ne!(spec.effective_seed(&q1), spec.effective_seed(&q2));
    }
}
