//! A fixed-size worker pool over std threads and mpsc channels.
//!
//! The workspace is deliberately std-only, so this is the classic
//! shared-receiver pattern: one `mpsc` job channel whose receiver sits
//! behind a `Mutex`, `N` threads looping on it. Jobs are boxed
//! `FnOnce` closures; batch submission tags each job with its index so
//! results reassemble in submission order regardless of which worker
//! ran what — combined with content-derived RNG seeding in the engine,
//! this makes an N-worker batch bit-identical to a 1-worker one.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::engine::{QueryEngine, QueryRequest, QueryResponse};
use crate::Error;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing submitted closures.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("biorank-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while dequeuing, never
                        // while running a job.
                        let job = match rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => break, // all senders dropped
                        };
                        job();
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits one fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool shut down")
            .send(Box::new(job))
            .expect("workers exited early");
    }

    /// Executes a batch of queries concurrently against `engine`,
    /// returning outcomes in submission order.
    ///
    /// Because each request's result depends only on its own content
    /// (the engine mixes the RNG seed from the query itself), the
    /// returned vector is identical for any pool size.
    pub fn run_batch(
        &self,
        engine: &Arc<QueryEngine>,
        requests: Vec<QueryRequest>,
    ) -> Vec<Result<QueryResponse, Error>> {
        let n = requests.len();
        let (done_tx, done_rx): (
            Sender<(usize, Result<QueryResponse, Error>)>,
            Receiver<(usize, Result<QueryResponse, Error>)>,
        ) = channel();
        for (i, req) in requests.into_iter().enumerate() {
            let engine = Arc::clone(engine);
            let done = done_tx.clone();
            self.submit(move || {
                let outcome = engine.execute(&req);
                // The batch owner may have given up (it never does
                // today); a dead receiver must not kill the worker.
                let _ = done.send((i, outcome));
            });
        }
        drop(done_tx);
        let mut slots: Vec<Option<Result<QueryResponse, Error>>> = (0..n).map(|_| None).collect();
        for (i, outcome) in done_rx {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|s| s.expect("worker dropped a batch slot"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker's recv() fail and exit.
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_submitted_jobs_run() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 100);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        pool.submit(move || {
            let _ = tx.send(42);
        });
        drop(pool); // must not hang
        assert_eq!(rx.recv(), Ok(42));
    }
}
