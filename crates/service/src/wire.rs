//! The line-delimited wire protocol of `biorank serve`.
//!
//! One JSON object per line in each direction. Hand-rolled encoder and
//! recursive-descent parser — the workspace is deliberately std-only,
//! and the protocol surface is small enough that a dependency would
//! cost more than these ~300 lines.
//!
//! Request line:
//!
//! ```json
//! {"id":1,"input":"EntrezProtein","attribute":"name","value":"GALT",
//!  "outputs":["AmiGO"],"method":"rel","trials":1000,"seed":"42","top":10}
//! ```
//!
//! Response line (success):
//!
//! ```json
//! {"id":1,"ok":true,"total":15,"cached_graph":false,"cached_scores":false,
//!  "micros":8123,"answers":[{"key":"GO:0004335","label":"galactokinase
//!  activity","score":0.91,"rank_lo":1,"rank_hi":1}]}
//! ```
//!
//! Response line (failure): `{"id":1,"ok":false,"error":"..."}`.
//!
//! Floats are printed with Rust's shortest-roundtrip formatting, so a
//! score survives encode→decode bit-exactly — the cross-wire
//! determinism test relies on this.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use biorank_mediator::ExploratoryQuery;

use crate::engine::{Method, QueryRequest, QueryResponse, RankedAnswer, RankerSpec};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so encoding is order-stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest roundtrip representation; integers print
                    // without a trailing `.0` which JSON permits.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(input: &str) -> Result<Json, WireError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A protocol decoding error.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Human-readable description, including byte position for syntax
    /// errors.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn wire_err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> WireError {
        wire_err(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, WireError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None // high surrogate not followed by a low one
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-synchronize on UTF-8 boundaries: step back and
                    // take the full character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// One request line: an id chosen by the client plus the query.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The query to execute.
    pub req: QueryRequest,
}

/// One response line: the echoed id plus outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The correlation id of the request this answers.
    pub id: u64,
    /// Ranked answers, or a rendered error message.
    pub outcome: Result<QueryResponse, String>,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn get<'a>(fields: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, WireError> {
    fields
        .get(key)
        .ok_or_else(|| wire_err(format!("missing field {key:?}")))
}

fn get_str(fields: &BTreeMap<String, Json>, key: &str) -> Result<String, WireError> {
    get(fields, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| wire_err(format!("field {key:?} must be a string")))
}

fn get_u64(fields: &BTreeMap<String, Json>, key: &str) -> Result<u64, WireError> {
    get(fields, key)?
        .as_u64()
        .ok_or_else(|| wire_err(format!("field {key:?} must be a non-negative integer")))
}

/// Encodes a request as one JSON line (no trailing newline).
pub fn encode_request(r: &Request) -> String {
    let q = &r.req.query;
    let mut fields = vec![
        ("id", Json::Num(r.id as f64)),
        ("input", Json::Str(q.input.clone())),
        ("attribute", Json::Str(q.attribute.clone())),
        ("value", Json::Str(q.value.clone())),
        (
            "outputs",
            Json::Arr(q.outputs.iter().cloned().map(Json::Str).collect()),
        ),
        ("method", Json::Str(r.req.spec.method.wire_name().into())),
        ("trials", Json::Num(f64::from(r.req.spec.trials))),
        // As a decimal string: JSON numbers are f64 here, which would
        // silently corrupt seeds above 2^53 and break the cross-wire
        // determinism guarantee.
        ("seed", Json::Str(r.req.spec.seed.to_string())),
    ];
    if let Some(top) = r.req.top {
        fields.push(("top", Json::Num(top as f64)));
    }
    obj(fields).encode()
}

/// Decodes one request line.
pub fn decode_request(line: &str) -> Result<Request, WireError> {
    let Json::Obj(fields) = Json::parse(line)? else {
        return Err(wire_err("request must be a JSON object"));
    };
    let outputs = match get(&fields, "outputs")? {
        Json::Arr(items) => items
            .iter()
            .map(|i| {
                i.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| wire_err("outputs must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(wire_err("field \"outputs\" must be an array")),
    };
    let method = get_str(&fields, "method")?;
    let method =
        Method::parse(&method).ok_or_else(|| wire_err(format!("unknown method {method:?}")))?;
    let trials = fields
        .get("trials")
        .map(|v| {
            v.as_u64()
                .and_then(|t| u32::try_from(t).ok())
                .ok_or_else(|| wire_err("field \"trials\" must fit in u32"))
        })
        .transpose()?
        .unwrap_or(RankerSpec::DEFAULT_TRIALS);
    // Accept both a decimal string (the canonical encoding, exact for
    // all u64) and a small JSON integer (hand-written clients).
    let seed = fields
        .get("seed")
        .map(|v| match v {
            Json::Str(s) => s
                .parse::<u64>()
                .map_err(|_| wire_err("field \"seed\" must be a u64 decimal string")),
            _ => v
                .as_u64()
                .ok_or_else(|| wire_err("field \"seed\" must be a non-negative integer")),
        })
        .transpose()?
        .unwrap_or(RankerSpec::DEFAULT_SEED);
    let top = fields
        .get("top")
        .map(|v| {
            v.as_u64()
                .map(|t| t as usize)
                .ok_or_else(|| wire_err("field \"top\" must be a non-negative integer"))
        })
        .transpose()?;
    Ok(Request {
        id: get_u64(&fields, "id")?,
        req: QueryRequest {
            query: ExploratoryQuery {
                input: get_str(&fields, "input")?,
                attribute: get_str(&fields, "attribute")?,
                value: get_str(&fields, "value")?,
                outputs,
            },
            spec: RankerSpec {
                method,
                trials,
                seed,
            },
            top,
        },
    })
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(r: &Response) -> String {
    match &r.outcome {
        Ok(resp) => obj(vec![
            ("id", Json::Num(r.id as f64)),
            ("ok", Json::Bool(true)),
            ("total", Json::Num(resp.total_answers as f64)),
            ("cached_graph", Json::Bool(resp.cached_graph)),
            ("cached_scores", Json::Bool(resp.cached_scores)),
            ("micros", Json::Num(resp.micros as f64)),
            (
                "answers",
                Json::Arr(
                    resp.answers
                        .iter()
                        .map(|a| {
                            obj(vec![
                                ("key", Json::Str(a.key.clone())),
                                ("label", Json::Str(a.label.clone())),
                                ("score", Json::Num(a.score)),
                                ("rank_lo", Json::Num(a.rank_lo as f64)),
                                ("rank_hi", Json::Num(a.rank_hi as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .encode(),
        Err(msg) => obj(vec![
            ("id", Json::Num(r.id as f64)),
            ("ok", Json::Bool(false)),
            ("error", Json::Str(msg.clone())),
        ])
        .encode(),
    }
}

/// Decodes one response line.
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let Json::Obj(fields) = Json::parse(line)? else {
        return Err(wire_err("response must be a JSON object"));
    };
    let id = get_u64(&fields, "id")?;
    let ok = get(&fields, "ok")?
        .as_bool()
        .ok_or_else(|| wire_err("field \"ok\" must be a boolean"))?;
    if !ok {
        return Ok(Response {
            id,
            outcome: Err(get_str(&fields, "error")?),
        });
    }
    let answers = match get(&fields, "answers")? {
        Json::Arr(items) => items
            .iter()
            .map(|item| {
                let Json::Obj(f) = item else {
                    return Err(wire_err("answers must be objects"));
                };
                Ok(RankedAnswer {
                    key: get_str(f, "key")?,
                    label: get_str(f, "label")?,
                    score: get(f, "score")?
                        .as_f64()
                        .ok_or_else(|| wire_err("field \"score\" must be a number"))?,
                    rank_lo: get_u64(f, "rank_lo")? as usize,
                    rank_hi: get_u64(f, "rank_hi")? as usize,
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(wire_err("field \"answers\" must be an array")),
    };
    Ok(Response {
        id,
        outcome: Ok(QueryResponse {
            answers,
            total_answers: get_u64(&fields, "total")? as usize,
            cached_graph: get(&fields, "cached_graph")?
                .as_bool()
                .ok_or_else(|| wire_err("field \"cached_graph\" must be a boolean"))?,
            cached_scores: get(&fields, "cached_scores")?
                .as_bool()
                .ok_or_else(|| wire_err("field \"cached_scores\" must be a boolean"))?,
            micros: get_u64(&fields, "micros")?,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_basics() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-12.5",
            "1e-3",
            "\"hi \\\"there\\\" \\n\"",
            "[1,2,[3],{}]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let re = Json::parse(&v.encode()).unwrap();
            assert_eq!(v, re, "{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\"}",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("é😀".to_string()));
        // Raw UTF-8 also passes through.
        let v = Json::parse("\"é😀\"").unwrap();
        assert_eq!(v, Json::Str("é😀".to_string()));
        // A high surrogate must pair with a low one.
        for bad in [
            "\"\\ud800\"",
            "\"\\ud800\\u0061\"",
            "\"\\ud800x\"",
            "\"\\udc00\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for f in [0.123456789012345678, 1.0 / 3.0, 1e-17, 0.4375] {
            let enc = Json::Num(f).encode();
            let Json::Num(back) = Json::parse(&enc).unwrap() else {
                panic!("not a number");
            };
            assert_eq!(f.to_bits(), back.to_bits(), "{enc}");
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = Request {
            id: 7,
            req: QueryRequest {
                query: ExploratoryQuery::protein_functions("GALT"),
                spec: RankerSpec {
                    method: Method::Reliability,
                    trials: 1000,
                    seed: 42,
                },
                top: Some(5),
            },
        };
        let line = encode_request(&r);
        assert!(!line.contains('\n'));
        assert_eq!(decode_request(&line).unwrap(), r);
    }

    #[test]
    fn seeds_above_2_pow_53_survive_the_wire_exactly() {
        let mut r = Request {
            id: 1,
            req: QueryRequest {
                query: ExploratoryQuery::protein_functions("GALT"),
                spec: RankerSpec {
                    method: Method::TraversalMc,
                    trials: 10,
                    seed: (1u64 << 60) + 1,
                },
                top: None,
            },
        };
        for seed in [(1u64 << 60) + 1, u64::MAX, 0] {
            r.req.spec.seed = seed;
            let back = decode_request(&encode_request(&r)).unwrap();
            assert_eq!(back.req.spec.seed, seed);
        }
        // Hand-written clients may still send a small JSON integer.
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\",\"seed\":42}";
        assert_eq!(decode_request(line).unwrap().req.spec.seed, 42);
    }

    #[test]
    fn request_defaults_apply() {
        let line = "{\"id\":1,\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
                    \"value\":\"GALT\",\"outputs\":[\"AmiGO\"],\"method\":\"pathc\"}";
        let r = decode_request(line).unwrap();
        assert_eq!(r.req.spec.trials, RankerSpec::DEFAULT_TRIALS);
        assert_eq!(r.req.spec.seed, RankerSpec::DEFAULT_SEED);
        assert_eq!(r.req.top, None);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response {
            id: 3,
            outcome: Ok(QueryResponse {
                answers: vec![RankedAnswer {
                    key: "GO:0004335".into(),
                    label: "galactokinase \"activity\"".into(),
                    score: 1.0 / 3.0,
                    rank_lo: 1,
                    rank_hi: 2,
                }],
                total_answers: 15,
                cached_graph: true,
                cached_scores: false,
                micros: 812,
            }),
        };
        let line = encode_response(&resp);
        assert_eq!(decode_response(&line).unwrap(), resp);
        let err = Response {
            id: 4,
            outcome: Err("no records in EntrezProtein match \"NOPE\"".into()),
        };
        assert_eq!(decode_response(&encode_response(&err)).unwrap(), err);
    }

    #[test]
    fn decode_request_rejects_unknown_method() {
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"magic\"}";
        assert!(decode_request(line).is_err());
    }
}
