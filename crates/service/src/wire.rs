//! The line-delimited wire protocol of `biorank serve`.
//!
//! One JSON object per line in each direction. Hand-rolled encoder and
//! recursive-descent parser — the workspace is deliberately std-only,
//! and the protocol surface is small enough that a dependency would
//! cost more than these ~300 lines.
//!
//! Query request line (the optional `cmd` defaults to `"query"`;
//! `world` routes to a resident world, `parallel` opts into
//! intra-query parallel Monte Carlo, and `estimator` — `"traversal"`,
//! `"word"`, or `"auto"` — selects the Monte Carlo engine for the
//! `mc` method, with `"auto"` deferring to the cost-based planner;
//! absent means the server's configured default, which is `"auto"`
//! unless `biorank serve --estimator` says otherwise):
//!
//! ```json
//! {"id":1,"input":"EntrezProtein","attribute":"name","value":"GALT",
//!  "outputs":["AmiGO"],"method":"mc","trials":1000,"seed":"42","top":10,
//!  "world":"staging","parallel":true,"estimator":"word"}
//! ```
//!
//! `trials` is either a number (run exactly that many Monte Carlo
//! trials) or an adaptive policy object — run 64-trial batches until
//! the Theorem 3.1 bound certifies the ranking at (ε, δ) or the
//! ceiling hits, each field defaulting as shown:
//!
//! ```json
//! {"id":1, "...":"...", "method":"mc",
//!  "trials":{"epsilon":0.02,"delta":0.05,"max":10000}}
//! ```
//!
//! Adding `"certify_top":true` to an adaptive request restricts
//! certification to the `top` prefix: batches stop once the top-k
//! answers and the boundary gap to rank k+1 resolve, ignoring gaps
//! further down.
//!
//! Response line (success). Adaptive executions echo their stop
//! certificate — `mode` says whether the full ranking (`"full"`) or
//! only a `k`-prefix (`"top_k"`, with the certified `k`) was checked;
//! fixed and deterministic executions omit the field:
//!
//! ```json
//! {"id":1,"ok":true,"total":15,"cached_graph":false,"cached_scores":false,
//!  "micros":8123,"certificate":{"trials_used":448,"epsilon":0.088,
//!  "certified":true,"mode":"full"},"answers":[{"key":"GO:0004335",
//!  "label":"galactokinase activity","score":0.91,"rank_lo":1,"rank_hi":1}]}
//! ```
//!
//! Adding `"trace":true` to a query request echoes the per-stage span
//! breakdown in the response (`"trace":[{"stage":"cache","nanos":412},
//! ...]`). Tracing is purely observational — it changes no answer bit
//! and no cache key.
//!
//! A planned execution (`"estimator":"auto"` on a reliability /
//! Monte Carlo method) additionally echoes the planner's verdict next
//! to the certificate:
//!
//! ```json
//! {"id":1,"ok":true,"...":"...","plan":{"strategy":"word",
//!  "predicted_ns":1685000,"fallback":false,"features":{"nodes":185,
//!  "edges":329,"answers":97,"acyclic":true,"reduced_nodes":129,
//!  "reduced_edges":269,"schema_reducible":false,"max_trials":10000}}}
//! ```
//!
//! Like `trace`, the plan echo is observational only: the planner
//! resolves `auto` onto a concrete strategy *before* cache keying, so
//! the answers and certificate are byte-identical to explicitly
//! requesting that strategy, and auto/explicit traffic share cache
//! entries.
//!
//! Admin request lines set `cmd` to one of `world.load`, `world.swap`,
//! `world.evict`, `world.list`, `stats`, `metrics`:
//!
//! ```json
//! {"id":2,"cmd":"world.load","world":"staging","seed":"99","extended":false,"cache":512}
//! {"id":3,"cmd":"world.list"}
//! {"id":4,"cmd":"stats"}
//! {"id":5,"cmd":"metrics","reset":false}
//! ```
//!
//! answered by `{"id":2,"ok":true,"world":"staging","generation":1}`,
//! a `worlds` array (each entry carrying a `state` of `"ready"` or
//! `"loading"`), and a per-world `stats` object respectively.
//! `metrics` answers the full registry snapshot — service-level
//! counters/histograms, per-world engine metrics, and the slow-query
//! ring buffer; `"reset":true` zeroes every counter after the
//! snapshot.
//! `world.load` with `"background":true` answers
//! `{"id":2,"ok":true,"world":"staging","status":"loading"}`
//! immediately and installs the world from a worker thread when built.
//! `world.swap` accepts a `warm` count (default 8): how many of the
//! replaced engine's hottest cached queries to replay into the fresh
//! engine before installing it (0 installs cold).
//!
//! Response line (failure): `{"id":1,"ok":false,"error":"..."}`.
//!
//! Floats are printed with Rust's shortest-roundtrip formatting, so a
//! score survives encode→decode bit-exactly — the cross-wire
//! determinism test relies on this.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use biorank_mediator::ExploratoryQuery;

use biorank_obs::{
    Histogram, HistogramBucket, HistogramSnapshot, MetricsSnapshot, SlowQueryEntry, TraceSpan,
};
use biorank_rank::{
    Certificate, CertificateMode, GraphFeatures, Plan, PlanFeatures, Strategy, TrialsPolicy,
};

use crate::cache::CacheStats;
use crate::engine::{
    AdaptiveConfig, EngineStats, Estimator, Method, QueryRequest, QueryResponse, RankedAnswer,
    RankerSpec, Trials,
};
use crate::tenancy::{
    MetricsReport, ServiceStats, WorldInfo, WorldMetrics, WorldSpec, WorldState, WorldStats,
    DEFAULT_SWAP_WARM,
};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so encoding is order-stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest roundtrip representation; integers print
                    // without a trailing `.0` which JSON permits.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(input: &str) -> Result<Json, WireError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A protocol decoding error.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Human-readable description, including byte position for syntax
    /// errors.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn wire_err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> WireError {
        wire_err(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, WireError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None // high surrogate not followed by a low one
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-synchronize on UTF-8 boundaries: step back and
                    // take the full character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// One request line: an id chosen by the client plus its body.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The query or admin command to execute.
    pub body: RequestBody,
}

/// What a request line asks the server to do.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Execute a query (the default when `cmd` is absent).
    Query(QueryRequest),
    /// An admin control-plane command.
    Admin(AdminRequest),
}

/// The admin control plane: world lifecycle plus observability.
#[derive(Clone, Debug, PartialEq)]
pub enum AdminRequest {
    /// `world.load` — make a world resident (no-op if identical).
    Load {
        /// Registry name.
        world: String,
        /// How to build it.
        spec: WorldSpec,
        /// `true` answers `{"status":"loading"}` immediately and
        /// builds the world on a worker thread; `false` (the default)
        /// blocks until the world is resident.
        background: bool,
    },
    /// `world.swap` — replace a world with a freshly built engine,
    /// invalidating both of its cache layers.
    Swap {
        /// Registry name.
        world: String,
        /// How to build the replacement.
        spec: WorldSpec,
        /// Hottest cached queries of the replaced engine to replay
        /// into the fresh engine before installing it (0 = cold).
        warm: usize,
    },
    /// `world.evict` — drop a resident world.
    Evict {
        /// Registry name.
        world: String,
    },
    /// `world.save` — write a durable snapshot of one resident world
    /// (requires `biorank serve --data-dir`).
    Save {
        /// Registry name.
        world: String,
    },
    /// `checkpoint` — snapshot every resident world, rewrite the
    /// manifest, and truncate the admin WAL (requires `--data-dir`).
    Checkpoint,
    /// `world.list` — snapshot the registry.
    List,
    /// `stats` — per-world cache counters.
    Stats,
    /// `metrics` — the full metrics-registry snapshot (service-level
    /// plus per-world), with the slow-query log.
    Metrics {
        /// Zero every counter/gauge/histogram after the snapshot (the
        /// returned payload is always the pre-reset state).
        reset: bool,
    },
    /// `server.drain` — graceful shutdown: stop accepting connections,
    /// let in-flight requests finish under the serve's drain deadline,
    /// checkpoint durable worlds (when `--data-dir` is attached), then
    /// exit 0. The response is sent before the process exits.
    Drain,
}

/// A successful admin command's payload.
#[derive(Clone, Debug, PartialEq)]
pub enum AdminResponse {
    /// Outcome of `world.load` / `world.swap` / `world.evict`.
    World {
        /// The world operated on.
        world: String,
        /// Its generation after the operation (0 for an eviction).
        generation: u64,
    },
    /// Outcome of a background `world.load`: the build was accepted
    /// and is running on a worker thread; poll `world.list` for the
    /// `ready` state.
    Loading {
        /// The world being built.
        world: String,
    },
    /// Outcome of `world.save`: the snapshot was written and fsync'd.
    Saved {
        /// The world snapshotted.
        world: String,
        /// Its generation at snapshot time.
        generation: u64,
        /// On-disk size of the snapshot container, in bytes.
        snapshot_bytes: u64,
    },
    /// Outcome of `checkpoint`: the manifest was rewritten and the
    /// WAL truncated.
    Checkpoint {
        /// Resident worlds snapshotted.
        worlds: usize,
        /// Total on-disk size of the snapshots written, in bytes.
        snapshot_bytes: u64,
    },
    /// Outcome of `world.list`.
    List(Vec<WorldInfo>),
    /// Outcome of `stats`.
    Stats(ServiceStats),
    /// Outcome of `metrics`.
    Metrics(MetricsReport),
    /// Outcome of `server.drain`: every in-flight request finished (or
    /// the drain deadline fired) and durable worlds were checkpointed.
    Drained {
        /// Resident worlds checkpointed on the way out (0 when the
        /// serve has no `--data-dir`).
        worlds: usize,
    },
}

/// One response line: the echoed id plus outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The correlation id of the request this answers.
    pub id: u64,
    /// The payload, or a rendered error message.
    pub outcome: Result<ResponseBody, String>,
}

/// A successful response's payload.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// Ranked answers for a query request.
    Query(QueryResponse),
    /// An admin command's payload.
    Admin(AdminResponse),
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn get<'a>(fields: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, WireError> {
    fields
        .get(key)
        .ok_or_else(|| wire_err(format!("missing field {key:?}")))
}

fn get_str(fields: &BTreeMap<String, Json>, key: &str) -> Result<String, WireError> {
    get(fields, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| wire_err(format!("field {key:?} must be a string")))
}

fn get_u64(fields: &BTreeMap<String, Json>, key: &str) -> Result<u64, WireError> {
    get(fields, key)?
        .as_u64()
        .ok_or_else(|| wire_err(format!("field {key:?} must be a non-negative integer")))
}

/// Encodes a request as one JSON line (no trailing newline).
pub fn encode_request(r: &Request) -> String {
    match &r.body {
        RequestBody::Query(req) => encode_query_request(r.id, req),
        RequestBody::Admin(admin) => encode_admin_request(r.id, admin),
    }
}

fn encode_query_request(id: u64, req: &QueryRequest) -> String {
    let q = &req.query;
    let mut fields = vec![
        ("id", Json::Num(id as f64)),
        ("input", Json::Str(q.input.clone())),
        ("attribute", Json::Str(q.attribute.clone())),
        ("value", Json::Str(q.value.clone())),
        (
            "outputs",
            Json::Arr(q.outputs.iter().cloned().map(Json::Str).collect()),
        ),
        ("method", Json::Str(req.spec.method.wire_name().into())),
        ("trials", encode_trials(&req.spec.trials)),
        // As a decimal string: JSON numbers are f64 here, which would
        // silently corrupt seeds above 2^53 and break the cross-wire
        // determinism guarantee.
        ("seed", Json::Str(req.spec.seed.to_string())),
    ];
    if req.spec.parallel {
        fields.push(("parallel", Json::Bool(true)));
    }
    if let Some(estimator) = req.spec.estimator {
        fields.push(("estimator", Json::Str(estimator.wire_name().into())));
    }
    if let Some(top) = req.top {
        fields.push(("top", Json::Num(top as f64)));
    }
    if req.certify_top {
        fields.push(("certify_top", Json::Bool(true)));
    }
    if let Some(world) = &req.world {
        fields.push(("world", Json::Str(world.clone())));
    }
    if req.trace {
        fields.push(("trace", Json::Bool(true)));
    }
    if let Some(ms) = req.deadline_ms {
        fields.push(("deadline_ms", Json::Num(ms as f64)));
    }
    obj(fields).encode()
}

/// Encodes the trial policy: a plain number for fixed counts, an
/// object for the adaptive policy.
fn encode_trials(trials: &Trials) -> Json {
    match trials {
        Trials::Fixed(n) => Json::Num(f64::from(*n)),
        Trials::Adaptive(cfg) => obj(vec![
            ("epsilon", Json::Num(cfg.epsilon)),
            ("delta", Json::Num(cfg.delta)),
            ("max", Json::Num(f64::from(cfg.max_trials))),
        ]),
    }
}

/// Decodes the trial policy (see [`encode_trials`]); absent adaptive
/// fields default to the paper's M1 parameters.
fn decode_trials(v: &Json) -> Result<Trials, WireError> {
    match v {
        Json::Num(_) => v
            .as_u64()
            .and_then(|t| u32::try_from(t).ok())
            .map(Trials::Fixed)
            .ok_or_else(|| wire_err("field \"trials\" must fit in u32")),
        Json::Obj(fields) => {
            let defaults = AdaptiveConfig::default();
            let num = |key: &str, fallback: f64| -> Result<f64, WireError> {
                fields
                    .get(key)
                    .map(|v| {
                        v.as_f64()
                            .filter(|x| x.is_finite())
                            .ok_or_else(|| wire_err(format!("adaptive {key:?} must be a number")))
                    })
                    .transpose()
                    .map(|v| v.unwrap_or(fallback))
            };
            let max_trials = fields
                .get("max")
                .map(|v| {
                    v.as_u64()
                        .and_then(|t| u32::try_from(t).ok())
                        .ok_or_else(|| wire_err("adaptive \"max\" must fit in u32"))
                })
                .transpose()?
                .unwrap_or(defaults.max_trials);
            Ok(Trials::Adaptive(AdaptiveConfig {
                epsilon: num("epsilon", defaults.epsilon)?,
                delta: num("delta", defaults.delta)?,
                max_trials,
            }))
        }
        _ => Err(wire_err(
            "field \"trials\" must be a number or an adaptive policy object",
        )),
    }
}

fn encode_admin_request(id: u64, admin: &AdminRequest) -> String {
    let mut fields = vec![("id", Json::Num(id as f64))];
    let spec_fields = |world: &str, spec: &WorldSpec, fields: &mut Vec<(&str, Json)>| {
        fields.push(("world", Json::Str(world.to_string())));
        fields.push(("seed", Json::Str(spec.seed.to_string())));
        fields.push(("extended", Json::Bool(spec.extended)));
        fields.push(("cache", Json::Num(spec.cache_capacity as f64)));
    };
    match admin {
        AdminRequest::Load {
            world,
            spec,
            background,
        } => {
            fields.push(("cmd", Json::Str("world.load".into())));
            spec_fields(world, spec, &mut fields);
            if *background {
                fields.push(("background", Json::Bool(true)));
            }
        }
        AdminRequest::Swap { world, spec, warm } => {
            fields.push(("cmd", Json::Str("world.swap".into())));
            spec_fields(world, spec, &mut fields);
            fields.push(("warm", Json::Num(*warm as f64)));
        }
        AdminRequest::Evict { world } => {
            fields.push(("cmd", Json::Str("world.evict".into())));
            fields.push(("world", Json::Str(world.clone())));
        }
        AdminRequest::Save { world } => {
            fields.push(("cmd", Json::Str("world.save".into())));
            fields.push(("world", Json::Str(world.clone())));
        }
        AdminRequest::Checkpoint => fields.push(("cmd", Json::Str("checkpoint".into()))),
        AdminRequest::List => fields.push(("cmd", Json::Str("world.list".into()))),
        AdminRequest::Stats => fields.push(("cmd", Json::Str("stats".into()))),
        AdminRequest::Metrics { reset } => {
            fields.push(("cmd", Json::Str("metrics".into())));
            if *reset {
                fields.push(("reset", Json::Bool(true)));
            }
        }
        AdminRequest::Drain => fields.push(("cmd", Json::Str("server.drain".into()))),
    }
    obj(fields).encode()
}

/// Defaults applied to request fields the client left unset. The
/// protocol-level defaults ([`RequestDefaults::default`]) match the
/// paper's fixed configuration; a server substitutes its own (from
/// `biorank serve --estimator/--adaptive-*`) via
/// [`decode_request_with`], so the result-cache key always reflects
/// what actually executes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestDefaults {
    /// Trial policy for query lines without a `trials` field.
    pub trials: Trials,
    /// Execution deadline for query lines without a `deadline_ms`
    /// field (`None` = no default deadline, the protocol-level
    /// default). A request can always pin its own `deadline_ms`; there
    /// is no wire spelling for "opt out of the server default".
    pub deadline_ms: Option<u64>,
}

impl Default for RequestDefaults {
    fn default() -> Self {
        RequestDefaults {
            trials: Trials::Fixed(RankerSpec::DEFAULT_TRIALS),
            deadline_ms: None,
        }
    }
}

/// Decodes one request line with the protocol-level defaults. Lines
/// without a `cmd` field (or with `cmd: "query"`) are query requests;
/// everything else is an admin command.
pub fn decode_request(line: &str) -> Result<Request, WireError> {
    decode_request_with(line, &RequestDefaults::default())
}

/// Decodes one request line, filling unset fields from `defaults`
/// (the server's configured policies).
pub fn decode_request_with(line: &str, defaults: &RequestDefaults) -> Result<Request, WireError> {
    let Json::Obj(fields) = Json::parse(line)? else {
        return Err(wire_err("request must be a JSON object"));
    };
    let id = get_u64(&fields, "id")?;
    let cmd = match fields.get("cmd") {
        None => "query".to_string(),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| wire_err("field \"cmd\" must be a string"))?,
    };
    let body = match cmd.as_str() {
        "query" => RequestBody::Query(decode_query_body(&fields, defaults)?),
        "world.load" => RequestBody::Admin(AdminRequest::Load {
            world: get_str(&fields, "world")?,
            spec: decode_world_spec(&fields)?,
            background: fields
                .get("background")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| wire_err("field \"background\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
        }),
        "world.swap" => RequestBody::Admin(AdminRequest::Swap {
            world: get_str(&fields, "world")?,
            spec: decode_world_spec(&fields)?,
            warm: fields
                .get("warm")
                .map(|v| {
                    v.as_u64()
                        .map(|w| w as usize)
                        .ok_or_else(|| wire_err("field \"warm\" must be a non-negative integer"))
                })
                .transpose()?
                .unwrap_or(DEFAULT_SWAP_WARM),
        }),
        "world.evict" => RequestBody::Admin(AdminRequest::Evict {
            world: get_str(&fields, "world")?,
        }),
        "world.save" => RequestBody::Admin(AdminRequest::Save {
            world: get_str(&fields, "world")?,
        }),
        "checkpoint" => RequestBody::Admin(AdminRequest::Checkpoint),
        "server.drain" => RequestBody::Admin(AdminRequest::Drain),
        "world.list" => RequestBody::Admin(AdminRequest::List),
        "stats" => RequestBody::Admin(AdminRequest::Stats),
        "metrics" => RequestBody::Admin(AdminRequest::Metrics {
            reset: fields
                .get("reset")
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| wire_err("field \"reset\" must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
        }),
        other => return Err(wire_err(format!("unknown cmd {other:?}"))),
    };
    Ok(Request { id, body })
}

/// Decodes the optional world-spec fields of `world.load`/`world.swap`
/// (`seed`, `extended`, `cache`), defaulting absent ones.
fn decode_world_spec(fields: &BTreeMap<String, Json>) -> Result<WorldSpec, WireError> {
    let defaults = WorldSpec::default();
    let seed = fields
        .get("seed")
        .map(decode_seed)
        .transpose()?
        .unwrap_or(defaults.seed);
    let extended = fields
        .get("extended")
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| wire_err("field \"extended\" must be a boolean"))
        })
        .transpose()?
        .unwrap_or(defaults.extended);
    let cache_capacity = fields
        .get("cache")
        .map(|v| {
            v.as_u64()
                .map(|c| c as usize)
                .ok_or_else(|| wire_err("field \"cache\" must be a non-negative integer"))
        })
        .transpose()?
        .unwrap_or(defaults.cache_capacity);
    Ok(WorldSpec {
        seed,
        extended,
        cache_capacity,
    })
}

/// Accept both a decimal string (the canonical encoding, exact for all
/// u64) and a small JSON integer (hand-written clients).
fn decode_seed(v: &Json) -> Result<u64, WireError> {
    match v {
        Json::Str(s) => s
            .parse::<u64>()
            .map_err(|_| wire_err("field \"seed\" must be a u64 decimal string")),
        _ => v
            .as_u64()
            .ok_or_else(|| wire_err("field \"seed\" must be a non-negative integer")),
    }
}

fn decode_query_body(
    fields: &BTreeMap<String, Json>,
    defaults: &RequestDefaults,
) -> Result<QueryRequest, WireError> {
    let outputs = match get(fields, "outputs")? {
        Json::Arr(items) => items
            .iter()
            .map(|i| {
                i.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| wire_err("outputs must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(wire_err("field \"outputs\" must be an array")),
    };
    let method = get_str(&fields, "method")?;
    let method =
        Method::parse(&method).ok_or_else(|| wire_err(format!("unknown method {method:?}")))?;
    let trials = fields
        .get("trials")
        .map(decode_trials)
        .transpose()?
        .unwrap_or(defaults.trials);
    let seed = fields
        .get("seed")
        .map(decode_seed)
        .transpose()?
        .unwrap_or(RankerSpec::DEFAULT_SEED);
    let parallel = fields
        .get("parallel")
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| wire_err("field \"parallel\" must be a boolean"))
        })
        .transpose()?
        .unwrap_or(false);
    let estimator = fields
        .get("estimator")
        .map(|v| {
            v.as_str().and_then(Estimator::parse).ok_or_else(|| {
                wire_err("field \"estimator\" must be \"traversal\", \"word\", or \"auto\"")
            })
        })
        .transpose()?;
    let top = fields
        .get("top")
        .map(|v| {
            v.as_u64()
                .map(|t| t as usize)
                .ok_or_else(|| wire_err("field \"top\" must be a non-negative integer"))
        })
        .transpose()?;
    let certify_top = fields
        .get("certify_top")
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| wire_err("field \"certify_top\" must be a boolean"))
        })
        .transpose()?
        .unwrap_or(false);
    let world = fields
        .get("world")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| wire_err("field \"world\" must be a string"))
        })
        .transpose()?;
    let trace = fields
        .get("trace")
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| wire_err("field \"trace\" must be a boolean"))
        })
        .transpose()?
        .unwrap_or(false);
    let deadline_ms = fields
        .get("deadline_ms")
        .map(|v| {
            v.as_u64()
                .filter(|&ms| ms > 0)
                .ok_or_else(|| wire_err("field \"deadline_ms\" must be a positive integer"))
        })
        .transpose()?
        .or(defaults.deadline_ms);
    Ok(QueryRequest {
        query: ExploratoryQuery {
            input: get_str(fields, "input")?,
            attribute: get_str(fields, "attribute")?,
            value: get_str(fields, "value")?,
            outputs,
        },
        spec: RankerSpec {
            method,
            trials,
            seed,
            parallel,
            estimator,
        },
        top,
        certify_top,
        world,
        trace,
        deadline_ms,
    })
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(r: &Response) -> String {
    match &r.outcome {
        Ok(ResponseBody::Query(resp)) => {
            let mut fields = vec![
                ("id", Json::Num(r.id as f64)),
                ("ok", Json::Bool(true)),
                ("total", Json::Num(resp.total_answers as f64)),
                ("cached_graph", Json::Bool(resp.cached_graph)),
                ("cached_scores", Json::Bool(resp.cached_scores)),
                ("micros", Json::Num(resp.micros as f64)),
                (
                    "answers",
                    Json::Arr(
                        resp.answers
                            .iter()
                            .map(|a| {
                                obj(vec![
                                    ("key", Json::Str(a.key.clone())),
                                    ("label", Json::Str(a.label.clone())),
                                    ("score", Json::Num(a.score)),
                                    ("rank_lo", Json::Num(a.rank_lo as f64)),
                                    ("rank_hi", Json::Num(a.rank_hi as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ];
            if let Some(cert) = &resp.certificate {
                let mut cert_fields = vec![
                    ("trials_used", Json::Num(f64::from(cert.trials_used))),
                    // Scores round-trip bit-exactly, so the
                    // certified ε does too.
                    ("epsilon", Json::Num(cert.epsilon)),
                    ("certified", Json::Bool(cert.certified)),
                ];
                match cert.mode {
                    CertificateMode::Full => {
                        cert_fields.push(("mode", Json::Str("full".into())));
                    }
                    CertificateMode::TopK(k) => {
                        cert_fields.push(("mode", Json::Str("top_k".into())));
                        cert_fields.push(("k", Json::Num(f64::from(k))));
                    }
                }
                fields.push(("certificate", obj(cert_fields)));
            }
            if !resp.trace.is_empty() {
                fields.push((
                    "trace",
                    Json::Arr(
                        resp.trace
                            .iter()
                            .map(|span| {
                                obj(vec![
                                    ("stage", Json::Str(span.stage.clone())),
                                    ("nanos", Json::Num(span.nanos as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            if let Some(plan) = &resp.plan {
                fields.push(("plan", encode_plan(plan)));
            }
            obj(fields).encode()
        }
        Ok(ResponseBody::Admin(admin)) => encode_admin_response(r.id, admin),
        Err(msg) => obj(vec![
            ("id", Json::Num(r.id as f64)),
            ("ok", Json::Bool(false)),
            ("error", Json::Str(msg.clone())),
        ])
        .encode(),
    }
}

/// Encodes the planner's verdict: the chosen strategy, its predicted
/// cost, whether the choice was a fallback, and the feature vector it
/// was scored on — everything `biorank query --explain` prints.
fn encode_plan(plan: &Plan) -> Json {
    let g = &plan.features.graph;
    let mut features = vec![
        ("nodes", Json::Num(f64::from(g.nodes))),
        ("edges", Json::Num(f64::from(g.edges))),
        ("answers", Json::Num(f64::from(g.answers))),
        ("acyclic", Json::Bool(g.acyclic)),
        ("reduced_nodes", Json::Num(f64::from(g.reduced_nodes))),
        ("reduced_edges", Json::Num(f64::from(g.reduced_edges))),
        ("schema_reducible", Json::Bool(g.schema_reducible)),
    ];
    match plan.features.trials {
        TrialsPolicy::Fixed(n) => features.push(("trials", Json::Num(f64::from(n)))),
        TrialsPolicy::Adaptive { max_trials } => {
            features.push(("max_trials", Json::Num(f64::from(max_trials))))
        }
    }
    if let Some(k) = plan.features.top_k {
        features.push(("top_k", Json::Num(f64::from(k))));
    }
    obj(vec![
        ("strategy", Json::Str(plan.strategy.wire_name().into())),
        ("predicted_ns", Json::Num(plan.predicted_ns as f64)),
        ("fallback", Json::Bool(plan.fallback)),
        ("features", obj(features)),
    ])
}

fn decode_plan(v: &Json) -> Result<Plan, WireError> {
    let Json::Obj(f) = v else {
        return Err(wire_err("field \"plan\" must be an object"));
    };
    let strategy = get_str(f, "strategy")?;
    let strategy = Strategy::parse(&strategy)
        .ok_or_else(|| wire_err(format!("unknown plan strategy {strategy:?}")))?;
    let Json::Obj(g) = get(f, "features")? else {
        return Err(wire_err("plan \"features\" must be an object"));
    };
    let graph = GraphFeatures {
        nodes: get_u32(g, "nodes")?,
        edges: get_u32(g, "edges")?,
        answers: get_u32(g, "answers")?,
        acyclic: get(g, "acyclic")?
            .as_bool()
            .ok_or_else(|| wire_err("field \"acyclic\" must be a boolean"))?,
        reduced_nodes: get_u32(g, "reduced_nodes")?,
        reduced_edges: get_u32(g, "reduced_edges")?,
        schema_reducible: get(g, "schema_reducible")?
            .as_bool()
            .ok_or_else(|| wire_err("field \"schema_reducible\" must be a boolean"))?,
    };
    let trials = if g.contains_key("trials") {
        TrialsPolicy::Fixed(get_u32(g, "trials")?)
    } else {
        TrialsPolicy::Adaptive {
            max_trials: get_u32(g, "max_trials")?,
        }
    };
    let top_k = g
        .contains_key("top_k")
        .then(|| get_u32(g, "top_k"))
        .transpose()?;
    Ok(Plan {
        strategy,
        predicted_ns: get_u64(f, "predicted_ns")?,
        features: PlanFeatures::for_request(graph, top_k, trials),
        fallback: get(f, "fallback")?
            .as_bool()
            .ok_or_else(|| wire_err("field \"fallback\" must be a boolean"))?,
    })
}

fn get_u32(fields: &BTreeMap<String, Json>, name: &str) -> Result<u32, WireError> {
    get_u64(fields, name)?
        .try_into()
        .map_err(|_| wire_err(format!("field {name:?} must fit in u32")))
}

fn encode_world_spec_fields(spec: &WorldSpec, fields: &mut Vec<(&'static str, Json)>) {
    fields.push(("seed", Json::Str(spec.seed.to_string())));
    fields.push(("extended", Json::Bool(spec.extended)));
    fields.push(("cache", Json::Num(spec.cache_capacity as f64)));
}

fn encode_cache_stats(s: &CacheStats) -> Json {
    obj(vec![
        ("hits", Json::Num(s.hits as f64)),
        ("misses", Json::Num(s.misses as f64)),
        ("entries", Json::Num(s.entries as f64)),
        ("inserts", Json::Num(s.inserts as f64)),
        ("rejected", Json::Num(s.rejected as f64)),
        // Derived, for humans reading transcripts; decode recomputes
        // it from hits/misses.
        ("hit_rate", Json::Num(s.hit_rate())),
    ])
}

fn decode_cache_stats(v: &Json) -> Result<CacheStats, WireError> {
    let Json::Obj(f) = v else {
        return Err(wire_err("cache stats must be an object"));
    };
    // Absent insert/reject counters (pre-telemetry servers) decode to
    // zero rather than failing the whole stats payload.
    Ok(CacheStats {
        hits: get_u64(f, "hits")?,
        misses: get_u64(f, "misses")?,
        entries: get_u64(f, "entries")? as usize,
        inserts: match f.get("inserts") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| wire_err("field \"inserts\" must be a non-negative integer"))?,
            None => 0,
        },
        rejected: match f.get("rejected") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| wire_err("field \"rejected\" must be a non-negative integer"))?,
            None => 0,
        },
    })
}

/// Encodes a metrics snapshot. Histogram buckets travel as
/// `[bucket_index, count]` pairs — the log₂ bucket bounds are
/// recomputed at decode from the index, so the top buckets (whose
/// bounds exceed 2⁵³) survive the f64 number representation exactly.
fn encode_metrics_snapshot(s: &MetricsSnapshot) -> Json {
    let num_map = |m: &BTreeMap<String, u64>| {
        Json::Obj(
            m.iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        )
    };
    obj(vec![
        ("counters", num_map(&s.counters)),
        ("gauges", num_map(&s.gauges)),
        (
            "histograms",
            Json::Obj(
                s.histograms
                    .iter()
                    .map(|(name, h)| {
                        (
                            name.clone(),
                            obj(vec![
                                ("count", Json::Num(h.count as f64)),
                                ("sum", Json::Num(h.sum as f64)),
                                (
                                    "buckets",
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|b| {
                                                Json::Arr(vec![
                                                    Json::Num(Histogram::bucket_index(b.lo) as f64),
                                                    Json::Num(b.count as f64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_metrics_snapshot(v: &Json) -> Result<MetricsSnapshot, WireError> {
    let Json::Obj(f) = v else {
        return Err(wire_err("metrics snapshot must be an object"));
    };
    let num_map = |key: &str| -> Result<BTreeMap<String, u64>, WireError> {
        let Json::Obj(m) = get(f, key)? else {
            return Err(wire_err(format!("field {key:?} must be an object")));
        };
        m.iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| wire_err(format!("metric {k:?} must be a non-negative integer")))
            })
            .collect()
    };
    let Json::Obj(histograms) = get(f, "histograms")? else {
        return Err(wire_err("field \"histograms\" must be an object"));
    };
    let histograms = histograms
        .iter()
        .map(|(name, v)| {
            let Json::Obj(h) = v else {
                return Err(wire_err("histogram must be an object"));
            };
            let Json::Arr(items) = get(h, "buckets")? else {
                return Err(wire_err("field \"buckets\" must be an array"));
            };
            let buckets = items
                .iter()
                .map(|item| {
                    let Json::Arr(pair) = item else {
                        return Err(wire_err("histogram bucket must be [index, count]"));
                    };
                    let (Some(index), Some(count)) = (
                        pair.first().and_then(Json::as_u64),
                        pair.get(1).and_then(Json::as_u64),
                    ) else {
                        return Err(wire_err("histogram bucket must be [index, count]"));
                    };
                    if index as usize >= biorank_obs::HISTOGRAM_BUCKETS {
                        return Err(wire_err("histogram bucket index out of range"));
                    }
                    let (lo, hi) = Histogram::bucket_range(index as usize);
                    Ok(HistogramBucket { lo, hi, count })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((
                name.clone(),
                HistogramSnapshot {
                    count: get_u64(h, "count")?,
                    sum: get_u64(h, "sum")?,
                    buckets,
                },
            ))
        })
        .collect::<Result<BTreeMap<_, _>, _>>()?;
    Ok(MetricsSnapshot {
        counters: num_map("counters")?,
        gauges: num_map("gauges")?,
        histograms,
    })
}

fn encode_metrics_report(report: &MetricsReport) -> Json {
    obj(vec![
        ("service", encode_metrics_snapshot(&report.service)),
        (
            "worlds",
            Json::Arr(
                report
                    .worlds
                    .iter()
                    .map(|w| {
                        let Json::Obj(mut f) = encode_metrics_snapshot(&w.metrics) else {
                            unreachable!("snapshot encodes as an object");
                        };
                        f.insert("world".into(), Json::Str(w.name.clone()));
                        Json::Obj(f)
                    })
                    .collect(),
            ),
        ),
        (
            "slow_queries",
            Json::Arr(
                report
                    .slow_queries
                    .iter()
                    .map(|q| {
                        obj(vec![
                            ("world", Json::Str(q.world.clone())),
                            ("value", Json::Str(q.value.clone())),
                            ("method", Json::Str(q.method.clone())),
                            ("micros", Json::Num(q.micros as f64)),
                            ("cached", Json::Bool(q.cached)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_metrics_report(fields: &BTreeMap<String, Json>) -> Result<MetricsReport, WireError> {
    let Json::Obj(report) = get(fields, "metrics")? else {
        return Err(wire_err("field \"metrics\" must be an object"));
    };
    let Json::Arr(worlds) = get(report, "worlds")? else {
        return Err(wire_err("field \"metrics.worlds\" must be an array"));
    };
    let worlds = worlds
        .iter()
        .map(|item| {
            let Json::Obj(f) = item else {
                return Err(wire_err("metrics worlds must be objects"));
            };
            Ok(WorldMetrics {
                name: get_str(f, "world")?,
                metrics: decode_metrics_snapshot(item)?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let Json::Arr(slow) = get(report, "slow_queries")? else {
        return Err(wire_err("field \"metrics.slow_queries\" must be an array"));
    };
    let slow_queries = slow
        .iter()
        .map(|item| {
            let Json::Obj(f) = item else {
                return Err(wire_err("slow queries must be objects"));
            };
            Ok(SlowQueryEntry {
                world: get_str(f, "world")?,
                value: get_str(f, "value")?,
                method: get_str(f, "method")?,
                micros: get_u64(f, "micros")?,
                cached: get(f, "cached")?
                    .as_bool()
                    .ok_or_else(|| wire_err("field \"cached\" must be a boolean"))?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MetricsReport {
        service: decode_metrics_snapshot(get(report, "service")?)?,
        worlds,
        slow_queries,
    })
}

fn encode_admin_response(id: u64, admin: &AdminResponse) -> String {
    let mut fields = vec![("id", Json::Num(id as f64)), ("ok", Json::Bool(true))];
    match admin {
        AdminResponse::World { world, generation } => {
            fields.push(("world", Json::Str(world.clone())));
            fields.push(("generation", Json::Num(*generation as f64)));
        }
        AdminResponse::Loading { world } => {
            fields.push(("world", Json::Str(world.clone())));
            fields.push(("status", Json::Str("loading".into())));
        }
        AdminResponse::Saved {
            world,
            generation,
            snapshot_bytes,
        } => {
            fields.push(("world", Json::Str(world.clone())));
            fields.push(("generation", Json::Num(*generation as f64)));
            fields.push(("snapshot_bytes", Json::Num(*snapshot_bytes as f64)));
        }
        AdminResponse::Checkpoint {
            worlds,
            snapshot_bytes,
        } => {
            fields.push((
                "checkpoint",
                obj(vec![
                    ("worlds", Json::Num(*worlds as f64)),
                    ("snapshot_bytes", Json::Num(*snapshot_bytes as f64)),
                ]),
            ));
        }
        AdminResponse::List(worlds) => {
            fields.push((
                "worlds",
                Json::Arr(
                    worlds
                        .iter()
                        .map(|w| {
                            let mut f = vec![
                                ("world", Json::Str(w.name.clone())),
                                ("generation", Json::Num(w.generation as f64)),
                                ("state", Json::Str(w.state.wire_name().into())),
                                // As a hex string: u64 hashes exceed
                                // the exact-f64 range.
                                (
                                    "spec_hash",
                                    Json::Str(format!("{:016x}", w.spec.spec_hash())),
                                ),
                                // Per-world planner strategy mix (the
                                // world's planner.chosen.* counters).
                                (
                                    "planner_chosen",
                                    obj(Strategy::ALL
                                        .iter()
                                        .map(|s| {
                                            (
                                                s.wire_name(),
                                                Json::Num(w.planner_chosen[s.index()] as f64),
                                            )
                                        })
                                        .collect()),
                                ),
                            ];
                            encode_world_spec_fields(&w.spec, &mut f);
                            obj(f)
                        })
                        .collect(),
                ),
            ));
        }
        AdminResponse::Stats(stats) => {
            fields.push((
                "stats",
                obj(vec![
                    ("budget", Json::Num(stats.budget as f64)),
                    ("resident", Json::Num(stats.resident as f64)),
                    ("durable", Json::Bool(stats.durable)),
                    (
                        "worlds",
                        Json::Arr(
                            stats
                                .worlds
                                .iter()
                                .map(|w| {
                                    obj(vec![
                                        ("world", Json::Str(w.name.clone())),
                                        ("generation", Json::Num(w.generation as f64)),
                                        ("graphs", encode_cache_stats(&w.engine.graphs)),
                                        ("results", encode_cache_stats(&w.engine.results)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        AdminResponse::Metrics(report) => {
            fields.push(("metrics", encode_metrics_report(report)));
        }
        AdminResponse::Drained { worlds } => {
            fields.push(("drained", obj(vec![("worlds", Json::Num(*worlds as f64))])));
        }
    }
    obj(fields).encode()
}

/// Decodes one response line. The payload kind is inferred from the
/// discriminating field: `answers` (query), `worlds` (world.list),
/// `stats` (stats), `metrics` (metrics), or `world`
/// (load/swap/evict).
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let Json::Obj(fields) = Json::parse(line)? else {
        return Err(wire_err("response must be a JSON object"));
    };
    let id = get_u64(&fields, "id")?;
    let ok = get(&fields, "ok")?
        .as_bool()
        .ok_or_else(|| wire_err("field \"ok\" must be a boolean"))?;
    if !ok {
        return Ok(Response {
            id,
            outcome: Err(get_str(&fields, "error")?),
        });
    }
    let body = if fields.contains_key("answers") {
        ResponseBody::Query(decode_query_response(&fields)?)
    } else if fields.contains_key("worlds") {
        ResponseBody::Admin(AdminResponse::List(decode_world_list(&fields)?))
    } else if fields.contains_key("stats") {
        ResponseBody::Admin(AdminResponse::Stats(decode_service_stats(&fields)?))
    } else if fields.contains_key("metrics") {
        ResponseBody::Admin(AdminResponse::Metrics(decode_metrics_report(&fields)?))
    } else if let Some(v) = fields.get("drained") {
        let Json::Obj(f) = v else {
            return Err(wire_err("field \"drained\" must be an object"));
        };
        ResponseBody::Admin(AdminResponse::Drained {
            worlds: get_u64(f, "worlds")? as usize,
        })
    } else if let Some(v) = fields.get("checkpoint") {
        let Json::Obj(f) = v else {
            return Err(wire_err("field \"checkpoint\" must be an object"));
        };
        ResponseBody::Admin(AdminResponse::Checkpoint {
            worlds: get_u64(f, "worlds")? as usize,
            snapshot_bytes: get_u64(f, "snapshot_bytes")?,
        })
    } else if fields.contains_key("snapshot_bytes") {
        // Checked before the generic "world" payload: a `world.save`
        // ack carries all three fields.
        ResponseBody::Admin(AdminResponse::Saved {
            world: get_str(&fields, "world")?,
            generation: get_u64(&fields, "generation")?,
            snapshot_bytes: get_u64(&fields, "snapshot_bytes")?,
        })
    } else if fields.contains_key("status") {
        match get_str(&fields, "status")?.as_str() {
            "loading" => ResponseBody::Admin(AdminResponse::Loading {
                world: get_str(&fields, "world")?,
            }),
            other => return Err(wire_err(format!("unknown status {other:?}"))),
        }
    } else if fields.contains_key("world") {
        ResponseBody::Admin(AdminResponse::World {
            world: get_str(&fields, "world")?,
            generation: get_u64(&fields, "generation")?,
        })
    } else {
        return Err(wire_err("response payload has no recognizable kind"));
    };
    Ok(Response {
        id,
        outcome: Ok(body),
    })
}

/// Encodes the **id-less** connection-shed notice the accept loop
/// writes instead of serving a connection when the connection budget
/// is exhausted: `{"error":"overloaded","retry_after_ms":N}`. It has
/// no `id` because no request was read — the notice applies to the
/// connection itself, which the server closes right after.
pub fn encode_overload_line(retry_after_ms: u64) -> String {
    obj(vec![
        ("error", Json::Str("overloaded".to_string())),
        ("retry_after_ms", Json::Num(retry_after_ms as f64)),
    ])
    .encode()
}

/// Recognizes a connection-shed notice (see [`encode_overload_line`])
/// and returns its `retry_after_ms` hint. Lines carrying an `id` are
/// ordinary responses, never shed notices.
pub fn parse_overload_line(line: &str) -> Option<u64> {
    let Ok(Json::Obj(fields)) = Json::parse(line) else {
        return None;
    };
    if fields.contains_key("id") || fields.get("error")?.as_str()? != "overloaded" {
        return None;
    }
    fields.get("retry_after_ms")?.as_u64()
}

fn decode_query_response(fields: &BTreeMap<String, Json>) -> Result<QueryResponse, WireError> {
    let answers = match get(fields, "answers")? {
        Json::Arr(items) => items
            .iter()
            .map(|item| {
                let Json::Obj(f) = item else {
                    return Err(wire_err("answers must be objects"));
                };
                Ok(RankedAnswer {
                    key: get_str(f, "key")?,
                    label: get_str(f, "label")?,
                    score: get(f, "score")?
                        .as_f64()
                        .ok_or_else(|| wire_err("field \"score\" must be a number"))?,
                    rank_lo: get_u64(f, "rank_lo")? as usize,
                    rank_hi: get_u64(f, "rank_hi")? as usize,
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(wire_err("field \"answers\" must be an array")),
    };
    let certificate = fields
        .get("certificate")
        .map(|v| {
            let Json::Obj(f) = v else {
                return Err(wire_err("field \"certificate\" must be an object"));
            };
            // Absent mode means full certification (the only mode
            // before top-k certification existed).
            let mode = match f.get("mode").map(|m| m.as_str()) {
                None | Some(Some("full")) => CertificateMode::Full,
                Some(Some("top_k")) => CertificateMode::TopK(
                    get_u64(f, "k")?
                        .try_into()
                        .map_err(|_| wire_err("certificate \"k\" must fit in u32"))?,
                ),
                _ => {
                    return Err(wire_err(
                        "certificate \"mode\" must be \"full\" or \"top_k\"",
                    ))
                }
            };
            Ok(Certificate {
                trials_used: get_u64(f, "trials_used")?
                    .try_into()
                    .map_err(|_| wire_err("field \"trials_used\" must fit in u32"))?,
                epsilon: get(f, "epsilon")?
                    .as_f64()
                    .ok_or_else(|| wire_err("field \"epsilon\" must be a number"))?,
                certified: get(f, "certified")?
                    .as_bool()
                    .ok_or_else(|| wire_err("field \"certified\" must be a boolean"))?,
                mode,
            })
        })
        .transpose()?;
    Ok(QueryResponse {
        answers,
        total_answers: get_u64(fields, "total")? as usize,
        certificate,
        cached_graph: get(fields, "cached_graph")?
            .as_bool()
            .ok_or_else(|| wire_err("field \"cached_graph\" must be a boolean"))?,
        cached_scores: get(fields, "cached_scores")?
            .as_bool()
            .ok_or_else(|| wire_err("field \"cached_scores\" must be a boolean"))?,
        micros: get_u64(fields, "micros")?,
        trace: fields
            .get("trace")
            .map(|v| {
                let Json::Arr(items) = v else {
                    return Err(wire_err("field \"trace\" must be an array"));
                };
                items
                    .iter()
                    .map(|item| {
                        let Json::Obj(f) = item else {
                            return Err(wire_err("trace spans must be objects"));
                        };
                        Ok(TraceSpan {
                            stage: get_str(f, "stage")?,
                            nanos: get_u64(f, "nanos")?,
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?
            .unwrap_or_default(),
        plan: fields.get("plan").map(decode_plan).transpose()?,
    })
}

fn decode_world_list(fields: &BTreeMap<String, Json>) -> Result<Vec<WorldInfo>, WireError> {
    let Json::Arr(items) = get(fields, "worlds")? else {
        return Err(wire_err("field \"worlds\" must be an array"));
    };
    items
        .iter()
        .map(|item| {
            let Json::Obj(f) = item else {
                return Err(wire_err("worlds must be objects"));
            };
            let state = f
                .get("state")
                .map(|v| {
                    v.as_str()
                        .and_then(WorldState::parse)
                        .ok_or_else(|| wire_err("field \"state\" must be \"ready\" or \"loading\""))
                })
                .transpose()?
                .unwrap_or_default();
            // Absent on pre-planner servers: default to all-zero.
            let mut planner_chosen = [0u64; 4];
            if let Some(Json::Obj(counts)) = f.get("planner_chosen") {
                for s in Strategy::ALL {
                    if let Some(v) = counts.get(s.wire_name()) {
                        planner_chosen[s.index()] = v
                            .as_f64()
                            .filter(|n| *n >= 0.0)
                            .map(|n| n as u64)
                            .ok_or_else(|| {
                                wire_err("planner_chosen counts must be non-negative numbers")
                            })?;
                    }
                }
            }
            Ok(WorldInfo {
                name: get_str(f, "world")?,
                spec: decode_world_spec(f)?,
                generation: get_u64(f, "generation")?,
                state,
                planner_chosen,
            })
        })
        .collect()
}

fn decode_service_stats(fields: &BTreeMap<String, Json>) -> Result<ServiceStats, WireError> {
    let Json::Obj(stats) = get(fields, "stats")? else {
        return Err(wire_err("field \"stats\" must be an object"));
    };
    let Json::Arr(items) = get(stats, "worlds")? else {
        return Err(wire_err("field \"stats.worlds\" must be an array"));
    };
    let worlds = items
        .iter()
        .map(|item| {
            let Json::Obj(f) = item else {
                return Err(wire_err("stats worlds must be objects"));
            };
            Ok(WorldStats {
                name: get_str(f, "world")?,
                generation: get_u64(f, "generation")?,
                engine: EngineStats {
                    graphs: decode_cache_stats(get(f, "graphs")?)?,
                    results: decode_cache_stats(get(f, "results")?)?,
                },
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ServiceStats {
        budget: get_u64(stats, "budget")? as usize,
        resident: get_u64(stats, "resident")? as usize,
        // Absent on pre-durability servers: decode to false.
        durable: match stats.get("durable") {
            Some(v) => v
                .as_bool()
                .ok_or_else(|| wire_err("field \"durable\" must be a boolean"))?,
            None => false,
        },
        worlds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_basics() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-12.5",
            "1e-3",
            "\"hi \\\"there\\\" \\n\"",
            "[1,2,[3],{}]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let re = Json::parse(&v.encode()).unwrap();
            assert_eq!(v, re, "{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\"}",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("é😀".to_string()));
        // Raw UTF-8 also passes through.
        let v = Json::parse("\"é😀\"").unwrap();
        assert_eq!(v, Json::Str("é😀".to_string()));
        // A high surrogate must pair with a low one.
        for bad in [
            "\"\\ud800\"",
            "\"\\ud800\\u0061\"",
            "\"\\ud800x\"",
            "\"\\udc00\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for f in [0.123456789012345678, 1.0 / 3.0, 1e-17, 0.4375] {
            let enc = Json::Num(f).encode();
            let Json::Num(back) = Json::parse(&enc).unwrap() else {
                panic!("not a number");
            };
            assert_eq!(f.to_bits(), back.to_bits(), "{enc}");
        }
    }

    fn query_of(r: &Request) -> &QueryRequest {
        match &r.body {
            RequestBody::Query(q) => q,
            RequestBody::Admin(a) => panic!("expected a query, got {a:?}"),
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = Request {
            id: 7,
            body: RequestBody::Query(QueryRequest {
                query: ExploratoryQuery::protein_functions("GALT"),
                spec: RankerSpec {
                    method: Method::Reliability,
                    trials: Trials::Fixed(1000),
                    seed: 42,
                    parallel: false,
                    estimator: None,
                },
                top: Some(5),
                certify_top: false,
                world: None,
                trace: false,
                deadline_ms: None,
            }),
        };
        let line = encode_request(&r);
        assert!(!line.contains('\n'));
        assert!(!line.contains("certify_top"), "{line}");
        assert_eq!(decode_request(&line).unwrap(), r);

        // World routing, the parallel flag, and the estimator
        // selection survive the wire too.
        for estimator in [
            None,
            Some(Estimator::Traversal),
            Some(Estimator::Word),
            Some(Estimator::Auto),
        ] {
            let r = Request {
                id: 8,
                body: RequestBody::Query(QueryRequest {
                    query: ExploratoryQuery::protein_functions("CFTR"),
                    spec: RankerSpec {
                        method: Method::TraversalMc,
                        trials: Trials::Fixed(100),
                        seed: 9,
                        parallel: true,
                        estimator,
                    },
                    top: None,
                    certify_top: false,
                    world: Some("staging".into()),
                    trace: false,
                    deadline_ms: None,
                }),
            };
            assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
        }
    }

    #[test]
    fn certify_top_roundtrips_and_defaults_off() {
        let r = Request {
            id: 12,
            body: RequestBody::Query(
                QueryRequest::protein_functions(
                    "GALT",
                    RankerSpec {
                        trials: Trials::Adaptive(AdaptiveConfig::default()),
                        ..RankerSpec::new(Method::TraversalMc)
                    },
                )
                .certified_top(10),
            ),
        };
        let line = encode_request(&r);
        assert!(line.contains("\"certify_top\":true"), "{line}");
        assert!(line.contains("\"top\":10"), "{line}");
        assert_eq!(decode_request(&line).unwrap(), r);
        // Absent field decodes to false; garbage is rejected.
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\"}";
        assert!(!query_of(&decode_request(line).unwrap()).certify_top);
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\",\"certify_top\":3}";
        assert!(decode_request(line).is_err());
    }

    #[test]
    fn adaptive_trials_roundtrip_and_default() {
        // The adaptive policy object survives the wire bit-exactly.
        let r = Request {
            id: 9,
            body: RequestBody::Query(QueryRequest {
                query: ExploratoryQuery::protein_functions("GALT"),
                spec: RankerSpec {
                    method: Method::TraversalMc,
                    trials: Trials::Adaptive(AdaptiveConfig {
                        epsilon: 1.0 / 3.0,
                        delta: 0.01,
                        max_trials: 20_000,
                    }),
                    seed: 42,
                    parallel: false,
                    estimator: Some(Estimator::Word),
                },
                top: None,
                certify_top: false,
                world: None,
                trace: false,
                deadline_ms: None,
            }),
        };
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);

        // Absent adaptive fields default to the paper's parameters.
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\",\"trials\":{}}";
        let q = decode_request(line).unwrap();
        assert_eq!(
            query_of(&q).spec.trials,
            Trials::Adaptive(AdaptiveConfig::default())
        );
        // Partial objects keep what they set.
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\",\
                    \"trials\":{\"epsilon\":0.1,\"max\":500}}";
        let q = decode_request(line).unwrap();
        assert_eq!(
            query_of(&q).spec.trials,
            Trials::Adaptive(AdaptiveConfig {
                epsilon: 0.1,
                delta: 0.05,
                max_trials: 500,
            })
        );
        // Garbage is rejected.
        for bad in [
            "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
             \"outputs\":[\"B\"],\"method\":\"mc\",\"trials\":\"lots\"}",
            "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
             \"outputs\":[\"B\"],\"method\":\"mc\",\"trials\":{\"epsilon\":\"x\"}}",
        ] {
            assert!(decode_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn server_defaults_apply_to_unset_trials_only() {
        let adaptive = RequestDefaults {
            trials: Trials::Adaptive(AdaptiveConfig::default()),
            ..RequestDefaults::default()
        };
        let unset = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                     \"outputs\":[\"B\"],\"method\":\"mc\"}";
        let q = decode_request_with(unset, &adaptive).unwrap();
        assert_eq!(query_of(&q).spec.trials, adaptive.trials);
        // An explicit fixed count always wins over the house policy.
        let explicit = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                        \"outputs\":[\"B\"],\"method\":\"mc\",\"trials\":77}";
        let q = decode_request_with(explicit, &adaptive).unwrap();
        assert_eq!(query_of(&q).spec.trials, Trials::Fixed(77));
    }

    #[test]
    fn admin_request_roundtrip() {
        for admin in [
            AdminRequest::Load {
                world: "staging".into(),
                spec: WorldSpec {
                    seed: (1u64 << 60) + 3,
                    extended: true,
                    cache_capacity: 64,
                },
                background: false,
            },
            AdminRequest::Load {
                world: "staging".into(),
                spec: WorldSpec::default(),
                background: true,
            },
            AdminRequest::Swap {
                world: "staging".into(),
                spec: WorldSpec::default(),
                warm: 0,
            },
            AdminRequest::Swap {
                world: "staging".into(),
                spec: WorldSpec::default(),
                warm: 32,
            },
            AdminRequest::Evict {
                world: "staging".into(),
            },
            AdminRequest::List,
            AdminRequest::Stats,
        ] {
            let r = Request {
                id: 11,
                body: RequestBody::Admin(admin),
            };
            assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
        }
        // Spec fields default when omitted; loads default to
        // foreground, swaps to the default warm-up count.
        let r = decode_request("{\"id\":1,\"cmd\":\"world.load\",\"world\":\"w\"}").unwrap();
        assert_eq!(
            r.body,
            RequestBody::Admin(AdminRequest::Load {
                world: "w".into(),
                spec: WorldSpec::default(),
                background: false,
            })
        );
        let r = decode_request("{\"id\":1,\"cmd\":\"world.swap\",\"world\":\"w\"}").unwrap();
        assert_eq!(
            r.body,
            RequestBody::Admin(AdminRequest::Swap {
                world: "w".into(),
                spec: WorldSpec::default(),
                warm: DEFAULT_SWAP_WARM,
            })
        );
        assert!(decode_request("{\"id\":1,\"cmd\":\"world.revolve\"}").is_err());
    }

    #[test]
    fn loading_response_roundtrip() {
        let loading = Response {
            id: 5,
            outcome: Ok(ResponseBody::Admin(AdminResponse::Loading {
                world: "staging".into(),
            })),
        };
        let line = encode_response(&loading);
        assert!(line.contains("\"status\":\"loading\""), "{line}");
        assert_eq!(decode_response(&line).unwrap(), loading);
    }

    #[test]
    fn admin_response_roundtrip() {
        let world = Response {
            id: 1,
            outcome: Ok(ResponseBody::Admin(AdminResponse::World {
                world: "staging".into(),
                generation: 3,
            })),
        };
        assert_eq!(decode_response(&encode_response(&world)).unwrap(), world);

        let list = Response {
            id: 2,
            outcome: Ok(ResponseBody::Admin(AdminResponse::List(vec![
                WorldInfo {
                    name: "default".into(),
                    spec: WorldSpec::default(),
                    generation: 1,
                    state: WorldState::Ready,
                    planner_chosen: [2, 0, 17, 1],
                },
                WorldInfo {
                    name: "staging".into(),
                    spec: WorldSpec::default(),
                    generation: 0,
                    state: WorldState::Loading,
                    planner_chosen: [0; 4],
                },
            ]))),
        };
        assert_eq!(decode_response(&encode_response(&list)).unwrap(), list);

        let stats = Response {
            id: 3,
            outcome: Ok(ResponseBody::Admin(AdminResponse::Stats(ServiceStats {
                budget: 4,
                resident: 1,
                durable: true,
                worlds: vec![WorldStats {
                    name: "default".into(),
                    generation: 2,
                    engine: EngineStats {
                        graphs: CacheStats {
                            hits: 3,
                            misses: 1,
                            entries: 1,
                            inserts: 2,
                            rejected: 1,
                        },
                        results: CacheStats::default(),
                    },
                }],
            }))),
        };
        assert_eq!(decode_response(&encode_response(&stats)).unwrap(), stats);
    }

    #[test]
    fn durability_admin_roundtrip() {
        // Requests: world.save and checkpoint.
        for admin in [
            AdminRequest::Save {
                world: "staging".into(),
            },
            AdminRequest::Checkpoint,
        ] {
            let r = Request {
                id: 9,
                body: RequestBody::Admin(admin),
            };
            assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
        }

        // Responses: Saved must win the discrimination against the
        // plain World payload (it also carries "world"/"generation").
        let saved = Response {
            id: 10,
            outcome: Ok(ResponseBody::Admin(AdminResponse::Saved {
                world: "staging".into(),
                generation: 7,
                snapshot_bytes: 4096,
            })),
        };
        let line = encode_response(&saved);
        assert!(line.contains("\"snapshot_bytes\":4096"), "{line}");
        assert_eq!(decode_response(&line).unwrap(), saved);

        let checkpoint = Response {
            id: 11,
            outcome: Ok(ResponseBody::Admin(AdminResponse::Checkpoint {
                worlds: 2,
                snapshot_bytes: 8192,
            })),
        };
        assert_eq!(
            decode_response(&encode_response(&checkpoint)).unwrap(),
            checkpoint
        );

        // world.list carries a stable spec_hash string; decode ignores
        // it (the spec itself round-trips) but operators diff it.
        let list = Response {
            id: 12,
            outcome: Ok(ResponseBody::Admin(AdminResponse::List(vec![WorldInfo {
                name: "default".into(),
                spec: WorldSpec::default(),
                generation: 1,
                state: WorldState::Ready,
                planner_chosen: [0; 4],
            }]))),
        };
        let line = encode_response(&list);
        let hash = format!("{:016x}", WorldSpec::default().spec_hash());
        assert!(line.contains(&hash), "{line}");
        assert_eq!(decode_response(&line).unwrap(), list);

        // A pre-durability stats payload (no "durable") decodes to
        // durable: false.
        let line = "{\"id\":1,\"ok\":true,\"stats\":{\"budget\":4,\"resident\":0,\"worlds\":[]}}";
        match decode_response(line).unwrap().outcome.unwrap() {
            ResponseBody::Admin(AdminResponse::Stats(s)) => assert!(!s.durable),
            other => panic!("unexpected payload: {other:?}"),
        }
    }

    #[test]
    fn seeds_above_2_pow_53_survive_the_wire_exactly() {
        let mut r = Request {
            id: 1,
            body: RequestBody::Query(QueryRequest {
                query: ExploratoryQuery::protein_functions("GALT"),
                spec: RankerSpec {
                    method: Method::TraversalMc,
                    trials: Trials::Fixed(10),
                    seed: (1u64 << 60) + 1,
                    parallel: false,
                    estimator: None,
                },
                top: None,
                certify_top: false,
                world: None,
                trace: false,
                deadline_ms: None,
            }),
        };
        for seed in [(1u64 << 60) + 1, u64::MAX, 0] {
            let RequestBody::Query(q) = &mut r.body else {
                unreachable!()
            };
            q.spec.seed = seed;
            let back = decode_request(&encode_request(&r)).unwrap();
            assert_eq!(query_of(&back).spec.seed, seed);
        }
        // Hand-written clients may still send a small JSON integer.
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\",\"seed\":42}";
        assert_eq!(query_of(&decode_request(line).unwrap()).spec.seed, 42);
    }

    #[test]
    fn request_defaults_apply() {
        let line = "{\"id\":1,\"input\":\"EntrezProtein\",\"attribute\":\"name\",\
                    \"value\":\"GALT\",\"outputs\":[\"AmiGO\"],\"method\":\"pathc\"}";
        let r = decode_request(line).unwrap();
        let q = query_of(&r);
        assert_eq!(q.spec.trials, Trials::Fixed(RankerSpec::DEFAULT_TRIALS));
        assert_eq!(q.spec.seed, RankerSpec::DEFAULT_SEED);
        assert!(!q.spec.parallel);
        assert_eq!(q.spec.estimator, None);
        assert_eq!(q.top, None);
        assert_eq!(q.world, None);
        assert_eq!(q.deadline_ms, None);
    }

    #[test]
    fn deadline_ms_roundtrips_and_server_default_applies() {
        // Explicit field survives encode → decode.
        let r = Request {
            id: 3,
            body: RequestBody::Query(
                QueryRequest::protein_functions("GALT", RankerSpec::new(Method::TraversalMc))
                    .with_deadline_ms(2_500),
            ),
        };
        let line = encode_request(&r);
        assert!(line.contains("\"deadline_ms\":2500"), "{line}");
        assert_eq!(decode_request(&line).unwrap(), r);

        // The serve-level default fills unset requests; an explicit
        // field always wins over it.
        let with_default = RequestDefaults {
            deadline_ms: Some(750),
            ..RequestDefaults::default()
        };
        let unset = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                     \"outputs\":[\"B\"],\"method\":\"mc\"}";
        let q = decode_request_with(unset, &with_default).unwrap();
        assert_eq!(query_of(&q).deadline_ms, Some(750));
        let explicit = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                        \"outputs\":[\"B\"],\"method\":\"mc\",\"deadline_ms\":100}";
        let q = decode_request_with(explicit, &with_default).unwrap();
        assert_eq!(query_of(&q).deadline_ms, Some(100));

        // Garbage is rejected: zero, negative, or non-numeric.
        for bad in [
            "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
             \"outputs\":[\"B\"],\"method\":\"mc\",\"deadline_ms\":0}",
            "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
             \"outputs\":[\"B\"],\"method\":\"mc\",\"deadline_ms\":\"soon\"}",
            "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
             \"outputs\":[\"B\"],\"method\":\"mc\",\"deadline_ms\":-5}",
        ] {
            assert!(decode_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn drain_roundtrips() {
        // Request: cmd form and typed form agree.
        let r = Request {
            id: 11,
            body: RequestBody::Admin(AdminRequest::Drain),
        };
        let line = encode_request(&r);
        assert!(line.contains("\"cmd\":\"server.drain\""), "{line}");
        assert_eq!(decode_request(&line).unwrap(), r);

        // Response roundtrip.
        let resp = Response {
            id: 11,
            outcome: Ok(ResponseBody::Admin(AdminResponse::Drained { worlds: 2 })),
        };
        let line = encode_response(&resp);
        assert!(line.contains("\"drained\""), "{line}");
        assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn overload_line_roundtrips_and_rejects_lookalikes() {
        let line = encode_overload_line(250);
        assert_eq!(line, "{\"error\":\"overloaded\",\"retry_after_ms\":250}");
        assert_eq!(parse_overload_line(&line), Some(250));
        // An ordinary error response has an id: not a shed notice.
        assert_eq!(
            parse_overload_line("{\"id\":3,\"ok\":false,\"error\":\"overloaded\"}"),
            None
        );
        assert_eq!(parse_overload_line("{\"error\":\"boom\"}"), None);
        assert_eq!(parse_overload_line("not json"), None);
    }

    #[test]
    fn decode_request_rejects_unknown_estimator() {
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\",\"estimator\":\"magic\"}";
        assert!(decode_request(line).is_err());
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"mc\",\"estimator\":\"word\"}";
        let r = decode_request(line).unwrap();
        assert_eq!(query_of(&r).spec.estimator, Some(Estimator::Word));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response {
            id: 3,
            outcome: Ok(ResponseBody::Query(QueryResponse {
                answers: vec![RankedAnswer {
                    key: "GO:0004335".into(),
                    label: "galactokinase \"activity\"".into(),
                    score: 1.0 / 3.0,
                    rank_lo: 1,
                    rank_hi: 2,
                }],
                total_answers: 15,
                certificate: None,
                cached_graph: true,
                cached_scores: false,
                micros: 812,
                trace: vec![],
                plan: None,
            })),
        };
        let line = encode_response(&resp);
        assert!(!line.contains("certificate"), "{line}");
        assert_eq!(decode_response(&line).unwrap(), resp);
        let err = Response {
            id: 4,
            outcome: Err("no records in EntrezProtein match \"NOPE\"".into()),
        };
        assert_eq!(decode_response(&encode_response(&err)).unwrap(), err);
    }

    #[test]
    fn certificate_roundtrips_bit_exactly() {
        let resp = Response {
            id: 6,
            outcome: Ok(ResponseBody::Query(QueryResponse {
                answers: vec![],
                total_answers: 0,
                certificate: Some(Certificate {
                    trials_used: 448,
                    epsilon: 0.08839224356,
                    certified: true,
                    mode: CertificateMode::Full,
                }),
                cached_graph: false,
                cached_scores: true,
                micros: 12,
                trace: vec![],
                plan: None,
            })),
        };
        let line = encode_response(&resp);
        assert!(line.contains("\"mode\":\"full\""), "{line}");
        let back = decode_response(&line).unwrap();
        let Ok(ResponseBody::Query(q)) = &back.outcome else {
            panic!("not a query response: {line}");
        };
        let cert = q.certificate.expect("certificate survives the wire");
        assert_eq!(cert.trials_used, 448);
        assert_eq!(cert.epsilon.to_bits(), 0.08839224356f64.to_bits());
        assert!(cert.certified);
        assert_eq!(cert.mode, CertificateMode::Full);
        assert_eq!(back, resp);
    }

    #[test]
    fn top_k_certificate_mode_survives_the_wire() {
        let resp = Response {
            id: 7,
            outcome: Ok(ResponseBody::Query(QueryResponse {
                answers: vec![],
                total_answers: 97,
                certificate: Some(Certificate {
                    trials_used: 192,
                    epsilon: 0.25,
                    certified: true,
                    mode: CertificateMode::TopK(10),
                }),
                cached_graph: true,
                cached_scores: false,
                micros: 3,
                trace: vec![],
                plan: None,
            })),
        };
        let line = encode_response(&resp);
        assert!(
            line.contains("\"mode\":\"top_k\"") && line.contains("\"k\":10"),
            "{line}"
        );
        assert_eq!(decode_response(&line).unwrap(), resp);
        // A certificate without a mode is a legacy full certificate.
        let legacy = line
            .replace(",\"mode\":\"top_k\"", "")
            .replace(",\"k\":10", "");
        let Ok(ResponseBody::Query(q)) = decode_response(&legacy).unwrap().outcome else {
            panic!("not a query response: {legacy}");
        };
        assert_eq!(q.certificate.unwrap().mode, CertificateMode::Full);
        // top_k without k, or an unknown mode, is rejected.
        let broken = line.replace(",\"k\":10", "");
        assert!(decode_response(&broken).is_err(), "{broken}");
        let unknown = line.replace("\"mode\":\"top_k\"", "\"mode\":\"sideways\"");
        assert!(decode_response(&unknown).is_err(), "{unknown}");
    }

    #[test]
    fn trace_flag_and_spans_roundtrip() {
        // The request flag is omitted when off, present when on.
        let plain = Request {
            id: 20,
            body: RequestBody::Query(QueryRequest::protein_functions(
                "GALT",
                RankerSpec::new(Method::TraversalMc),
            )),
        };
        let line = encode_request(&plain);
        assert!(!line.contains("trace"), "{line}");
        assert_eq!(decode_request(&line).unwrap(), plain);

        let traced = Request {
            id: 21,
            body: RequestBody::Query(
                QueryRequest::protein_functions("GALT", RankerSpec::new(Method::TraversalMc))
                    .traced(),
            ),
        };
        let line = encode_request(&traced);
        assert!(line.contains("\"trace\":true"), "{line}");
        assert_eq!(decode_request(&line).unwrap(), traced);

        // Span arrays survive the response wire; empty traces are
        // omitted (tested by response_roundtrip above).
        let resp = Response {
            id: 21,
            outcome: Ok(ResponseBody::Query(QueryResponse {
                answers: vec![],
                total_answers: 0,
                certificate: None,
                cached_graph: false,
                cached_scores: false,
                micros: 55,
                trace: vec![
                    TraceSpan {
                        stage: "cache".into(),
                        nanos: 412,
                    },
                    TraceSpan {
                        stage: "estimate".into(),
                        nanos: 1_000_000,
                    },
                ],
                plan: None,
            })),
        };
        let line = encode_response(&resp);
        assert!(line.contains("\"stage\":\"cache\""), "{line}");
        assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn plan_echo_roundtrips() {
        // The planner echo rides the response next to the certificate:
        // strategy, prediction, and the full feature vector survive the
        // wire, and both trial policies keep their distinct keys.
        for (trials, key) in [
            (TrialsPolicy::Fixed(10_000), "\"trials\":10000"),
            (
                TrialsPolicy::Adaptive { max_trials: 65_536 },
                "\"max_trials\":65536",
            ),
        ] {
            let resp = Response {
                id: 40,
                outcome: Ok(ResponseBody::Query(QueryResponse {
                    answers: vec![],
                    total_answers: 97,
                    certificate: None,
                    cached_graph: true,
                    cached_scores: false,
                    micros: 210,
                    trace: vec![],
                    plan: Some(Plan {
                        strategy: Strategy::WordMc,
                        predicted_ns: 1_480_000,
                        features: PlanFeatures {
                            graph: GraphFeatures {
                                nodes: 185,
                                edges: 329,
                                answers: 97,
                                acyclic: true,
                                reduced_nodes: 129,
                                reduced_edges: 269,
                                schema_reducible: true,
                            },
                            top_k: Some(10),
                            trials,
                        },
                        fallback: false,
                    }),
                })),
            };
            let line = encode_response(&resp);
            assert!(line.contains("\"strategy\":\"word\""), "{line}");
            assert!(line.contains(key), "{line}");
            assert_eq!(decode_response(&line).unwrap(), resp);
        }
    }

    #[test]
    fn metrics_admin_roundtrip() {
        // Request: reset defaults off and is omitted from the line.
        for reset in [false, true] {
            let r = Request {
                id: 30,
                body: RequestBody::Admin(AdminRequest::Metrics { reset }),
            };
            let line = encode_request(&r);
            assert_eq!(line.contains("reset"), reset, "{line}");
            assert_eq!(decode_request(&line).unwrap(), r);
        }

        // Response: a populated report — service + per-world snapshots
        // and slow-query entries — survives the wire exactly,
        // histogram bucket bounds included (the top bucket's bounds
        // exceed 2^53 and travel as a bucket index).
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "stage_ns.estimate".to_string(),
            HistogramSnapshot {
                count: 3,
                sum: u64::from(u32::MAX),
                buckets: vec![
                    HistogramBucket {
                        lo: 512,
                        hi: 1024,
                        count: 2,
                    },
                    HistogramBucket {
                        lo: 1u64 << 63,
                        hi: u64::MAX,
                        count: 1,
                    },
                ],
            },
        );
        let snapshot = |queries: u64| MetricsSnapshot {
            counters: [("queries".to_string(), queries)].into_iter().collect(),
            gauges: [("tenancy.resident".to_string(), 2u64)]
                .into_iter()
                .collect(),
            histograms: histograms.clone(),
        };
        let report = MetricsReport {
            service: snapshot(9),
            worlds: vec![
                WorldMetrics {
                    name: "default".into(),
                    metrics: snapshot(6),
                },
                WorldMetrics {
                    name: "staging".into(),
                    metrics: snapshot(3),
                },
            ],
            slow_queries: vec![SlowQueryEntry {
                world: "default".into(),
                value: "GALT".into(),
                method: "mc".into(),
                micros: 48_211,
                cached: false,
            }],
        };
        let resp = Response {
            id: 31,
            outcome: Ok(ResponseBody::Admin(AdminResponse::Metrics(report))),
        };
        let line = encode_response(&resp);
        assert!(line.contains("\"metrics\""), "{line}");
        assert!(line.contains("\"slow_queries\""), "{line}");
        assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn cache_stats_decode_tolerates_missing_insert_counters() {
        // A pre-telemetry stats payload (hits/misses/entries only)
        // still decodes; the new counters default to zero.
        let legacy =
            Json::parse("{\"hits\":3,\"misses\":1,\"entries\":1,\"hit_rate\":0.75}").unwrap();
        assert_eq!(
            decode_cache_stats(&legacy).unwrap(),
            CacheStats {
                hits: 3,
                misses: 1,
                entries: 1,
                inserts: 0,
                rejected: 0,
            }
        );
    }

    #[test]
    fn decode_request_rejects_unknown_method() {
        let line = "{\"id\":1,\"input\":\"A\",\"attribute\":\"x\",\"value\":\"v\",\
                    \"outputs\":[\"B\"],\"method\":\"magic\"}";
        assert!(decode_request(line).is_err());
    }
}
