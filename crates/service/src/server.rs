//! The TCP front end: line-delimited JSON over `std::net`.
//!
//! One thread accepts connections; each connection gets a reader
//! thread that decodes request lines and submits them to the shared
//! [`WorkerPool`], plus a writer thread that puts responses back on
//! the socket **in request order** (a `BTreeMap` re-sequencing buffer
//! absorbs out-of-order completions). Clients may therefore pipeline
//! requests freely and match responses positionally or by id.
//!
//! Requests route through a [`WorldManager`]: a query names a resident
//! world (or defaults to [`DEFAULT_WORLD`](crate::tenancy::DEFAULT_WORLD)),
//! and admin lines (`world.load`, `world.swap`, `world.evict`,
//! `world.list`, `stats`, `metrics`) drive the registry itself over
//! the same connection. Admin commands are a per-connection barrier: queries
//! pipelined before a `world.swap` finish before it executes, and
//! queries after it see the new world.
//!
//! **Fusion is invisible on the wire.** Concurrent identical queries
//! may be answered by one computation (single-flight), and concurrent
//! word-estimator Monte Carlo queries on the same exploratory query
//! may share fused propagation sweeps — but there is no request field
//! to ask for either, no response field that reveals them, and the
//! response bytes are identical to an unfused execution. Only the
//! `metrics` admin op shows the coalescing (`queries.coalesced`,
//! `fusion.batches`, `fusion.lanes_used`, `fusion_width`).
//!
//! **Planning is opt-out, not invisible.** The serve default is
//! `estimator: "auto"`: the engine scores exact / reduced / word /
//! traversal strategies against a calibrated cost model and runs the
//! cheapest, echoing `plan: {strategy, predicted_ns, fallback,
//! features}` on the response next to the certificate. The echo is
//! observational only — a planned request and an explicit request for
//! the chosen strategy share one cache entry and identical answer
//! bytes. An explicit `estimator` (or a non-`mc` method) routes
//! around the planner entirely. Per-world `planner.chosen.<strategy>`,
//! `planner.fallback`, and `planner.recalibrations` counters appear in
//! the `metrics` admin op, and `world.list` rows carry the same
//! chosen-strategy rollup.
//!
//! **Metrics histogram echo.** The `metrics` admin op serialises each
//! histogram's non-empty buckets as `[bucket_index, count]` pairs —
//! the first element is the log₂ bucket *index* (bucket 0 holds exact
//! zeros, bucket `i ≥ 1` holds `[2^(i−1), 2^i)`), never a value
//! bound, so the top buckets' > 2⁵³ bounds survive f64 JSON exactly;
//! decoders recompute bounds from the index.
//!
//! **Overload behavior.** Admission control is layered
//! (see [`crate::admission`]):
//!
//! 1. *Connection budget* — when all `max_connections` permits are
//!    out, the accept loop writes one id-less
//!    `{"error":"overloaded","retry_after_ms":N}` line and closes
//!    instead of spawning a thread (`shed.connections`).
//! 2. *Bounded request queue* — a query arriving while `queue_depth`
//!    requests are already admitted-but-unanswered is refused with a
//!    normal error response whose message starts with `overloaded`
//!    and embeds `retry_after_ms=N` (`shed.requests`).
//! 3. *Rate limit* — an optional per-connection token bucket sheds
//!    the same way (`shed.rate_limited`).
//! 4. *Line limits* — a request line larger than `max_request_bytes`
//!    is answered with one error and the connection closed, without
//!    buffering past the cap (`limits.oversized_requests`); a
//!    connection that stalls **mid-line** past the read timeout is
//!    reaped silently (`limits.read_timeouts`) — idle connections
//!    with no partial line pending are never reaped.
//!
//! **Deadlines.** A query line may carry `deadline_ms` (or inherit
//! the server default): its total budget, measured from decode time,
//! so queue wait counts against it. An entry whose deadline expires
//! while queued is shed before touching the engine
//! (`deadline.shed_queued`); one that expires mid-estimate aborts
//! between Monte Carlo batches (`deadline.exceeded`) and answers
//! `{"id":N,"ok":false,"error":"deadline_exceeded after T trials"}`.
//! The deadline poll sits after each batch's certification check, so
//! a run that finishes on time is bit-identical to an undeadlined
//! one — deadlines never alter the sample schedule of completing
//! runs.
//!
//! **Drain.** The `server.drain` admin op (or SIGTERM under `biorank
//! serve`) stops the accept loop, waits up to `drain_deadline_ms`
//! for every in-flight query on every connection to answer,
//! checkpoints durable worlds when a store is attached, and then
//! lets [`Server::run`] return — so `biorank serve` exits 0. The
//! `{"drained":{"worlds":W}}` response is written before the
//! process goes away. `drain.{requested,completed,
//! worlds_checkpointed,dropped_in_flight}` account for the shutdown.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use biorank_obs::{SlowQueryEntry, SlowQueryLog, DEFAULT_SLOW_LOG_CAPACITY};

use crate::admission::{
    self, ConnectionBudget, FaultPlan, InFlightGauge, LineError, LineReader, TokenBucket,
};
use crate::engine::{AdaptiveConfig, Estimator, QueryEngine, Trials};
use crate::pool::WorkerPool;
use crate::tenancy::{
    MetricsReport, ServiceStats, WorldInfo, WorldManager, WorldSpec, DEFAULT_WORLD_BUDGET,
};
use crate::wire;
use crate::wire::{AdminRequest, AdminResponse, RequestBody, RequestDefaults, ResponseBody};

/// Default slow-query threshold: queries slower than this many
/// microseconds land in the in-memory slow-query ring buffer exposed
/// by the `metrics` admin command.
pub const DEFAULT_SLOW_QUERY_MICROS: u64 = 10_000;

/// Default concurrent-connection budget; the accept loop sheds past it.
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// Default bound on admitted-but-unanswered queries across all
/// connections; query lines arriving at the bound are shed.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Default per-connection socket read timeout. Only a connection
/// stalled **mid-line** is reaped when it fires; idle connections
/// survive it indefinitely.
pub const DEFAULT_READ_TIMEOUT_MS: u64 = 30_000;

/// Default per-connection socket write timeout.
pub const DEFAULT_WRITE_TIMEOUT_MS: u64 = 30_000;

/// Default cap on a single request line (1 MiB). The reader never
/// buffers past it.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

/// Default ceiling on how long a drain waits for in-flight queries.
pub const DEFAULT_DRAIN_DEADLINE_MS: u64 = 30_000;

/// Default `retry_after_ms` hint on shed responses.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker threads executing queries (shared across connections).
    pub workers: usize,
    /// Monte Carlo engine applied to `mc` query requests that leave
    /// their `estimator` field unset. Requests with an explicit
    /// estimator are never overridden, so clients can always pin
    /// the reference traversal engine for cross-checking.
    pub default_estimator: Estimator,
    /// Trial policy applied to query lines that omit the `trials`
    /// field (`biorank serve --trials N` pins the house default back
    /// to a fixed count). Requests with an explicit policy are never
    /// overridden.
    pub default_trials: Trials,
    /// Queries taking at least this many microseconds end-to-end are
    /// recorded in the slow-query ring buffer ([`DEFAULT_SLOW_QUERY_MICROS`]
    /// by default; `u64::MAX` disables the log).
    pub slow_query_micros: u64,
    /// Concurrent-connection budget. The accept loop answers
    /// connection number `max_connections + 1` with one id-less
    /// `{"error":"overloaded","retry_after_ms":N}` line and closes it
    /// instead of spawning a thread, so connection count — and thread
    /// count, see the permit-gated accept loop — stays bounded under
    /// a flood.
    pub max_connections: usize,
    /// Bound on admitted-but-unanswered queries across every
    /// connection. Query lines arriving at the bound are refused with
    /// an `overloaded` error response carrying `retry_after_ms=N`.
    pub queue_depth: usize,
    /// Socket read timeout per connection (0 disables). Only a
    /// connection with a *partial request line* pending is reaped
    /// when it fires — the slow-loris case; idle connections wait
    /// forever.
    pub read_timeout_ms: u64,
    /// Socket write timeout per connection (0 disables), so a peer
    /// that stops reading cannot wedge a writer thread forever.
    pub write_timeout_ms: u64,
    /// Hard cap on one request line's bytes; larger lines are
    /// answered with an error and the connection closed, without the
    /// server ever buffering past the cap.
    pub max_request_bytes: usize,
    /// Optional per-connection token-bucket rate limit
    /// (requests/second with a one-second burst). `None` (the
    /// default) disables it.
    pub rate_limit_per_sec: Option<u32>,
    /// Deadline applied to query lines that omit `deadline_ms`
    /// (`None`, the default, leaves them undeadlined). Explicit
    /// client deadlines always win.
    pub default_deadline_ms: Option<u64>,
    /// How long a drain waits for in-flight queries before giving up
    /// on the stragglers (they are counted in
    /// `drain.dropped_in_flight`, never silently lost).
    pub drain_deadline_ms: u64,
    /// The backoff hint stamped on shed notices and responses.
    pub retry_after_ms: u64,
    /// Fault injection for overload testing (`biorank serve
    /// --fault-plan`). `None` — the default — costs nothing on the
    /// request path.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServeOptions {
    /// The serving defaults: cost-based planning (`estimator: "auto"`)
    /// under the adaptive (ε = 0.02, δ = 0.05, ceiling 10⁴) trial
    /// policy. The planner scores the closed exact solution, reduced
    /// traversal MC, the wide word engine, and plain traversal MC
    /// against a telemetry-calibrated cost model per query and runs
    /// the cheapest — the chosen plan is echoed on the response.
    /// Clients opt out of planning with an explicit `estimator:
    /// "word"`/`"traversal"` per request (never overridden), or pin
    /// the paper's fixed reference schedule with an explicit `trials`
    /// number, or server-wide via `biorank serve
    /// --trials/--estimator`.
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            default_estimator: Estimator::Auto,
            default_trials: Trials::Adaptive(AdaptiveConfig::default()),
            slow_query_micros: DEFAULT_SLOW_QUERY_MICROS,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            read_timeout_ms: DEFAULT_READ_TIMEOUT_MS,
            write_timeout_ms: DEFAULT_WRITE_TIMEOUT_MS,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            rate_limit_per_sec: None,
            default_deadline_ms: None,
            drain_deadline_ms: DEFAULT_DRAIN_DEADLINE_MS,
            retry_after_ms: DEFAULT_RETRY_AFTER_MS,
            fault_plan: None,
        }
    }
}

/// A running query service bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    manager: Arc<WorldManager>,
    pool: Arc<WorkerPool>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    defaults: ServerDefaults,
    slow_log: Arc<SlowQueryLog>,
    budget: Arc<ConnectionBudget>,
    in_flight: Arc<InFlightGauge>,
    drain_deadline_ms: u64,
}

/// The per-request defaults a server substitutes for unset fields,
/// plus the per-connection limits every handler thread enforces.
#[derive(Clone, Copy)]
struct ServerDefaults {
    estimator: Estimator,
    trials: Trials,
    slow_query_micros: u64,
    queue_depth: usize,
    default_deadline_ms: Option<u64>,
    retry_after_ms: u64,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    max_request_bytes: usize,
    rate_limit_per_sec: Option<u32>,
    fault: FaultPlan,
}

/// A handle that can stop — or gracefully drain — a running
/// [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    in_flight: Arc<InFlightGauge>,
    drain_deadline_ms: u64,
    manager: Arc<WorldManager>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit. Existing connections finish
    /// their in-flight requests and close on client disconnect.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Gracefully drains the server: stops the accept loop, waits up
    /// to the configured drain deadline for every in-flight query on
    /// every connection to answer, and checkpoints durable worlds
    /// when a store is attached. Returns the number of worlds
    /// checkpointed. This is what the `server.drain` admin op and the
    /// CLI's SIGTERM handler call.
    pub fn drain(&self) -> Result<usize, crate::Error> {
        perform_drain(self).map_err(crate::Error::Tenancy)
    }

    /// The service metrics registry — the same counters the `metrics`
    /// admin op reports. In-process access matters after a drain,
    /// when the wire is gone but `drain.*` accounting still needs
    /// auditing.
    pub fn metrics(&self) -> Arc<crate::MetricsRegistry> {
        Arc::clone(self.manager.metrics())
    }
}

impl Server {
    /// Binds a single-world service: `engine` becomes the default
    /// world of a fresh [`WorldManager`] with the default resident
    /// budget, so admin commands work out of the box. Use port 0 to
    /// let the OS pick (tests do).
    ///
    /// The registry records [`WorldSpec::default()`] as the default
    /// world's spec — `bind` cannot know how an arbitrary engine was
    /// built. If yours came from a different seed, federation, or
    /// cache capacity (so `world.list` should say so and
    /// `world.load("default", ...)` idempotence should compare
    /// against the real spec), use [`Server::bind_manager`] with
    /// [`WorldManager::with_default`] and the actual spec.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        Self::bind_manager(
            addr,
            Arc::new(WorldManager::with_default(
                engine,
                WorldSpec::default(),
                DEFAULT_WORLD_BUDGET,
            )),
            opts,
        )
    }

    /// Binds the service over an explicit world registry.
    pub fn bind_manager(
        addr: impl ToSocketAddrs,
        manager: Arc<WorldManager>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // A configured fault plan owns the process-global estimator
        // stall; fault-free servers never touch it.
        if let Some(fault) = opts.fault_plan {
            admission::set_stall_batch_ms(fault.stall_batch_ms);
        }
        Ok(Server {
            listener,
            manager,
            pool: Arc::new(WorkerPool::new(opts.workers)),
            shutdown: Arc::new(AtomicBool::new(false)),
            draining: Arc::new(AtomicBool::new(false)),
            defaults: ServerDefaults {
                estimator: opts.default_estimator,
                trials: opts.default_trials,
                slow_query_micros: opts.slow_query_micros,
                queue_depth: opts.queue_depth.max(1),
                default_deadline_ms: opts.default_deadline_ms,
                retry_after_ms: opts.retry_after_ms,
                read_timeout_ms: opts.read_timeout_ms,
                write_timeout_ms: opts.write_timeout_ms,
                max_request_bytes: opts.max_request_bytes,
                rate_limit_per_sec: opts.rate_limit_per_sec,
                fault: opts.fault_plan.unwrap_or_default(),
            },
            slow_log: Arc::new(SlowQueryLog::new(DEFAULT_SLOW_LOG_CAPACITY)),
            budget: ConnectionBudget::new(opts.max_connections),
            in_flight: InFlightGauge::new(),
            drain_deadline_ms: opts.drain_deadline_ms,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown/drain handle for this server.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            draining: Arc::clone(&self.draining),
            in_flight: Arc::clone(&self.in_flight),
            drain_deadline_ms: self.drain_deadline_ms,
            manager: Arc::clone(&self.manager),
        })
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] is
    /// called. Final per-world cache hit-rates need no shutdown log
    /// line: every metrics snapshot — including one taken on the way
    /// down — folds the cache counters in as `cache.*` gauges (see
    /// [`QueryEngine::metrics_snapshot`]).
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.handle()?;
        let mut conn_id: u64 = 0;
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => {
                    // Persistent accept errors (e.g. EMFILE under fd
                    // exhaustion) fail instantly; back off instead of
                    // spinning a core until the condition clears.
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if self.defaults.fault.accept_delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.defaults.fault.accept_delay_ms));
            }
            // Admission: one permit per live connection. No permit →
            // shed with a one-line notice instead of spawning, so a
            // connection flood is bounded in both threads and memory.
            let permit = match self.budget.try_acquire() {
                Some(permit) => permit,
                None => {
                    self.manager.metrics().counter("shed.connections").inc();
                    shed_connection(stream, self.defaults.retry_after_ms);
                    continue;
                }
            };
            self.manager.metrics().counter("server.connections").inc();
            let manager = Arc::clone(&self.manager);
            let pool = Arc::clone(&self.pool);
            let defaults = self.defaults;
            let slow_log = Arc::clone(&self.slow_log);
            let handle = handle.clone();
            conn_id += 1;
            let spawned = std::thread::Builder::new()
                .name(format!("biorank-conn-{conn_id}"))
                .spawn(move || {
                    let _permit = permit;
                    let _ = handle_connection(stream, manager, pool, defaults, slow_log, handle);
                });
            if spawned.is_err() {
                // Thread exhaustion is an overload signal too; the
                // moved-in stream and permit were dropped with the
                // failed closure, closing the connection.
                self.manager.metrics().counter("shed.connections").inc();
            }
        }
        // A drain promised its caller the response line goes out
        // before the process can exit: linger until every connection
        // thread has returned its permit (the drain client disconnects
        // right after reading its answer), bounded so an unrelated
        // idle connection cannot hold the exit hostage.
        if self.draining.load(Ordering::SeqCst) {
            let linger = Instant::now() + Duration::from_secs(5);
            while self.budget.active() > 0 && Instant::now() < linger {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        // Graceful shutdown: fold the final cache counters into each
        // world's metrics registry (as the `cache.*` gauges every
        // snapshot carries) instead of the old stderr hit-rate log —
        // scrapers read the same numbers from the `metrics` admin op,
        // and this last snapshot leaves them in the registries for
        // anything still holding an engine `Arc`.
        let _ = self.manager.world_metrics(false);
        Ok(())
    }
}

/// Best-effort shed notice on a connection the budget refused: write
/// the id-less `overloaded` line (under a short timeout so a
/// non-reading flooder cannot slow the accept loop) and close.
fn shed_connection(stream: TcpStream, retry_after_ms: u64) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
    let mut line = wire::encode_overload_line(retry_after_ms);
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// The drain sequence behind [`ServerHandle::drain`] and the
/// `server.drain` admin op.
fn perform_drain(handle: &ServerHandle) -> Result<usize, crate::tenancy::TenancyError> {
    let metrics = handle.manager.metrics();
    metrics.counter("drain.requested").inc();
    handle.draining.store(true, Ordering::SeqCst);
    handle.shutdown();
    let dropped = handle
        .in_flight
        .wait_idle(Duration::from_millis(handle.drain_deadline_ms));
    if dropped > 0 {
        metrics.counter("drain.dropped_in_flight").add(dropped);
    }
    // Checkpoint durable worlds on the way down; a storeless server
    // has nothing durable to write and drains with worlds = 0.
    let worlds = if handle.manager.store().is_some() {
        let (worlds, _) = handle.manager.checkpoint()?;
        metrics
            .counter("drain.worlds_checkpointed")
            .add(worlds as u64);
        worlds
    } else {
        0
    };
    metrics.counter("drain.completed").inc();
    Ok(worlds)
}

fn handle_connection(
    stream: TcpStream,
    manager: Arc<WorldManager>,
    pool: Arc<WorkerPool>,
    defaults: ServerDefaults,
    slow_log: Arc<SlowQueryLog>,
    handle: ServerHandle,
) -> std::io::Result<()> {
    if defaults.read_timeout_ms > 0 {
        stream.set_read_timeout(Some(Duration::from_millis(defaults.read_timeout_ms)))?;
    }
    let peer_write = stream.try_clone()?;
    if defaults.write_timeout_ms > 0 {
        peer_write.set_write_timeout(Some(Duration::from_millis(defaults.write_timeout_ms)))?;
    }
    let fault = defaults.fault;

    // Writer thread: re-sequences (seq, line) pairs into socket order.
    let (line_tx, line_rx) = channel::<(u64, String)>();
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        let mut out = BufWriter::new(peer_write);
        let mut next: u64 = 0;
        let mut written: u64 = 0;
        let mut pending: BTreeMap<u64, String> = BTreeMap::new();
        for (seq, line) in line_rx {
            pending.insert(seq, line);
            while let Some(line) = pending.remove(&next) {
                next += 1;
                if fault.response_delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(fault.response_delay_ms));
                }
                if fault.blackhole {
                    continue; // injected: swallow the response
                }
                if fault.short_write {
                    // Injected: half the bytes, then hang up.
                    out.write_all(&line.as_bytes()[..line.len() / 2])?;
                    out.flush()?;
                    return Ok(());
                }
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
                out.flush()?;
                written += 1;
                if fault.close_after > 0 && written >= fault.close_after {
                    return Ok(()); // injected: close mid-conversation
                }
            }
        }
        Ok(())
    });

    let metrics = Arc::clone(manager.metrics());
    let mut rate = defaults.rate_limit_per_sec.map(TokenBucket::new);
    // Queries this connection has handed to the pool but not yet
    // answered; admin commands barrier on it going to zero.
    let in_flight = Arc::new((Mutex::new(0u64), Condvar::new()));
    let mut reader = LineReader::new(stream, defaults.max_request_bytes);
    let mut seq: u64 = 0;
    let outcome = loop {
        let line = match reader.read_line() {
            Ok(Some(line)) => line,
            Ok(None) => break Ok(()),
            Err(LineError::Oversized { limit }) => {
                // Line framing is lost past the cap: answer once and
                // close. Nothing beyond the cap was ever buffered.
                metrics.counter("limits.oversized_requests").inc();
                let response = wire::Response {
                    id: 0,
                    outcome: Err(format!("request line exceeds {limit} bytes")),
                };
                let _ = line_tx.send((seq, wire::encode_response(&response)));
                break Ok(());
            }
            Err(LineError::Stalled) => {
                // Slow loris: a partial line outlived the read
                // timeout. Reap silently — a peer dribbling bytes is
                // not reading responses either.
                metrics.counter("limits.read_timeouts").inc();
                break Ok(());
            }
            Err(LineError::Io(e)) => break Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        if let Some(bucket) = rate.as_mut() {
            if !bucket.try_take() {
                metrics.counter("shed.rate_limited").inc();
                let response = wire::Response {
                    id: salvage_id(&line),
                    outcome: Err(format!(
                        "overloaded: rate limit exceeded; retry_after_ms={}",
                        bucket.retry_after_ms()
                    )),
                };
                let _ = line_tx.send((seq, wire::encode_response(&response)));
                seq += 1;
                continue;
            }
        }
        dispatch_line(
            line, seq, &manager, &pool, &line_tx, &in_flight, defaults, &slow_log, &handle,
        );
        seq += 1;
    };
    drop(line_tx);
    let _ = writer.join();
    outcome
}

/// Best-effort id recovery from a request line that will not (or did
/// not) decode: a valid JSON object with a non-negative numeric `id`
/// yields it, anything else yields 0.
fn salvage_id(line: &str) -> u64 {
    wire::Json::parse(line)
        .ok()
        .and_then(|v| match v {
            wire::Json::Obj(f) => f.get("id").cloned(),
            _ => None,
        })
        .and_then(|v| match v {
            wire::Json::Num(n) if n >= 0.0 => Some(n as u64),
            _ => None,
        })
        .unwrap_or(0)
}

/// Parses one request line and schedules its execution; encoding
/// failures answer immediately with an error response (id 0 when the
/// id itself was unreadable).
///
/// Queries go to the worker pool and run concurrently. Admin commands
/// are a **per-connection barrier**: the reader first waits for every
/// query it already dispatched to finish, then executes the command
/// inline before reading the next line. A client may therefore
/// pipeline `query, world.swap, query` in one write and the second
/// query is guaranteed to see the post-swap world — without the
/// barrier it could race the swap and be answered from the replaced
/// engine's cache. (Queries in flight on *other* connections still
/// finish against the engine they resolved; that is the documented
/// swap semantics, not staleness a client of this connection can
/// observe.)
#[allow(clippy::too_many_arguments)]
fn dispatch_line(
    line: String,
    seq: u64,
    manager: &Arc<WorldManager>,
    pool: &Arc<WorkerPool>,
    line_tx: &Sender<(u64, String)>,
    in_flight: &Arc<(Mutex<u64>, Condvar)>,
    defaults: ServerDefaults,
    slow_log: &Arc<SlowQueryLog>,
    handle: &ServerHandle,
) {
    // Unset request fields take the server's configured defaults at
    // decode time (`trials`, `deadline_ms`) or just after
    // (`estimator`), so the result-cache key always reflects the
    // policy and engine that actually run. Explicit client choices
    // always win.
    let request_defaults = RequestDefaults {
        trials: defaults.trials,
        deadline_ms: defaults.default_deadline_ms,
    };
    let metrics = Arc::clone(manager.metrics());
    metrics.counter("server.requests").inc();
    let decode_start = Instant::now();
    let decoded = wire::decode_request_with(&line, &request_defaults);
    metrics
        .histogram("server.decode_ns")
        .record(decode_start.elapsed().as_nanos() as u64);
    match decoded {
        Ok(request) => match request.body {
            RequestBody::Query(mut req) => {
                if req.spec.estimator.is_none() {
                    req.spec.estimator = Some(defaults.estimator);
                }
                // Bounded request queue: at `queue_depth`
                // admitted-but-unanswered queries (across every
                // connection), shed now — the client gets its
                // backpressure signal immediately instead of an
                // answer long after it stopped caring.
                if handle.in_flight.current() >= defaults.queue_depth as u64 {
                    metrics.counter("shed.requests").inc();
                    let response = wire::Response {
                        id: request.id,
                        outcome: Err(format!(
                            "overloaded: request queue full; retry_after_ms={}",
                            defaults.retry_after_ms
                        )),
                    };
                    let _ = line_tx.send((seq, wire::encode_response(&response)));
                    return;
                }
                // The deadline clock starts here, at decode: time the
                // request spends queued behind other work counts
                // against its budget.
                let deadline = req
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                let global = handle.in_flight.enter();
                let manager = Arc::clone(manager);
                let line_tx = line_tx.clone();
                let in_flight = Arc::clone(in_flight);
                let slow_log = Arc::clone(slow_log);
                *in_flight.0.lock().expect("in-flight counter") += 1;
                pool.submit(move || {
                    let _global = global;
                    let query_start = Instant::now();
                    let outcome = match deadline {
                        // Expired while queued: shed before touching
                        // the engine (no trials were spent).
                        Some(d) if query_start >= d => {
                            metrics.counter("deadline.shed_queued").inc();
                            Err(format!(
                                "deadline_exceeded after 0 trials: the {} ms budget was \
                                 spent queued",
                                req.deadline_ms.unwrap_or(0)
                            ))
                        }
                        Some(d) => {
                            // Hand the engine only the remaining
                            // budget; its own clock starts at
                            // `execute` entry.
                            req.deadline_ms = Some((d - query_start).as_millis().max(1) as u64);
                            let outcome = execute_query(&manager, &req);
                            // The engine's deadline abort surfaces as
                            // a rendered `deadline_exceeded after N
                            // trials` error (`biorank_rank::Error::
                            // DeadlineExceeded`).
                            if matches!(&outcome, Err(e) if e.contains("deadline_exceeded")) {
                                metrics.counter("deadline.exceeded").inc();
                            }
                            outcome
                        }
                        None => execute_query(&manager, &req),
                    };
                    let micros = query_start.elapsed().as_micros() as u64;
                    if outcome.is_err() {
                        metrics.counter("server.errors").inc();
                    }
                    if micros >= defaults.slow_query_micros {
                        let cached = match &outcome {
                            Ok(ResponseBody::Query(resp)) => resp.cached_scores,
                            _ => false,
                        };
                        slow_log.push(SlowQueryEntry {
                            world: req
                                .world
                                .clone()
                                .unwrap_or_else(|| crate::tenancy::DEFAULT_WORLD.to_string()),
                            value: req.query.value.clone(),
                            method: req.spec.method.wire_name().to_string(),
                            micros,
                            cached,
                        });
                        metrics.counter("server.slow_queries").inc();
                    }
                    let response = wire::Response {
                        id: request.id,
                        outcome,
                    };
                    let encode_start = Instant::now();
                    let encoded = wire::encode_response(&response);
                    metrics
                        .histogram("server.encode_ns")
                        .record(encode_start.elapsed().as_nanos() as u64);
                    let _ = line_tx.send((seq, encoded));
                    // Decrement only after the response is queued, so
                    // a barriered admin command cannot overtake it.
                    let (count, cv) = &*in_flight;
                    *count.lock().expect("in-flight counter") -= 1;
                    cv.notify_all();
                });
            }
            RequestBody::Admin(admin) => {
                let (count, cv) = &**in_flight;
                let mut n = count.lock().expect("in-flight counter");
                while *n > 0 {
                    n = cv.wait(n).expect("in-flight counter");
                }
                drop(n);
                let outcome = execute_admin(manager, admin, slow_log, handle)
                    .map(ResponseBody::Admin)
                    .map_err(|e| e.to_string());
                if outcome.is_err() {
                    metrics.counter("server.errors").inc();
                }
                let response = wire::Response {
                    id: request.id,
                    outcome,
                };
                let _ = line_tx.send((seq, wire::encode_response(&response)));
            }
        },
        Err(e) => {
            metrics.counter("server.errors.decode").inc();
            // Salvage the id if the line was valid JSON with one.
            let response = wire::Response {
                id: salvage_id(&line),
                outcome: Err(e.to_string()),
            };
            let _ = line_tx.send((seq, wire::encode_response(&response)));
        }
    }
}

/// Executes one query against the world registry: resolve the named
/// world, then execute against its engine holding no tenancy lock.
fn execute_query(
    manager: &WorldManager,
    req: &crate::engine::QueryRequest,
) -> Result<ResponseBody, String> {
    let engine = manager
        .resolve(req.world.as_deref())
        .map_err(|e| e.to_string())?;
    engine
        .execute(req)
        .map(ResponseBody::Query)
        .map_err(|e| e.to_string())
}

fn execute_admin(
    manager: &Arc<WorldManager>,
    admin: AdminRequest,
    slow_log: &Arc<SlowQueryLog>,
    handle: &ServerHandle,
) -> Result<AdminResponse, crate::tenancy::TenancyError> {
    match admin {
        AdminRequest::Drain => {
            // The connection barrier already answered this
            // connection's earlier queries; perform_drain waits for
            // everyone else's. The Drained response is encoded and
            // written after drain completes, before run() lets the
            // process exit.
            let worlds = perform_drain(handle)?;
            Ok(AdminResponse::Drained { worlds })
        }
        AdminRequest::Load {
            world,
            spec,
            background: false,
        } => {
            let generation = manager.load(&world, spec)?;
            Ok(AdminResponse::World { world, generation })
        }
        AdminRequest::Load {
            world,
            spec,
            background: true,
        } => match manager.load_background(&world, spec)? {
            // Already resident with the identical spec: nothing to
            // build, answer like a synchronous no-op load.
            Some(generation) => Ok(AdminResponse::World { world, generation }),
            None => Ok(AdminResponse::Loading { world }),
        },
        AdminRequest::Swap { world, spec, warm } => {
            let generation = manager.swap(&world, spec, warm)?;
            Ok(AdminResponse::World { world, generation })
        }
        AdminRequest::Evict { world } => {
            manager.evict(&world)?;
            Ok(AdminResponse::World {
                world,
                generation: 0,
            })
        }
        AdminRequest::Save { world } => {
            let (generation, snapshot_bytes) = manager.save(&world)?;
            Ok(AdminResponse::Saved {
                world,
                generation,
                snapshot_bytes,
            })
        }
        AdminRequest::Checkpoint => {
            let (worlds, snapshot_bytes) = manager.checkpoint()?;
            Ok(AdminResponse::Checkpoint {
                worlds,
                snapshot_bytes,
            })
        }
        AdminRequest::List => Ok(AdminResponse::List(manager.list())),
        AdminRequest::Stats => Ok(AdminResponse::Stats(manager.stats())),
        AdminRequest::Metrics { reset } => {
            // Snapshot everything first, reset after, so a
            // `metrics {reset: true}` scrape never loses a count it
            // did not report.
            let service = manager.metrics().snapshot();
            let worlds = manager.world_metrics(reset);
            let slow_queries = slow_log.entries();
            if reset {
                manager.metrics().reset();
                slow_log.clear();
            }
            Ok(AdminResponse::Metrics(MetricsReport {
                service,
                worlds,
                slow_queries,
            }))
        }
    }
}

/// Connection and socket timeouts for [`Client::connect_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientOptions {
    /// Bound on establishing the TCP connection (`None`: the OS
    /// default, typically minutes).
    pub connect_timeout: Option<Duration>,
    /// Bound on each socket read and write once connected (`None`:
    /// block indefinitely). A fired timeout surfaces as
    /// [`crate::Error::Io`] with a `WouldBlock`/`TimedOut` kind.
    pub io_timeout: Option<Duration>,
}

/// A blocking client for the line protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a running service with default (unbounded)
    /// timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit connection/io timeouts.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: ClientOptions) -> std::io::Result<Client> {
        let stream = match opts.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                // connect_timeout needs resolved addresses; try each
                // like TcpStream::connect does.
                let mut last: Option<std::io::Error> = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to nothing",
                        )
                    })
                })?
            }
        };
        if let Some(timeout) = opts.io_timeout {
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
        }
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn read_response(&mut self) -> Result<wire::Response, crate::Error> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(crate::Error::Remote("server closed connection".into()));
        }
        let line = line.trim_end();
        // The accept loop's connection-shed notice is id-less — it
        // answers the connection, not a request.
        if let Some(retry_after_ms) = wire::parse_overload_line(line) {
            return Err(crate::Error::Overloaded { retry_after_ms });
        }
        Ok(wire::decode_response(line)?)
    }

    /// Executes one query with bounded retries on overload sheds:
    /// connection-level shed notices and per-request `overloaded`
    /// errors (queue depth, rate limit) wait out the server's
    /// `retry_after_ms` hint — growing exponentially per attempt,
    /// with decorrelating jitter — and reconnect, since a shed
    /// connection is closed by the server. Any other error, and an
    /// overload persisting past `retries` extra attempts, returns
    /// immediately.
    pub fn query_with_retry(
        addr: impl ToSocketAddrs + Copy,
        opts: ClientOptions,
        req: &crate::engine::QueryRequest,
        retries: u32,
    ) -> Result<crate::engine::QueryResponse, crate::Error> {
        // xorshift64 jitter state; the seed only decorrelates
        // concurrent clients, it carries no meaning.
        let mut jitter = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::from(d.subsec_nanos()) | 1)
            .unwrap_or(1);
        let mut attempt: u32 = 0;
        loop {
            let outcome = Client::connect_with(addr, opts)
                .map_err(crate::Error::Io)
                .and_then(|mut client| client.query(req));
            match outcome {
                Err(e) if e.is_overload() && attempt < retries => {
                    let base = e.retry_after_ms().unwrap_or(DEFAULT_RETRY_AFTER_MS).max(1);
                    let backoff = base.saturating_mul(1u64 << attempt.min(6));
                    jitter ^= jitter << 13;
                    jitter ^= jitter >> 7;
                    jitter ^= jitter << 17;
                    std::thread::sleep(Duration::from_millis(backoff + jitter % backoff));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Executes one query, blocking for the response.
    pub fn query(
        &mut self,
        req: &crate::engine::QueryRequest,
    ) -> Result<crate::engine::QueryResponse, crate::Error> {
        self.query_batch(std::slice::from_ref(req))?.remove(0)
    }

    /// Pipelines a batch of queries over the connection and collects
    /// their responses, in request order.
    pub fn query_batch(
        &mut self,
        reqs: &[crate::engine::QueryRequest],
    ) -> Result<Vec<Result<crate::engine::QueryResponse, crate::Error>>, crate::Error> {
        let first_id = self.next_id;
        for req in reqs {
            let request = wire::Request {
                id: self.next_id,
                body: RequestBody::Query(req.clone()),
            };
            self.next_id += 1;
            self.writer
                .write_all(wire::encode_request(&request).as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            let response = self.read_response()?;
            let expect = first_id + i as u64;
            if response.id != expect {
                return Err(crate::Error::Remote(format!(
                    "response id {} does not match request id {expect}",
                    response.id
                )));
            }
            out.push(match response.outcome {
                Ok(ResponseBody::Query(resp)) => Ok(resp),
                Ok(ResponseBody::Admin(_)) => Err(crate::Error::Remote(
                    "server answered a query with an admin payload".into(),
                )),
                Err(msg) => Err(crate::Error::Remote(msg)),
            });
        }
        Ok(out)
    }

    /// Sends one admin command, blocking for its payload.
    pub fn admin(&mut self, admin: AdminRequest) -> Result<AdminResponse, crate::Error> {
        let id = self.next_id;
        self.next_id += 1;
        let request = wire::Request {
            id,
            body: RequestBody::Admin(admin),
        };
        self.writer
            .write_all(wire::encode_request(&request).as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let response = self.read_response()?;
        if response.id != id {
            return Err(crate::Error::Remote(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        match response.outcome {
            Ok(ResponseBody::Admin(resp)) => Ok(resp),
            Ok(ResponseBody::Query(_)) => Err(crate::Error::Remote(
                "server answered an admin command with a query payload".into(),
            )),
            Err(msg) => Err(crate::Error::Remote(msg)),
        }
    }

    /// `world.load`: make a world resident, blocking until it is;
    /// returns its generation.
    pub fn world_load(&mut self, world: &str, spec: WorldSpec) -> Result<u64, crate::Error> {
        match self.admin(AdminRequest::Load {
            world: world.to_string(),
            spec,
            background: false,
        })? {
            AdminResponse::World { generation, .. } => Ok(generation),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.load` with `background: true`: the server answers
    /// immediately and builds the world on a worker thread. Returns
    /// `None` when the build was accepted (poll
    /// [`world_list`](Client::world_list) for the `ready` state) or
    /// `Some(generation)` when the world was already resident with
    /// the identical spec.
    pub fn world_load_background(
        &mut self,
        world: &str,
        spec: WorldSpec,
    ) -> Result<Option<u64>, crate::Error> {
        match self.admin(AdminRequest::Load {
            world: world.to_string(),
            spec,
            background: true,
        })? {
            AdminResponse::Loading { .. } => Ok(None),
            AdminResponse::World { generation, .. } => Ok(Some(generation)),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.swap`: replace a world (invalidating its caches) with
    /// the default warm-up ([`DEFAULT_SWAP_WARM`]
    /// hottest keys replayed into the fresh engine); returns the new
    /// generation.
    ///
    /// [`DEFAULT_SWAP_WARM`]: crate::tenancy::DEFAULT_SWAP_WARM
    pub fn world_swap(&mut self, world: &str, spec: WorldSpec) -> Result<u64, crate::Error> {
        self.world_swap_warm(world, spec, crate::tenancy::DEFAULT_SWAP_WARM)
    }

    /// `world.swap` with an explicit warm-up count (0 installs the
    /// replacement engine fully cold).
    pub fn world_swap_warm(
        &mut self,
        world: &str,
        spec: WorldSpec,
        warm: usize,
    ) -> Result<u64, crate::Error> {
        match self.admin(AdminRequest::Swap {
            world: world.to_string(),
            spec,
            warm,
        })? {
            AdminResponse::World { generation, .. } => Ok(generation),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.save`: write a durable snapshot of a resident world
    /// (server must be running with `--data-dir`); returns
    /// `(generation, snapshot bytes)`.
    pub fn world_save(&mut self, world: &str) -> Result<(u64, u64), crate::Error> {
        match self.admin(AdminRequest::Save {
            world: world.to_string(),
        })? {
            AdminResponse::Saved {
                generation,
                snapshot_bytes,
                ..
            } => Ok((generation, snapshot_bytes)),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `checkpoint`: snapshot every resident world and compact the
    /// admin WAL into the manifest; returns `(worlds, total snapshot
    /// bytes)`.
    pub fn checkpoint(&mut self) -> Result<(usize, u64), crate::Error> {
        match self.admin(AdminRequest::Checkpoint)? {
            AdminResponse::Checkpoint {
                worlds,
                snapshot_bytes,
            } => Ok((worlds, snapshot_bytes)),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `server.drain`: gracefully stop the server — no new
    /// connections, in-flight queries finish under the drain
    /// deadline, durable worlds checkpoint. Returns the number of
    /// worlds checkpointed (0 on a storeless server). After the
    /// response, the server's `run()` returns and `biorank serve`
    /// exits 0.
    pub fn drain(&mut self) -> Result<usize, crate::Error> {
        match self.admin(AdminRequest::Drain)? {
            AdminResponse::Drained { worlds } => Ok(worlds),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.evict`: drop a resident world.
    pub fn world_evict(&mut self, world: &str) -> Result<(), crate::Error> {
        match self.admin(AdminRequest::Evict {
            world: world.to_string(),
        })? {
            AdminResponse::World { .. } => Ok(()),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.list`: snapshot the server's world registry.
    pub fn world_list(&mut self) -> Result<Vec<WorldInfo>, crate::Error> {
        match self.admin(AdminRequest::List)? {
            AdminResponse::List(worlds) => Ok(worlds),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `stats`: per-world cache counters.
    pub fn stats(&mut self) -> Result<ServiceStats, crate::Error> {
        match self.admin(AdminRequest::Stats)? {
            AdminResponse::Stats(stats) => Ok(stats),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `metrics`: the full telemetry snapshot — service counters,
    /// per-world registries, and the slow-query log. `reset: true`
    /// zeroes every counter and histogram (and drains the slow-query
    /// log) after the snapshot is taken, for interval scraping.
    pub fn metrics(&mut self, reset: bool) -> Result<MetricsReport, crate::Error> {
        match self.admin(AdminRequest::Metrics { reset })? {
            AdminResponse::Metrics(report) => Ok(report),
            other => Err(unexpected_admin(other)),
        }
    }
}

fn unexpected_admin(resp: AdminResponse) -> crate::Error {
    crate::Error::Remote(format!("unexpected admin payload: {resp:?}"))
}

impl Client {
    /// Convenience: `query` + unwrap into (answers, total).
    pub fn protein_functions(
        &mut self,
        protein: &str,
        spec: crate::engine::RankerSpec,
    ) -> Result<crate::engine::QueryResponse, crate::Error> {
        self.query(&crate::engine::QueryRequest::protein_functions(
            protein, spec,
        ))
    }
}
