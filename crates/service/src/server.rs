//! The TCP front end: line-delimited JSON over `std::net`.
//!
//! One thread accepts connections; each connection gets a reader
//! thread that decodes request lines and submits them to the shared
//! [`WorkerPool`], plus a writer thread that puts responses back on
//! the socket **in request order** (a `BTreeMap` re-sequencing buffer
//! absorbs out-of-order completions). Clients may therefore pipeline
//! requests freely and match responses positionally or by id.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use crate::engine::QueryEngine;
use crate::pool::WorkerPool;
use crate::wire;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker threads executing queries (shared across connections).
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { workers: 4 }
    }
}

/// A running query service bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    pool: Arc<WorkerPool>,
    shutdown: Arc<AtomicBool>,
}

/// A handle that can stop a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit. Existing connections finish
    /// their in-flight requests and close on client disconnect.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the service. Use port 0 to let the OS pick (tests do).
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine,
            pool: Arc::new(WorkerPool::new(opts.workers)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] is called.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => {
                    // Persistent accept errors (e.g. EMFILE under fd
                    // exhaustion) fail instantly; back off instead of
                    // spinning a core until the condition clears.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    continue;
                }
            };
            let engine = Arc::clone(&self.engine);
            let pool = Arc::clone(&self.pool);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, engine, pool);
            });
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: Arc<QueryEngine>,
    pool: Arc<WorkerPool>,
) -> std::io::Result<()> {
    let peer_write = stream.try_clone()?;
    let reader = BufReader::new(stream);

    // Writer thread: re-sequences (seq, line) pairs into socket order.
    let (line_tx, line_rx) = channel::<(u64, String)>();
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        let mut out = BufWriter::new(peer_write);
        let mut next: u64 = 0;
        let mut pending: BTreeMap<u64, String> = BTreeMap::new();
        for (seq, line) in line_rx {
            pending.insert(seq, line);
            while let Some(line) = pending.remove(&next) {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
                out.flush()?;
                next += 1;
            }
        }
        Ok(())
    });

    let mut seq: u64 = 0;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        dispatch_line(line, seq, &engine, &pool, &line_tx);
        seq += 1;
    }
    drop(line_tx);
    let _ = writer.join();
    Ok(())
}

/// Parses one request line and schedules its execution; encoding
/// failures answer immediately with an error response (id 0 when the
/// id itself was unreadable).
fn dispatch_line(
    line: String,
    seq: u64,
    engine: &Arc<QueryEngine>,
    pool: &Arc<WorkerPool>,
    line_tx: &Sender<(u64, String)>,
) {
    match wire::decode_request(&line) {
        Ok(request) => {
            let engine = Arc::clone(engine);
            let line_tx = line_tx.clone();
            pool.submit(move || {
                let outcome = engine.execute(&request.req).map_err(|e| e.to_string());
                let response = wire::Response {
                    id: request.id,
                    outcome,
                };
                let _ = line_tx.send((seq, wire::encode_response(&response)));
            });
        }
        Err(e) => {
            // Salvage the id if the line was valid JSON with one.
            let id = wire::Json::parse(&line)
                .ok()
                .and_then(|v| match v {
                    wire::Json::Obj(f) => f.get("id").cloned(),
                    _ => None,
                })
                .and_then(|v| match v {
                    wire::Json::Num(n) if n >= 0.0 => Some(n as u64),
                    _ => None,
                })
                .unwrap_or(0);
            let response = wire::Response {
                id,
                outcome: Err(e.to_string()),
            };
            let _ = line_tx.send((seq, wire::encode_response(&response)));
        }
    }
}

/// A blocking client for the line protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a running service.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn read_response(&mut self) -> Result<wire::Response, crate::Error> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(crate::Error::Remote("server closed connection".into()));
        }
        Ok(wire::decode_response(line.trim_end())?)
    }

    /// Executes one query, blocking for the response.
    pub fn query(
        &mut self,
        req: &crate::engine::QueryRequest,
    ) -> Result<crate::engine::QueryResponse, crate::Error> {
        self.query_batch(std::slice::from_ref(req))?.remove(0)
    }

    /// Pipelines a batch of queries over the connection and collects
    /// their responses, in request order.
    pub fn query_batch(
        &mut self,
        reqs: &[crate::engine::QueryRequest],
    ) -> Result<Vec<Result<crate::engine::QueryResponse, crate::Error>>, crate::Error> {
        let first_id = self.next_id;
        for req in reqs {
            let request = wire::Request {
                id: self.next_id,
                req: req.clone(),
            };
            self.next_id += 1;
            self.writer
                .write_all(wire::encode_request(&request).as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            let response = self.read_response()?;
            let expect = first_id + i as u64;
            if response.id != expect {
                return Err(crate::Error::Remote(format!(
                    "response id {} does not match request id {expect}",
                    response.id
                )));
            }
            out.push(response.outcome.map_err(crate::Error::Remote));
        }
        Ok(out)
    }
}

impl Client {
    /// Convenience: `query` + unwrap into (answers, total).
    pub fn protein_functions(
        &mut self,
        protein: &str,
        spec: crate::engine::RankerSpec,
    ) -> Result<crate::engine::QueryResponse, crate::Error> {
        self.query(&crate::engine::QueryRequest::protein_functions(
            protein, spec,
        ))
    }
}
