//! The TCP front end: line-delimited JSON over `std::net`.
//!
//! One thread accepts connections; each connection gets a reader
//! thread that decodes request lines and submits them to the shared
//! [`WorkerPool`], plus a writer thread that puts responses back on
//! the socket **in request order** (a `BTreeMap` re-sequencing buffer
//! absorbs out-of-order completions). Clients may therefore pipeline
//! requests freely and match responses positionally or by id.
//!
//! Requests route through a [`WorldManager`]: a query names a resident
//! world (or defaults to [`DEFAULT_WORLD`](crate::tenancy::DEFAULT_WORLD)),
//! and admin lines (`world.load`, `world.swap`, `world.evict`,
//! `world.list`, `stats`, `metrics`) drive the registry itself over
//! the same connection. Admin commands are a per-connection barrier: queries
//! pipelined before a `world.swap` finish before it executes, and
//! queries after it see the new world.
//!
//! **Fusion is invisible on the wire.** Concurrent identical queries
//! may be answered by one computation (single-flight), and concurrent
//! word-estimator Monte Carlo queries on the same exploratory query
//! may share fused propagation sweeps — but there is no request field
//! to ask for either, no response field that reveals them, and the
//! response bytes are identical to an unfused execution. Only the
//! `metrics` admin op shows the coalescing (`queries.coalesced`,
//! `fusion.batches`, `fusion.lanes_used`, `fusion_width`).
//!
//! **Planning is opt-out, not invisible.** The serve default is
//! `estimator: "auto"`: the engine scores exact / reduced / word /
//! traversal strategies against a calibrated cost model and runs the
//! cheapest, echoing `plan: {strategy, predicted_ns, fallback,
//! features}` on the response next to the certificate. The echo is
//! observational only — a planned request and an explicit request for
//! the chosen strategy share one cache entry and identical answer
//! bytes. An explicit `estimator` (or a non-`mc` method) routes
//! around the planner entirely. Per-world `planner.chosen.<strategy>`,
//! `planner.fallback`, and `planner.recalibrations` counters appear in
//! the `metrics` admin op, and `world.list` rows carry the same
//! chosen-strategy rollup.
//!
//! **Metrics histogram echo.** The `metrics` admin op serialises each
//! histogram's non-empty buckets as `[bucket_index, count]` pairs —
//! the first element is the log₂ bucket *index* (bucket 0 holds exact
//! zeros, bucket `i ≥ 1` holds `[2^(i−1), 2^i)`), never a value
//! bound, so the top buckets' > 2⁵³ bounds survive f64 JSON exactly;
//! decoders recompute bounds from the index.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use biorank_obs::{SlowQueryEntry, SlowQueryLog, DEFAULT_SLOW_LOG_CAPACITY};

use crate::engine::{AdaptiveConfig, Estimator, QueryEngine, Trials};
use crate::pool::WorkerPool;
use crate::tenancy::{
    MetricsReport, ServiceStats, WorldInfo, WorldManager, WorldSpec, DEFAULT_WORLD_BUDGET,
};
use crate::wire;
use crate::wire::{AdminRequest, AdminResponse, RequestBody, RequestDefaults, ResponseBody};

/// Default slow-query threshold: queries slower than this many
/// microseconds land in the in-memory slow-query ring buffer exposed
/// by the `metrics` admin command.
pub const DEFAULT_SLOW_QUERY_MICROS: u64 = 10_000;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker threads executing queries (shared across connections).
    pub workers: usize,
    /// Monte Carlo engine applied to `mc` query requests that leave
    /// their `estimator` field unset. Requests with an explicit
    /// estimator are never overridden, so clients can always pin
    /// the reference traversal engine for cross-checking.
    pub default_estimator: Estimator,
    /// Trial policy applied to query lines that omit the `trials`
    /// field (`biorank serve --trials N` pins the house default back
    /// to a fixed count). Requests with an explicit policy are never
    /// overridden.
    pub default_trials: Trials,
    /// Queries taking at least this many microseconds end-to-end are
    /// recorded in the slow-query ring buffer ([`DEFAULT_SLOW_QUERY_MICROS`]
    /// by default; `u64::MAX` disables the log).
    pub slow_query_micros: u64,
}

impl Default for ServeOptions {
    /// The serving defaults: cost-based planning (`estimator: "auto"`)
    /// under the adaptive (ε = 0.02, δ = 0.05, ceiling 10⁴) trial
    /// policy. The planner scores the closed exact solution, reduced
    /// traversal MC, the wide word engine, and plain traversal MC
    /// against a telemetry-calibrated cost model per query and runs
    /// the cheapest — the chosen plan is echoed on the response.
    /// Clients opt out of planning with an explicit `estimator:
    /// "word"`/`"traversal"` per request (never overridden), or pin
    /// the paper's fixed reference schedule with an explicit `trials`
    /// number, or server-wide via `biorank serve
    /// --trials/--estimator`.
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            default_estimator: Estimator::Auto,
            default_trials: Trials::Adaptive(AdaptiveConfig::default()),
            slow_query_micros: DEFAULT_SLOW_QUERY_MICROS,
        }
    }
}

/// A running query service bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    manager: Arc<WorldManager>,
    pool: Arc<WorkerPool>,
    shutdown: Arc<AtomicBool>,
    defaults: ServerDefaults,
    slow_log: Arc<SlowQueryLog>,
}

/// The per-request defaults a server substitutes for unset fields.
#[derive(Clone, Copy)]
struct ServerDefaults {
    estimator: Estimator,
    trials: Trials,
    slow_query_micros: u64,
}

/// A handle that can stop a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit. Existing connections finish
    /// their in-flight requests and close on client disconnect.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds a single-world service: `engine` becomes the default
    /// world of a fresh [`WorldManager`] with the default resident
    /// budget, so admin commands work out of the box. Use port 0 to
    /// let the OS pick (tests do).
    ///
    /// The registry records [`WorldSpec::default()`] as the default
    /// world's spec — `bind` cannot know how an arbitrary engine was
    /// built. If yours came from a different seed, federation, or
    /// cache capacity (so `world.list` should say so and
    /// `world.load("default", ...)` idempotence should compare
    /// against the real spec), use [`Server::bind_manager`] with
    /// [`WorldManager::with_default`] and the actual spec.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        Self::bind_manager(
            addr,
            Arc::new(WorldManager::with_default(
                engine,
                WorldSpec::default(),
                DEFAULT_WORLD_BUDGET,
            )),
            opts,
        )
    }

    /// Binds the service over an explicit world registry.
    pub fn bind_manager(
        addr: impl ToSocketAddrs,
        manager: Arc<WorldManager>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            manager,
            pool: Arc::new(WorkerPool::new(opts.workers)),
            shutdown: Arc::new(AtomicBool::new(false)),
            defaults: ServerDefaults {
                estimator: opts.default_estimator,
                trials: opts.default_trials,
                slow_query_micros: opts.slow_query_micros,
            },
            slow_log: Arc::new(SlowQueryLog::new(DEFAULT_SLOW_LOG_CAPACITY)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] is
    /// called. Final per-world cache hit-rates need no shutdown log
    /// line: every metrics snapshot — including one taken on the way
    /// down — folds the cache counters in as `cache.*` gauges (see
    /// [`QueryEngine::metrics_snapshot`]).
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => {
                    // Persistent accept errors (e.g. EMFILE under fd
                    // exhaustion) fail instantly; back off instead of
                    // spinning a core until the condition clears.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    continue;
                }
            };
            self.manager.metrics().counter("server.connections").inc();
            let manager = Arc::clone(&self.manager);
            let pool = Arc::clone(&self.pool);
            let defaults = self.defaults;
            let slow_log = Arc::clone(&self.slow_log);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, manager, pool, defaults, slow_log);
            });
        }
        // Graceful shutdown: fold the final cache counters into each
        // world's metrics registry (as the `cache.*` gauges every
        // snapshot carries) instead of the old stderr hit-rate log —
        // scrapers read the same numbers from the `metrics` admin op,
        // and this last snapshot leaves them in the registries for
        // anything still holding an engine `Arc`.
        let _ = self.manager.world_metrics(false);
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    manager: Arc<WorldManager>,
    pool: Arc<WorkerPool>,
    defaults: ServerDefaults,
    slow_log: Arc<SlowQueryLog>,
) -> std::io::Result<()> {
    let peer_write = stream.try_clone()?;
    let reader = BufReader::new(stream);

    // Writer thread: re-sequences (seq, line) pairs into socket order.
    let (line_tx, line_rx) = channel::<(u64, String)>();
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        let mut out = BufWriter::new(peer_write);
        let mut next: u64 = 0;
        let mut pending: BTreeMap<u64, String> = BTreeMap::new();
        for (seq, line) in line_rx {
            pending.insert(seq, line);
            while let Some(line) = pending.remove(&next) {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
                out.flush()?;
                next += 1;
            }
        }
        Ok(())
    });

    // Queries this connection has handed to the pool but not yet
    // answered; admin commands barrier on it going to zero.
    let in_flight = Arc::new((Mutex::new(0u64), Condvar::new()));
    let mut seq: u64 = 0;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        dispatch_line(
            line, seq, &manager, &pool, &line_tx, &in_flight, defaults, &slow_log,
        );
        seq += 1;
    }
    drop(line_tx);
    let _ = writer.join();
    Ok(())
}

/// Parses one request line and schedules its execution; encoding
/// failures answer immediately with an error response (id 0 when the
/// id itself was unreadable).
///
/// Queries go to the worker pool and run concurrently. Admin commands
/// are a **per-connection barrier**: the reader first waits for every
/// query it already dispatched to finish, then executes the command
/// inline before reading the next line. A client may therefore
/// pipeline `query, world.swap, query` in one write and the second
/// query is guaranteed to see the post-swap world — without the
/// barrier it could race the swap and be answered from the replaced
/// engine's cache. (Queries in flight on *other* connections still
/// finish against the engine they resolved; that is the documented
/// swap semantics, not staleness a client of this connection can
/// observe.)
#[allow(clippy::too_many_arguments)]
fn dispatch_line(
    line: String,
    seq: u64,
    manager: &Arc<WorldManager>,
    pool: &Arc<WorkerPool>,
    line_tx: &Sender<(u64, String)>,
    in_flight: &Arc<(Mutex<u64>, Condvar)>,
    defaults: ServerDefaults,
    slow_log: &Arc<SlowQueryLog>,
) {
    // Unset request fields take the server's configured defaults at
    // decode time (`trials`) or just after (`estimator`), so the
    // result-cache key always reflects the policy and engine that
    // actually run. Explicit client choices always win.
    let request_defaults = RequestDefaults {
        trials: defaults.trials,
    };
    let metrics = Arc::clone(manager.metrics());
    metrics.counter("server.requests").inc();
    let decode_start = Instant::now();
    let decoded = wire::decode_request_with(&line, &request_defaults);
    metrics
        .histogram("server.decode_ns")
        .record(decode_start.elapsed().as_nanos() as u64);
    match decoded {
        Ok(request) => match request.body {
            RequestBody::Query(mut req) => {
                if req.spec.estimator.is_none() {
                    req.spec.estimator = Some(defaults.estimator);
                }
                let manager = Arc::clone(manager);
                let line_tx = line_tx.clone();
                let in_flight = Arc::clone(in_flight);
                let slow_log = Arc::clone(slow_log);
                *in_flight.0.lock().expect("in-flight counter") += 1;
                pool.submit(move || {
                    let query_start = Instant::now();
                    let outcome = execute_query(&manager, &req);
                    let micros = query_start.elapsed().as_micros() as u64;
                    if outcome.is_err() {
                        metrics.counter("server.errors").inc();
                    }
                    if micros >= defaults.slow_query_micros {
                        let cached = match &outcome {
                            Ok(ResponseBody::Query(resp)) => resp.cached_scores,
                            _ => false,
                        };
                        slow_log.push(SlowQueryEntry {
                            world: req
                                .world
                                .clone()
                                .unwrap_or_else(|| crate::tenancy::DEFAULT_WORLD.to_string()),
                            value: req.query.value.clone(),
                            method: req.spec.method.wire_name().to_string(),
                            micros,
                            cached,
                        });
                        metrics.counter("server.slow_queries").inc();
                    }
                    let response = wire::Response {
                        id: request.id,
                        outcome,
                    };
                    let encode_start = Instant::now();
                    let encoded = wire::encode_response(&response);
                    metrics
                        .histogram("server.encode_ns")
                        .record(encode_start.elapsed().as_nanos() as u64);
                    let _ = line_tx.send((seq, encoded));
                    // Decrement only after the response is queued, so
                    // a barriered admin command cannot overtake it.
                    let (count, cv) = &*in_flight;
                    *count.lock().expect("in-flight counter") -= 1;
                    cv.notify_all();
                });
            }
            RequestBody::Admin(admin) => {
                let (count, cv) = &**in_flight;
                let mut n = count.lock().expect("in-flight counter");
                while *n > 0 {
                    n = cv.wait(n).expect("in-flight counter");
                }
                drop(n);
                let outcome = execute_admin(manager, admin, slow_log)
                    .map(ResponseBody::Admin)
                    .map_err(|e| e.to_string());
                if outcome.is_err() {
                    metrics.counter("server.errors").inc();
                }
                let response = wire::Response {
                    id: request.id,
                    outcome,
                };
                let _ = line_tx.send((seq, wire::encode_response(&response)));
            }
        },
        Err(e) => {
            metrics.counter("server.errors.decode").inc();
            // Salvage the id if the line was valid JSON with one.
            let id = wire::Json::parse(&line)
                .ok()
                .and_then(|v| match v {
                    wire::Json::Obj(f) => f.get("id").cloned(),
                    _ => None,
                })
                .and_then(|v| match v {
                    wire::Json::Num(n) if n >= 0.0 => Some(n as u64),
                    _ => None,
                })
                .unwrap_or(0);
            let response = wire::Response {
                id,
                outcome: Err(e.to_string()),
            };
            let _ = line_tx.send((seq, wire::encode_response(&response)));
        }
    }
}

/// Executes one query against the world registry: resolve the named
/// world, then execute against its engine holding no tenancy lock.
fn execute_query(
    manager: &WorldManager,
    req: &crate::engine::QueryRequest,
) -> Result<ResponseBody, String> {
    let engine = manager
        .resolve(req.world.as_deref())
        .map_err(|e| e.to_string())?;
    engine
        .execute(req)
        .map(ResponseBody::Query)
        .map_err(|e| e.to_string())
}

fn execute_admin(
    manager: &Arc<WorldManager>,
    admin: AdminRequest,
    slow_log: &Arc<SlowQueryLog>,
) -> Result<AdminResponse, crate::tenancy::TenancyError> {
    match admin {
        AdminRequest::Load {
            world,
            spec,
            background: false,
        } => {
            let generation = manager.load(&world, spec)?;
            Ok(AdminResponse::World { world, generation })
        }
        AdminRequest::Load {
            world,
            spec,
            background: true,
        } => match manager.load_background(&world, spec)? {
            // Already resident with the identical spec: nothing to
            // build, answer like a synchronous no-op load.
            Some(generation) => Ok(AdminResponse::World { world, generation }),
            None => Ok(AdminResponse::Loading { world }),
        },
        AdminRequest::Swap { world, spec, warm } => {
            let generation = manager.swap(&world, spec, warm)?;
            Ok(AdminResponse::World { world, generation })
        }
        AdminRequest::Evict { world } => {
            manager.evict(&world)?;
            Ok(AdminResponse::World {
                world,
                generation: 0,
            })
        }
        AdminRequest::Save { world } => {
            let (generation, snapshot_bytes) = manager.save(&world)?;
            Ok(AdminResponse::Saved {
                world,
                generation,
                snapshot_bytes,
            })
        }
        AdminRequest::Checkpoint => {
            let (worlds, snapshot_bytes) = manager.checkpoint()?;
            Ok(AdminResponse::Checkpoint {
                worlds,
                snapshot_bytes,
            })
        }
        AdminRequest::List => Ok(AdminResponse::List(manager.list())),
        AdminRequest::Stats => Ok(AdminResponse::Stats(manager.stats())),
        AdminRequest::Metrics { reset } => {
            // Snapshot everything first, reset after, so a
            // `metrics {reset: true}` scrape never loses a count it
            // did not report.
            let service = manager.metrics().snapshot();
            let worlds = manager.world_metrics(reset);
            let slow_queries = slow_log.entries();
            if reset {
                manager.metrics().reset();
                slow_log.clear();
            }
            Ok(AdminResponse::Metrics(MetricsReport {
                service,
                worlds,
                slow_queries,
            }))
        }
    }
}

/// A blocking client for the line protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a running service.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn read_response(&mut self) -> Result<wire::Response, crate::Error> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(crate::Error::Remote("server closed connection".into()));
        }
        Ok(wire::decode_response(line.trim_end())?)
    }

    /// Executes one query, blocking for the response.
    pub fn query(
        &mut self,
        req: &crate::engine::QueryRequest,
    ) -> Result<crate::engine::QueryResponse, crate::Error> {
        self.query_batch(std::slice::from_ref(req))?.remove(0)
    }

    /// Pipelines a batch of queries over the connection and collects
    /// their responses, in request order.
    pub fn query_batch(
        &mut self,
        reqs: &[crate::engine::QueryRequest],
    ) -> Result<Vec<Result<crate::engine::QueryResponse, crate::Error>>, crate::Error> {
        let first_id = self.next_id;
        for req in reqs {
            let request = wire::Request {
                id: self.next_id,
                body: RequestBody::Query(req.clone()),
            };
            self.next_id += 1;
            self.writer
                .write_all(wire::encode_request(&request).as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            let response = self.read_response()?;
            let expect = first_id + i as u64;
            if response.id != expect {
                return Err(crate::Error::Remote(format!(
                    "response id {} does not match request id {expect}",
                    response.id
                )));
            }
            out.push(match response.outcome {
                Ok(ResponseBody::Query(resp)) => Ok(resp),
                Ok(ResponseBody::Admin(_)) => Err(crate::Error::Remote(
                    "server answered a query with an admin payload".into(),
                )),
                Err(msg) => Err(crate::Error::Remote(msg)),
            });
        }
        Ok(out)
    }

    /// Sends one admin command, blocking for its payload.
    pub fn admin(&mut self, admin: AdminRequest) -> Result<AdminResponse, crate::Error> {
        let id = self.next_id;
        self.next_id += 1;
        let request = wire::Request {
            id,
            body: RequestBody::Admin(admin),
        };
        self.writer
            .write_all(wire::encode_request(&request).as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let response = self.read_response()?;
        if response.id != id {
            return Err(crate::Error::Remote(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        match response.outcome {
            Ok(ResponseBody::Admin(resp)) => Ok(resp),
            Ok(ResponseBody::Query(_)) => Err(crate::Error::Remote(
                "server answered an admin command with a query payload".into(),
            )),
            Err(msg) => Err(crate::Error::Remote(msg)),
        }
    }

    /// `world.load`: make a world resident, blocking until it is;
    /// returns its generation.
    pub fn world_load(&mut self, world: &str, spec: WorldSpec) -> Result<u64, crate::Error> {
        match self.admin(AdminRequest::Load {
            world: world.to_string(),
            spec,
            background: false,
        })? {
            AdminResponse::World { generation, .. } => Ok(generation),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.load` with `background: true`: the server answers
    /// immediately and builds the world on a worker thread. Returns
    /// `None` when the build was accepted (poll
    /// [`world_list`](Client::world_list) for the `ready` state) or
    /// `Some(generation)` when the world was already resident with
    /// the identical spec.
    pub fn world_load_background(
        &mut self,
        world: &str,
        spec: WorldSpec,
    ) -> Result<Option<u64>, crate::Error> {
        match self.admin(AdminRequest::Load {
            world: world.to_string(),
            spec,
            background: true,
        })? {
            AdminResponse::Loading { .. } => Ok(None),
            AdminResponse::World { generation, .. } => Ok(Some(generation)),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.swap`: replace a world (invalidating its caches) with
    /// the default warm-up ([`DEFAULT_SWAP_WARM`]
    /// hottest keys replayed into the fresh engine); returns the new
    /// generation.
    ///
    /// [`DEFAULT_SWAP_WARM`]: crate::tenancy::DEFAULT_SWAP_WARM
    pub fn world_swap(&mut self, world: &str, spec: WorldSpec) -> Result<u64, crate::Error> {
        self.world_swap_warm(world, spec, crate::tenancy::DEFAULT_SWAP_WARM)
    }

    /// `world.swap` with an explicit warm-up count (0 installs the
    /// replacement engine fully cold).
    pub fn world_swap_warm(
        &mut self,
        world: &str,
        spec: WorldSpec,
        warm: usize,
    ) -> Result<u64, crate::Error> {
        match self.admin(AdminRequest::Swap {
            world: world.to_string(),
            spec,
            warm,
        })? {
            AdminResponse::World { generation, .. } => Ok(generation),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.save`: write a durable snapshot of a resident world
    /// (server must be running with `--data-dir`); returns
    /// `(generation, snapshot bytes)`.
    pub fn world_save(&mut self, world: &str) -> Result<(u64, u64), crate::Error> {
        match self.admin(AdminRequest::Save {
            world: world.to_string(),
        })? {
            AdminResponse::Saved {
                generation,
                snapshot_bytes,
                ..
            } => Ok((generation, snapshot_bytes)),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `checkpoint`: snapshot every resident world and compact the
    /// admin WAL into the manifest; returns `(worlds, total snapshot
    /// bytes)`.
    pub fn checkpoint(&mut self) -> Result<(usize, u64), crate::Error> {
        match self.admin(AdminRequest::Checkpoint)? {
            AdminResponse::Checkpoint {
                worlds,
                snapshot_bytes,
            } => Ok((worlds, snapshot_bytes)),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.evict`: drop a resident world.
    pub fn world_evict(&mut self, world: &str) -> Result<(), crate::Error> {
        match self.admin(AdminRequest::Evict {
            world: world.to_string(),
        })? {
            AdminResponse::World { .. } => Ok(()),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `world.list`: snapshot the server's world registry.
    pub fn world_list(&mut self) -> Result<Vec<WorldInfo>, crate::Error> {
        match self.admin(AdminRequest::List)? {
            AdminResponse::List(worlds) => Ok(worlds),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `stats`: per-world cache counters.
    pub fn stats(&mut self) -> Result<ServiceStats, crate::Error> {
        match self.admin(AdminRequest::Stats)? {
            AdminResponse::Stats(stats) => Ok(stats),
            other => Err(unexpected_admin(other)),
        }
    }

    /// `metrics`: the full telemetry snapshot — service counters,
    /// per-world registries, and the slow-query log. `reset: true`
    /// zeroes every counter and histogram (and drains the slow-query
    /// log) after the snapshot is taken, for interval scraping.
    pub fn metrics(&mut self, reset: bool) -> Result<MetricsReport, crate::Error> {
        match self.admin(AdminRequest::Metrics { reset })? {
            AdminResponse::Metrics(report) => Ok(report),
            other => Err(unexpected_admin(other)),
        }
    }
}

fn unexpected_admin(resp: AdminResponse) -> crate::Error {
    crate::Error::Remote(format!("unexpected admin payload: {resp:?}"))
}

impl Client {
    /// Convenience: `query` + unwrap into (answers, total).
    pub fn protein_functions(
        &mut self,
        protein: &str,
        spec: crate::engine::RankerSpec,
    ) -> Result<crate::engine::QueryResponse, crate::Error> {
        self.query(&crate::engine::QueryRequest::protein_functions(
            protein, spec,
        ))
    }
}
