//! Admission control, backpressure, and fault injection for the
//! serving layer.
//!
//! Everything the server uses to stay standing under load lives here:
//!
//! * [`ConnectionBudget`] — a counting semaphore over accepted
//!   connections. The accept loop takes a [`ConnectionPermit`] per
//!   connection and **sheds** (answers a one-line `overloaded` notice
//!   and closes) instead of spawning a thread when the budget is
//!   exhausted, so a connection flood can never exhaust threads or
//!   memory.
//! * [`InFlightGauge`] — a global count of admitted-but-unanswered
//!   queries. It doubles as the bounded request queue (the server
//!   sheds a request when the gauge is at `queue_depth`) and as the
//!   drain barrier (`server.drain` waits for it to reach zero).
//! * [`TokenBucket`] — a per-connection request rate limiter.
//! * [`LineReader`] — a line reader with a hard per-line byte cap
//!   (oversized requests are rejected without buffering past the cap)
//!   and slow-loris reaping: a read timeout with a *partial line*
//!   pending closes the connection, while a quiet idle connection
//!   survives indefinitely.
//! * [`FaultPlan`] — an injection layer for the overload tests and
//!   `biorank serve --fault-plan`. Disabled (the default) it costs one
//!   branch on an `Option`; enabled it can delay accepts, delay /
//!   blackhole / truncate responses, close connections early, and
//!   stall estimator batches (via the process-global
//!   [`maybe_stall_batch`] hook polled from the fused sweep loop).

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A counting semaphore bounding concurrent connections.
///
/// `try_acquire` never blocks: the accept loop must shed, not queue,
/// when the budget is gone — a blocked accept loop is exactly the
/// hang this type exists to prevent.
#[derive(Debug)]
pub struct ConnectionBudget {
    max: usize,
    active: AtomicUsize,
}

impl ConnectionBudget {
    /// A budget admitting at most `max` concurrent connections
    /// (clamped to at least one).
    pub fn new(max: usize) -> Arc<ConnectionBudget> {
        Arc::new(ConnectionBudget {
            max: max.max(1),
            active: AtomicUsize::new(0),
        })
    }

    /// Takes one permit, or `None` when the budget is exhausted.
    pub fn try_acquire(self: &Arc<ConnectionBudget>) -> Option<ConnectionPermit> {
        self.active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max).then_some(n + 1)
            })
            .ok()
            .map(|_| ConnectionPermit {
                budget: Arc::clone(self),
            })
    }

    /// Connections currently holding a permit.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The configured maximum.
    pub fn max(&self) -> usize {
        self.max
    }
}

/// An RAII connection permit; dropping it returns the slot.
#[derive(Debug)]
pub struct ConnectionPermit {
    budget: Arc<ConnectionBudget>,
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.budget.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A global gauge of admitted-but-unanswered queries, with a condvar
/// so a drain can wait for it to hit zero.
#[derive(Debug, Default)]
pub struct InFlightGauge {
    count: Mutex<u64>,
    cv: Condvar,
}

impl InFlightGauge {
    /// A fresh gauge at zero.
    pub fn new() -> Arc<InFlightGauge> {
        Arc::new(InFlightGauge::default())
    }

    /// Counts one query in; the returned guard counts it back out on
    /// drop (normal completion and panic unwinding alike).
    pub fn enter(self: &Arc<InFlightGauge>) -> InFlightGuard {
        *self.count.lock().expect("in-flight gauge") += 1;
        InFlightGuard {
            gauge: Arc::clone(self),
        }
    }

    /// The current in-flight count.
    pub fn current(&self) -> u64 {
        *self.count.lock().expect("in-flight gauge")
    }

    /// Blocks until the gauge reaches zero or `timeout` elapses;
    /// returns the count still in flight (0 means fully drained).
    pub fn wait_idle(&self, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut n = self.count.lock().expect("in-flight gauge");
        while *n > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (next, _) = self.cv.wait_timeout(n, left).expect("in-flight gauge");
            n = next;
        }
        *n
    }
}

/// RAII in-flight marker handed out by [`InFlightGauge::enter`].
#[derive(Debug)]
pub struct InFlightGuard {
    gauge: Arc<InFlightGauge>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        let mut n = self.gauge.count.lock().expect("in-flight gauge");
        *n = n.saturating_sub(1);
        drop(n);
        self.gauge.cv.notify_all();
    }
}

/// A token-bucket request rate limiter (per connection: no locking —
/// the reader thread owns it).
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling `rate_per_sec` tokens per second with burst
    /// capacity equal to one second of refill (at least one token).
    pub fn new(rate_per_sec: u32) -> TokenBucket {
        let rate = f64::from(rate_per_sec.max(1));
        TokenBucket {
            capacity: rate,
            tokens: rate,
            rate_per_sec: rate,
            last: Instant::now(),
        }
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.capacity);
    }

    /// Takes one token if available.
    pub fn try_take(&mut self) -> bool {
        self.refill();
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Milliseconds until the next token exists (a retry hint; 1 ms
    /// minimum so clients never busy-loop on 0).
    pub fn retry_after_ms(&self) -> u64 {
        let deficit = (1.0 - self.tokens).max(0.0);
        ((deficit / self.rate_per_sec) * 1_000.0).ceil().max(1.0) as u64
    }
}

/// Why [`LineReader::read_line`] gave up on a connection.
#[derive(Debug)]
pub enum LineError {
    /// A single request line exceeded the configured byte cap. The
    /// reader stopped buffering at the cap; line framing is lost, so
    /// the server answers one error and closes.
    Oversized {
        /// The configured cap the line blew through.
        limit: usize,
    },
    /// The read timeout fired with a *partial* line pending — the
    /// slow-loris signature (idle timeouts with an empty buffer do
    /// not produce this; the reader just keeps waiting).
    Stalled,
    /// Any other socket error.
    Io(std::io::Error),
}

/// A line reader over a [`TcpStream`] enforcing a per-line byte cap
/// and slow-loris semantics (see [`LineError`]). The stream's read
/// timeout must be configured by the caller; this type only
/// interprets the resulting `WouldBlock`/`TimedOut` errors.
#[derive(Debug)]
pub struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Scan resume offset: bytes before it are known newline-free.
    scanned: usize,
    max_line: usize,
}

impl LineReader {
    /// Wraps `stream`, capping each line at `max_line` bytes
    /// (exclusive of the newline).
    pub fn new(stream: TcpStream, max_line: usize) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            scanned: 0,
            max_line: max_line.max(1),
        }
    }

    /// Reads the next line: `Ok(Some(line))` without its terminator,
    /// `Ok(None)` on clean EOF (any unterminated trailing bytes are
    /// discarded, matching `BufRead::lines` would-be-garbage).
    pub fn read_line(&mut self) -> Result<Option<String>, LineError> {
        loop {
            if let Some(idx) = self.buf[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| self.scanned + i)
            {
                let mut line: Vec<u8> = self.buf.drain(..=idx).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max_line {
                return Err(LineError::Oversized {
                    limit: self.max_line,
                });
            }
            let mut chunk = [0u8; 4096];
            // Never buffer past the cap: one byte over is enough to
            // convict the line, so reads shrink as the cap nears.
            let want = chunk.len().min(self.max_line + 1 - self.buf.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.buf.is_empty() {
                        continue; // idle, not stalled: keep waiting
                    }
                    return Err(LineError::Stalled);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(LineError::Io(e)),
            }
        }
    }
}

/// Deterministic fault injection for overload testing, parsed from
/// `biorank serve --fault-plan key=value,...` (see [`FaultPlan::parse`]).
///
/// All faults default off; [`FaultPlan::default`] is a no-op plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Sleep this long before handling each accepted connection
    /// (`accept_delay_ms=N`).
    pub accept_delay_ms: u64,
    /// Sleep this long before writing each response line
    /// (`response_delay_ms=N`).
    pub response_delay_ms: u64,
    /// Never write responses — drain them silently (`blackhole`).
    pub blackhole: bool,
    /// Write only half of each response line, then close the
    /// connection (`short_write`).
    pub short_write: bool,
    /// Close the connection's write side after this many complete
    /// responses; 0 disables (`close_after=N`).
    pub close_after: u64,
    /// Stall every fused estimator batch by this long, process-wide —
    /// the lever that makes a deadline fire mid-estimate
    /// (`stall_batch_ms=N`; see [`maybe_stall_batch`]).
    pub stall_batch_ms: u64,
}

impl FaultPlan {
    /// Parses a comma-separated `key=value` plan. Boolean faults
    /// accept a bare key (`blackhole`) or `key=true|false|1|0`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            let num = || -> Result<u64, String> {
                value
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("fault {key:?} needs an integer value"))
            };
            let flag = || -> Result<bool, String> {
                match value {
                    None | Some("true") | Some("1") => Ok(true),
                    Some("false") | Some("0") => Ok(false),
                    Some(other) => Err(format!("fault {key:?}: {other:?} is not a boolean")),
                }
            };
            match key {
                "accept_delay_ms" => plan.accept_delay_ms = num()?,
                "response_delay_ms" => plan.response_delay_ms = num()?,
                "blackhole" => plan.blackhole = flag()?,
                "short_write" => plan.short_write = flag()?,
                "close_after" => plan.close_after = num()?,
                "stall_batch_ms" => plan.stall_batch_ms = num()?,
                other => return Err(format!("unknown fault {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Process-global estimator stall, in nanoseconds. A process-global
/// (rather than a field threaded through `WorldManager` into every
/// engine) keeps the fault layer invisible to the query path's types;
/// the cost when disabled is one relaxed load per fused batch.
static STALL_BATCH_NS: AtomicU64 = AtomicU64::new(0);

/// Installs (or, with 0, clears) the process-wide per-batch estimator
/// stall. Called by the server when a [`FaultPlan`] is configured.
pub fn set_stall_batch_ms(ms: u64) {
    STALL_BATCH_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
}

/// The estimator-side fault hook: sleeps for the configured stall (a
/// no-op when none is installed). The engine polls this between fused
/// propagation batches.
pub fn maybe_stall_batch() {
    let ns = STALL_BATCH_NS.load(Ordering::Relaxed);
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sheds_at_max_and_permits_return() {
        let budget = ConnectionBudget::new(2);
        let a = budget.try_acquire().expect("first permit");
        let _b = budget.try_acquire().expect("second permit");
        assert!(budget.try_acquire().is_none());
        assert_eq!(budget.active(), 2);
        drop(a);
        assert_eq!(budget.active(), 1);
        assert!(budget.try_acquire().is_some());
    }

    #[test]
    fn budget_clamps_to_one() {
        let budget = ConnectionBudget::new(0);
        assert_eq!(budget.max(), 1);
        let _p = budget.try_acquire().expect("one permit");
        assert!(budget.try_acquire().is_none());
    }

    #[test]
    fn gauge_counts_and_drains() {
        let gauge = InFlightGauge::new();
        let a = gauge.enter();
        let b = gauge.enter();
        assert_eq!(gauge.current(), 2);
        // Still busy: the wait times out reporting the stragglers.
        assert_eq!(gauge.wait_idle(Duration::from_millis(10)), 2);
        let waiter = {
            let gauge = Arc::clone(&gauge);
            std::thread::spawn(move || gauge.wait_idle(Duration::from_secs(5)))
        };
        drop(a);
        drop(b);
        assert_eq!(waiter.join().expect("waiter"), 0);
        assert_eq!(gauge.current(), 0);
    }

    #[test]
    fn token_bucket_limits_burst_then_refills() {
        let mut bucket = TokenBucket::new(10);
        let taken = (0..20).filter(|_| bucket.try_take()).count();
        assert_eq!(taken, 10, "burst capacity is one second of refill");
        assert!(bucket.retry_after_ms() >= 1);
        std::thread::sleep(Duration::from_millis(150));
        assert!(bucket.try_take(), "refill restores tokens");
    }

    #[test]
    fn fault_plan_parses_and_rejects() {
        assert_eq!(FaultPlan::parse("").expect("empty"), FaultPlan::default());
        let plan = FaultPlan::parse("accept_delay_ms=5,blackhole,close_after=3").expect("plan");
        assert_eq!(plan.accept_delay_ms, 5);
        assert!(plan.blackhole);
        assert_eq!(plan.close_after, 3);
        assert!(!plan.short_write);
        let plan = FaultPlan::parse("short_write=true,stall_batch_ms=20").expect("plan");
        assert!(plan.short_write);
        assert_eq!(plan.stall_batch_ms, 20);
        assert!(FaultPlan::parse("explode=1").is_err());
        assert!(FaultPlan::parse("blackhole=maybe").is_err());
        assert!(FaultPlan::parse("close_after").is_err());
    }

    #[test]
    fn line_reader_caps_and_splits() {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"alpha\r\nbeta\n").expect("write");
            s.write_all(&vec![b'x'; 64]).expect("flood");
        });
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = LineReader::new(stream, 32);
        assert_eq!(reader.read_line().expect("line").as_deref(), Some("alpha"));
        assert_eq!(reader.read_line().expect("line").as_deref(), Some("beta"));
        match reader.read_line() {
            Err(LineError::Oversized { limit: 32 }) => {}
            other => panic!("expected oversized, got {other:?}"),
        }
        client.join().expect("client");
    }

    #[test]
    fn line_reader_reaps_mid_line_stall_but_not_idle() {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"whole\n").expect("write");
            s.write_all(b"dribb").expect("partial"); // no newline, then silence
            std::thread::sleep(Duration::from_millis(400));
        });
        let (stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        let mut reader = LineReader::new(stream, 1024);
        // Idle gaps before a complete line are absorbed silently.
        assert_eq!(reader.read_line().expect("line").as_deref(), Some("whole"));
        match reader.read_line() {
            Err(LineError::Stalled) => {}
            other => panic!("expected stalled, got {other:?}"),
        }
        client.join().expect("client");
    }

    #[test]
    fn stall_hook_is_noop_when_cleared() {
        set_stall_batch_ms(0);
        let start = Instant::now();
        for _ in 0..1_000 {
            maybe_stall_batch();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        set_stall_batch_ms(5);
        let start = Instant::now();
        maybe_stall_batch();
        assert!(start.elapsed() >= Duration::from_millis(5));
        set_stall_batch_ms(0);
    }
}
