//! The deterministic synthetic world generator.
//!
//! [`World::generate`] builds, from a seed, a complete consistent set of
//! source tables reproducing the population structure of the paper's
//! evaluation: the 20 well-studied proteins of Table 1 with exactly the
//! reported `#iProClass` / `#BioRank` function counts, the 7 less-known
//! functions of Table 2, and the 11 hypothetical proteins of Table 3
//! with their answer-set sizes. Evidence paths are materialized through
//! carrier pools (families, BLAST neighbors) so that independent
//! functions share carriers — the convergent structure that makes
//! reliability differ from propagation.

use std::collections::BTreeMap;

use biorank_schema::prob_to_evalue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::evidence::{EvidenceModel, FunctionClass, PathKind};
use crate::go::{GoTerm, GoUniverse};
use crate::paper_data::{self, TABLE1, TABLE3};
use crate::source::Registry;
use crate::tables::{
    AmigoSource, BlastHit, BlastSource, EntrezGeneSource, EntrezProteinSource, FamilyHit,
    FamilySource, GeneRecord, IproclassSource, PdbSource, UniProtSource,
};

/// Whether a protein is experimentally characterized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProteinKind {
    /// One of the 20 iProClass reference proteins (scenarios 1–2).
    WellStudied,
    /// One of the 11 hypothetical bacterial proteins (scenario 3).
    Hypothetical,
}

/// Ground truth for one protein.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProteinProfile {
    /// Gene/protein symbol.
    pub name: String,
    /// Studied or hypothetical.
    pub kind: ProteinKind,
    /// Every candidate function BioRank will retrieve, with its truth
    /// class.
    pub functions: Vec<(GoTerm, FunctionClass)>,
}

impl ProteinProfile {
    /// Functions of a given class.
    pub fn functions_of(&self, class: FunctionClass) -> Vec<GoTerm> {
        self.functions
            .iter()
            .filter(|(_, c)| *c == class)
            .map(|(g, _)| *g)
            .collect()
    }
}

/// Generation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldParams {
    /// Master seed; equal seeds produce equal worlds.
    pub seed: u64,
    /// Number of generated noise GO terms beyond the paper's named ones.
    pub extra_go_terms: usize,
    /// The evidence model.
    pub evidence: EvidenceModel,
    /// Populate the full 11-source federation (PIRSF, SuperFamily, CDD,
    /// UniProt, PDB in addition to the Fig. 1 sources). Off by default:
    /// the paper's evaluation queries only traverse the Fig. 1 subset.
    pub extended: bool,
}

impl Default for WorldParams {
    fn default() -> Self {
        WorldParams {
            seed: 0xB10_C0DE,
            extra_go_terms: 1600,
            evidence: EvidenceModel::default(),
            extended: false,
        }
    }
}

/// A fully generated world: ground truth plus all source tables.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct World {
    /// Parameters the world was generated from.
    pub params: WorldParams,
    /// The GO term universe.
    pub go: GoUniverse,
    /// Ground-truth profiles, Table 1 order then Table 3 order.
    pub profiles: Vec<ProteinProfile>,
    /// `EntrezProtein` table.
    pub entrez_protein: EntrezProteinSource,
    /// Pfam table.
    pub pfam: FamilySource,
    /// TIGRFAM table.
    pub tigrfam: FamilySource,
    /// NCBIBlast table.
    pub blast: BlastSource,
    /// EntrezGene table.
    pub entrez_gene: EntrezGeneSource,
    /// AmiGO table.
    pub amigo: AmigoSource,
    /// iProClass gold standard.
    pub iproclass: IproclassSource,
    /// PIRSF table (extended federation; empty unless
    /// [`WorldParams::extended`]).
    pub pirsf: FamilySource,
    /// SuperFamily table (extended federation).
    pub superfamily: FamilySource,
    /// CDD conserved-domain table (extended federation).
    pub cdd: FamilySource,
    /// UniProt cross-reference table (extended federation).
    pub uniprot: UniProtSource,
    /// PDB structure table (extended federation).
    pub pdb: PdbSource,
}

/// Carrier pools for one protein during generation.
struct Pools {
    /// (strength, family key) per family source.
    pfam: Vec<(f64, String)>,
    tigr: Vec<(f64, String)>,
    /// (strength, class, hit key, gene id) for BLAST neighbors.
    neighbors: Vec<(f64, FunctionClass, String, String)>,
}

struct Counters {
    family: usize,
    gene: usize,
    hit: usize,
}

impl World {
    /// Generates the world for the given parameters.
    pub fn generate(params: WorldParams) -> World {
        let mut go = GoUniverse::with_terms(params.extra_go_terms);
        let noise_pool: Vec<GoTerm> = go.generated_terms().collect();
        let mut next_noise = 0usize;
        let take_noise = |n: usize, cursor: &mut usize| -> Vec<GoTerm> {
            let slice: Vec<GoTerm> = noise_pool[*cursor..*cursor + n].to_vec();
            *cursor += n;
            slice
        };

        let mut w = World {
            params: params.clone(),
            go: GoUniverse::default(), // filled at the end
            profiles: Vec::new(),
            entrez_protein: EntrezProteinSource::default(),
            pfam: FamilySource::new("Pfam", "prot2pfam", "pfam2go"),
            tigrfam: FamilySource::new("TigrFam", "prot2tigrfam", "tigrfam2go"),
            blast: BlastSource::default(),
            entrez_gene: EntrezGeneSource::default(),
            amigo: AmigoSource::default(),
            iproclass: IproclassSource::default(),
            pirsf: FamilySource::new("PIRSF", "prot2pirsf", "pirsf2go"),
            superfamily: FamilySource::new("SuperFamily", "prot2superfamily", "superfamily2go"),
            cdd: FamilySource::new("CDD", "prot2cdd", "cdd2go"),
            uniprot: UniProtSource::default(),
            pdb: PdbSource::default(),
        };
        let mut counters = Counters {
            family: 0,
            gene: 0,
            hit: 0,
        };
        let mut evidence_of: BTreeMap<GoTerm, biorank_schema::EvidenceCode> = BTreeMap::new();

        // ---- The 20 well-studied proteins (Tables 1 & 2). -------------
        // ABCC8's well-known set starts with the §2 example functions.
        let abcc8_examples = [8281u32, 6813, 5524, 5886, 5215].map(GoTerm);
        for row in TABLE1 {
            let less_known = paper_data::table2_functions(row.protein);
            let mut well_known: Vec<GoTerm> = Vec::with_capacity(row.iproclass_functions);
            if row.protein == "ABCC8" {
                well_known.extend(abcc8_examples);
            }
            let need = row.iproclass_functions - well_known.len();
            well_known.extend(take_noise(need, &mut next_noise));
            let noise_count = row.biorank_functions - row.iproclass_functions - less_known.len();
            let noise = take_noise(noise_count, &mut next_noise);

            let mut functions: Vec<(GoTerm, FunctionClass)> = Vec::new();
            functions.extend(well_known.iter().map(|&g| (g, FunctionClass::WellKnown)));
            functions.extend(less_known.iter().map(|&g| (g, FunctionClass::LessKnown)));
            functions.extend(noise.iter().map(|&g| (g, FunctionClass::Noise)));

            w.materialize_protein(
                row.protein,
                ProteinKind::WellStudied,
                &functions,
                &params.evidence,
                params.seed,
                &mut counters,
                &mut evidence_of,
            );
            w.iproclass.gold.insert(row.protein.to_string(), well_known);
        }

        // ---- The 11 hypothetical proteins (Table 3). -------------------
        for row in TABLE3 {
            let truth = GoTerm(row.go);
            let noise = take_noise(row.answer_set_size - 1, &mut next_noise);
            let mut functions = vec![(truth, FunctionClass::Expert)];
            functions.extend(noise.iter().map(|&g| (g, FunctionClass::Noise)));
            w.materialize_protein(
                row.protein,
                ProteinKind::Hypothetical,
                &functions,
                &params.evidence,
                params.seed,
                &mut counters,
                &mut evidence_of,
            );
        }

        if params.extended {
            w.populate_extended_federation(params.seed);
        }

        // AmiGO: one record per GO term that any annotation references.
        for (term, code) in evidence_of {
            w.amigo.evidence.insert(term, code);
            if go.name(term).is_none() {
                go.insert(term, format!("function {term}"));
            }
        }
        w.amigo.universe = go.clone();
        w.go = go;
        w
    }

    /// Materializes one protein's records and evidence paths.
    #[allow(clippy::too_many_arguments)]
    fn materialize_protein(
        &mut self,
        name: &str,
        kind: ProteinKind,
        functions: &[(GoTerm, FunctionClass)],
        model: &EvidenceModel,
        world_seed: u64,
        counters: &mut Counters,
        evidence_of: &mut BTreeMap<GoTerm, biorank_schema::EvidenceCode>,
    ) {
        // Each protein gets its own deterministic RNG stream so that
        // tuning one scenario's evidence profile cannot reshuffle the
        // draws of another scenario's proteins.
        let rng = &mut StdRng::seed_from_u64(world_seed ^ fnv1a(name));
        let hypothetical = kind == ProteinKind::Hypothetical;
        self.entrez_protein
            .records
            .insert(name.to_string(), random_sequence(rng));

        // The protein's own gene, reached via the perfect self-BLAST
        // hit (only for studied proteins — hypothetical proteins have no
        // curated gene record, which is what makes them hard).
        let self_gene = if hypothetical {
            None
        } else {
            let gene_id = format!("EG:{name}");
            self.entrez_gene.records.insert(
                gene_id.clone(),
                GeneRecord {
                    status: biorank_schema::StatusCode::Reviewed,
                    annotations: Vec::new(),
                },
            );
            let hit_key = format!("HIT:{name}:self");
            self.blast
                .hits
                .entry(name.to_string())
                .or_default()
                .push(BlastHit {
                    hit_key,
                    e_value: prob_to_evalue(biorank_graph::Prob::new(0.98).expect("const")),
                    id_eg: gene_id.clone(),
                });
            Some(gene_id)
        };

        let mut pools = Pools {
            pfam: Vec::new(),
            tigr: Vec::new(),
            neighbors: Vec::new(),
        };

        for &(go, class) in functions {
            // Strong-noise selection happens here so the fraction is a
            // property of the noise population, not a separate class.
            let profile = if class == FunctionClass::Noise
                && !hypothetical
                && rng.gen::<f64>() < model.strong_noise_fraction
            {
                &model.strong_noise
            } else {
                model.profile(class, hypothetical)
            };
            evidence_of
                .entry(go)
                .or_insert_with(|| profile.draw_evidence(rng));

            let n_paths = profile.draw_paths(rng);
            for _ in 0..n_paths {
                let strength = profile.draw_strength(rng);
                let mut path_kind = profile.kinds.sample(rng);
                if path_kind == PathKind::GeneDirect && self_gene.is_none() {
                    path_kind = PathKind::BlastNeighbor;
                }
                match path_kind {
                    PathKind::GeneDirect => {
                        let gene_id = self_gene.as_ref().expect("checked above");
                        let rec = self
                            .entrez_gene
                            .records
                            .get_mut(gene_id)
                            .expect("self gene exists");
                        if !rec.annotations.contains(&go) {
                            rec.annotations.push(go);
                        }
                    }
                    PathKind::Pfam => {
                        let annotates = |fam: &str| {
                            self.pfam
                                .annotations
                                .get(fam)
                                .is_some_and(|gos| gos.contains(&go))
                        };
                        let family = pick_family(
                            &mut pools.pfam,
                            strength,
                            profile.reuse,
                            model,
                            rng,
                            counters,
                            "PF",
                            annotates,
                        );
                        add_family_path(&mut self.pfam, name, &family, strength, go);
                    }
                    PathKind::TigrFam => {
                        let annotates = |fam: &str| {
                            self.tigrfam
                                .annotations
                                .get(fam)
                                .is_some_and(|gos| gos.contains(&go))
                        };
                        let family = pick_family(
                            &mut pools.tigr,
                            strength,
                            profile.reuse,
                            model,
                            rng,
                            counters,
                            "TF",
                            annotates,
                        );
                        add_family_path(&mut self.tigrfam, name, &family, strength, go);
                    }
                    PathKind::BlastNeighbor => {
                        let (hit_key, gene_id) = self.pick_neighbor(
                            &mut pools.neighbors,
                            name,
                            class,
                            strength,
                            go,
                            profile,
                            model,
                            rng,
                            counters,
                        );
                        let _ = hit_key;
                        let rec = self
                            .entrez_gene
                            .records
                            .get_mut(&gene_id)
                            .expect("neighbor gene exists");
                        if !rec.annotations.contains(&go) {
                            rec.annotations.push(go);
                        }
                    }
                }
            }
        }

        // Hypothetical (bacterial) proteins have sparsely linked
        // annotations; ontology links among their candidates are rare
        // enough to omit.
        if !hypothetical {
            self.link_ontology(functions, model, rng);
        }

        // Dead evidence: similarity hits to completely unannotated
        // genes/families. Real BLAST output is dominated by these; the
        // mediator integrates them and pruning/reduction removes them
        // (the paper's −78% effect). They never reach an answer node,
        // so rankings are provably unaffected.
        let live_hits = self.blast.hits.get(name).map_or(0, Vec::len);
        let dead_hits = (live_hits as f64 * model.dead_hit_factor).round() as usize;
        for _ in 0..dead_hits {
            counters.gene += 1;
            counters.hit += 1;
            let gene_id = format!("EG{:05}", counters.gene);
            let hit_key = format!("HIT{:05}", counters.hit);
            self.entrez_gene.records.insert(
                gene_id.clone(),
                GeneRecord {
                    status: biorank_schema::StatusCode::Predicted,
                    annotations: Vec::new(),
                },
            );
            self.blast
                .hits
                .entry(name.to_string())
                .or_default()
                .push(BlastHit {
                    hit_key,
                    e_value: prob_to_evalue(biorank_graph::Prob::clamped(rng.gen_range(0.05..0.5))),
                    id_eg: gene_id,
                });
        }
        let live_fams = self.pfam.hits.get(name).map_or(0, Vec::len)
            + self.tigrfam.hits.get(name).map_or(0, Vec::len);
        let dead_fams = (live_fams as f64 * model.dead_family_factor).round() as usize;
        for i in 0..dead_fams {
            counters.family += 1;
            let fam = format!("PF{:05}", counters.family);
            let src = if i % 2 == 0 {
                &mut self.pfam
            } else {
                &mut self.tigrfam
            };
            src.hits
                .entry(name.to_string())
                .or_default()
                .push(FamilyHit {
                    family: fam.clone(),
                    e_value: prob_to_evalue(biorank_graph::Prob::clamped(rng.gen_range(0.05..0.5))),
                });
            src.annotations.insert(fam, Vec::new());
        }

        self.profiles.push(ProteinProfile {
            name: name.to_string(),
            kind,
            functions: functions.to_vec(),
        });
    }

    /// Adds `is_a` links among this protein's *generated* candidate
    /// terms (paper-named terms are shared across proteins and must not
    /// gain links, or answer sets would leak between queries).
    ///
    /// Links go from larger to smaller term ids, which keeps the global
    /// ontology acyclic. With probability `isa_redundant`, one of the
    /// child's annotating genes also annotates the parent — creating
    /// the redundant-annotation diamond where propagation over-counts.
    fn link_ontology(
        &mut self,
        functions: &[(GoTerm, FunctionClass)],
        model: &EvidenceModel,
        rng: &mut StdRng,
    ) {
        const GENERATED: u32 = 100_000;
        for &(child, class) in functions {
            if child.0 < GENERATED {
                continue;
            }
            let link_prob = match class {
                FunctionClass::WellKnown => model.isa_well_known,
                FunctionClass::Noise => model.isa_noise,
                FunctionClass::LessKnown | FunctionClass::Expert => 0.0,
            };
            if link_prob == 0.0 || rng.gen::<f64>() >= link_prob {
                continue;
            }
            let parents: Vec<GoTerm> = functions
                .iter()
                .filter(|(g, c)| *c == class && g.0 >= GENERATED && g.0 < child.0)
                .map(|(g, _)| *g)
                .collect();
            let Some(&parent) = parents.get(rng.gen_range(0..parents.len().max(1))) else {
                continue;
            };
            let entry = self.amigo.isa.entry(child).or_default();
            if !entry.contains(&parent) {
                entry.push(parent);
            }
            if rng.gen::<f64>() < model.isa_redundant {
                // Generated terms belong to exactly one protein, so any
                // gene annotating `child` is one of this protein's
                // carriers.
                let carrier = self
                    .entrez_gene
                    .records
                    .iter()
                    .find(|(_, r)| r.annotations.contains(&child))
                    .map(|(k, _)| k.clone());
                if let Some(gene_id) = carrier {
                    let rec = self
                        .entrez_gene
                        .records
                        .get_mut(&gene_id)
                        .expect("carrier exists");
                    if !rec.annotations.contains(&parent) {
                        rec.annotations.push(parent);
                    }
                }
            }
        }
    }

    /// Finds or creates a BLAST neighbor compatible with `(class,
    /// strength)`.
    #[allow(clippy::too_many_arguments)]
    fn pick_neighbor(
        &mut self,
        pool: &mut Vec<(f64, FunctionClass, String, String)>,
        protein: &str,
        class: FunctionClass,
        strength: f64,
        go: GoTerm,
        profile: &crate::evidence::ClassProfile,
        model: &EvidenceModel,
        rng: &mut StdRng,
        counters: &mut Counters,
    ) -> (String, String) {
        // With probability `double_hit`, realize the path as a second
        // BLAST alignment to a gene that already annotates the function:
        // the two hit edges then share the (uncertain) gene node, the
        // structure on which propagation over-counts (Fig. 4a).
        if profile.double_hit > 0.0 && rng.gen::<f64>() < profile.double_hit {
            let existing = pool.iter().find(|(s, c, _, gene)| {
                *c == class
                    && (s - strength).abs() <= model.pool_tolerance * 2.0
                    && self
                        .entrez_gene
                        .records
                        .get(gene)
                        .is_some_and(|r| r.annotations.contains(&go))
            });
            if let Some((_, _, _, gene)) = existing {
                let gene = gene.clone();
                counters.hit += 1;
                let hit_key = format!("HIT{:05}", counters.hit);
                self.blast
                    .hits
                    .entry(protein.to_string())
                    .or_default()
                    .push(BlastHit {
                        hit_key: hit_key.clone(),
                        e_value: prob_to_evalue(biorank_graph::Prob::clamped(strength)),
                        id_eg: gene.clone(),
                    });
                return (hit_key, gene);
            }
        }
        // A carrier already annotating this GO term would collapse two
        // paths into one edge; skip those so path counts stay faithful.
        let same_class: Vec<usize> = pool
            .iter()
            .enumerate()
            .filter(|(_, (s, c, _, gene))| {
                *c == class
                    && (s - strength).abs() <= model.pool_tolerance
                    && !self
                        .entrez_gene
                        .records
                        .get(gene)
                        .is_some_and(|r| r.annotations.contains(&go))
            })
            .map(|(i, _)| i)
            .collect();
        if let Some(&i) = same_class.first() {
            let class_count = pool.iter().filter(|(_, c, _, _)| *c == class).count();
            // Reuse existing carriers once the pool is saturated, or
            // stochastically before that (sharing creates convergence).
            if class_count >= model.max_pool || rng.gen::<f64>() < profile.reuse {
                let (_, _, hit, gene) = &pool[i];
                return (hit.clone(), gene.clone());
            }
        }
        // Create a new neighbor.
        counters.gene += 1;
        counters.hit += 1;
        let gene_id = format!("EG{:05}", counters.gene);
        let hit_key = format!("HIT{:05}", counters.hit);
        self.entrez_gene.records.insert(
            gene_id.clone(),
            GeneRecord {
                status: profile.draw_status(rng),
                annotations: Vec::new(),
            },
        );
        self.blast
            .hits
            .entry(protein.to_string())
            .or_default()
            .push(BlastHit {
                hit_key: hit_key.clone(),
                e_value: prob_to_evalue(biorank_graph::Prob::clamped(strength)),
                id_eg: gene_id.clone(),
            });
        pool.push((strength, class, hit_key.clone(), gene_id.clone()));
        (hit_key, gene_id)
    }

    /// Ground truth for a protein.
    pub fn profile(&self, name: &str) -> Option<&ProteinProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// Builds a [`Registry`] over cloned snapshots of the source tables.
    ///
    /// The extended-federation sources are always registered; their
    /// tables are simply empty when [`WorldParams::extended`] is off.
    pub fn registry(&self) -> Registry {
        let mut r = Registry::new();
        r.register(Box::new(self.entrez_protein.clone()));
        r.register(Box::new(self.pfam.clone()));
        r.register(Box::new(self.tigrfam.clone()));
        r.register(Box::new(self.blast.clone()));
        r.register(Box::new(self.entrez_gene.clone()));
        r.register(Box::new(self.amigo.clone()));
        r.register(Box::new(self.pirsf.clone()));
        r.register(Box::new(self.superfamily.clone()));
        r.register(Box::new(self.cdd.clone()));
        r.register(Box::new(self.uniprot.clone()));
        r.register(Box::new(self.pdb.clone()));
        r
    }

    /// Fills the PIRSF / SuperFamily / CDD / UniProt / PDB tables.
    ///
    /// Each protein gets: a PIRSF family reinforcing its strongest true
    /// functions (the paper: "results from PIRSF are more accurate than
    /// Pfam"), a SuperFamily and a CDD hit covering a mixed slice of
    /// candidates at medium/weak strength, a UniProt cross-reference to
    /// its own gene (studied proteins only), and 0–3 PDB structures —
    /// leaves that every query graph prunes away.
    fn populate_extended_federation(&mut self, world_seed: u64) {
        let profiles = self.profiles.clone();
        let mut ext_counter = 0usize;
        for profile in &profiles {
            let rng = &mut StdRng::seed_from_u64(world_seed ^ fnv1a(&profile.name) ^ 0xE47E);
            let name = &profile.name;
            let truths: Vec<GoTerm> = profile
                .functions
                .iter()
                .filter(|(_, c)| *c != FunctionClass::Noise)
                .map(|(g, _)| *g)
                .collect();
            let noise: Vec<GoTerm> = profile.functions_of(FunctionClass::Noise);

            // PIRSF: one accurate family covering up to 2 true functions.
            if !truths.is_empty() {
                ext_counter += 1;
                let fam = format!("SF{ext_counter:05}");
                self.pirsf
                    .hits
                    .entry(name.clone())
                    .or_default()
                    .push(FamilyHit {
                        family: fam.clone(),
                        e_value: prob_to_evalue(biorank_graph::Prob::clamped(
                            rng.gen_range(0.7..0.95),
                        )),
                    });
                let take = truths.len().min(2);
                self.pirsf.annotations.insert(fam, truths[..take].to_vec());
            }

            // SuperFamily: a broader, weaker family over a mixed slice.
            {
                ext_counter += 1;
                let fam = format!("SSF{ext_counter:05}");
                self.superfamily
                    .hits
                    .entry(name.clone())
                    .or_default()
                    .push(FamilyHit {
                        family: fam.clone(),
                        e_value: prob_to_evalue(biorank_graph::Prob::clamped(
                            rng.gen_range(0.35..0.7),
                        )),
                    });
                let mut anns: Vec<GoTerm> = truths.iter().take(1).copied().collect();
                anns.extend(noise.iter().take(2).copied());
                self.superfamily.annotations.insert(fam, anns);
            }

            // CDD: a conserved domain with weak, noisy coverage.
            if !noise.is_empty() {
                ext_counter += 1;
                let dom = format!("CD{ext_counter:05}");
                self.cdd
                    .hits
                    .entry(name.clone())
                    .or_default()
                    .push(FamilyHit {
                        family: dom.clone(),
                        e_value: prob_to_evalue(biorank_graph::Prob::clamped(
                            rng.gen_range(0.1..0.45),
                        )),
                    });
                let take = noise.len().min(3);
                self.cdd.annotations.insert(dom, noise[..take].to_vec());
            }

            // UniProt: curated cross-reference to the protein's own gene.
            let gene_id = format!("EG:{name}");
            if self.entrez_gene.records.contains_key(&gene_id) {
                ext_counter += 1;
                self.uniprot
                    .records
                    .insert(name.clone(), (format!("P{ext_counter:05}"), gene_id));
            }

            // PDB: structures — relationship-free leaves.
            let n_structs = rng.gen_range(0..=3);
            if n_structs > 0 {
                let ids = (0..n_structs)
                    .map(|i| format!("{}{i:01}XY", &name[..1.min(name.len())]))
                    .map(|base| {
                        ext_counter += 1;
                        format!("{base}{ext_counter:04}")
                    })
                    .collect();
                self.pdb.structures.insert(name.clone(), ids);
            }
        }
    }
}

/// Finds or creates a family carrier with a compatible hit strength that
/// does not already annotate the target GO term.
#[allow(clippy::too_many_arguments)]
fn pick_family(
    pool: &mut Vec<(f64, String)>,
    strength: f64,
    reuse: f64,
    model: &EvidenceModel,
    rng: &mut StdRng,
    counters: &mut Counters,
    prefix: &str,
    already_annotates: impl Fn(&str) -> bool,
) -> String {
    if let Some((_, fam)) = pool
        .iter()
        .find(|(s, fam)| (s - strength).abs() <= model.pool_tolerance && !already_annotates(fam))
    {
        if pool.len() >= model.max_pool || rng.gen::<f64>() < reuse {
            return fam.clone();
        }
    }
    counters.family += 1;
    let fam = format!("{prefix}{:05}", counters.family);
    pool.push((strength, fam.clone()));
    fam
}

/// Registers a protein→family hit (if new) and annotates the family.
fn add_family_path(
    source: &mut FamilySource,
    protein: &str,
    family: &str,
    strength: f64,
    go: GoTerm,
) {
    let hits = source.hits.entry(protein.to_string()).or_default();
    if !hits.iter().any(|h| h.family == family) {
        hits.push(FamilyHit {
            family: family.to_string(),
            e_value: prob_to_evalue(biorank_graph::Prob::clamped(strength)),
        });
    }
    let anns = source.annotations.entry(family.to_string()).or_default();
    if !anns.contains(&go) {
        anns.push(go);
    }
}

/// 64-bit FNV-1a hash of a protein name, for per-protein RNG streams.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Random amino-acid sequence (decorative — similarity is synthetic).
fn random_sequence(rng: &mut StdRng) -> String {
    const AA: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
    let len = rng.gen_range(120..400);
    (0..len)
        .map(|_| AA[rng.gen_range(0..AA.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldParams::default())
    }

    #[test]
    fn world_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.entrez_gene.records.len(), b.entrez_gene.records.len());
        assert_eq!(a.blast.hits, b.blast.hits);
        assert_eq!(a.pfam.annotations, b.pfam.annotations);
    }

    #[test]
    fn world_has_all_31_proteins() {
        let w = world();
        assert_eq!(w.profiles.len(), 31);
        assert_eq!(
            w.profiles
                .iter()
                .filter(|p| p.kind == ProteinKind::WellStudied)
                .count(),
            20
        );
        assert_eq!(
            w.profiles
                .iter()
                .filter(|p| p.kind == ProteinKind::Hypothetical)
                .count(),
            11
        );
    }

    #[test]
    fn function_counts_match_table1() {
        let w = world();
        for row in TABLE1 {
            let p = w.profile(row.protein).unwrap();
            assert_eq!(
                p.functions.len(),
                row.biorank_functions,
                "{}: candidate count",
                row.protein
            );
            assert_eq!(
                p.functions_of(FunctionClass::WellKnown).len(),
                row.iproclass_functions,
                "{}: well-known count",
                row.protein
            );
            assert_eq!(
                w.iproclass.functions(row.protein).len(),
                row.iproclass_functions
            );
        }
    }

    #[test]
    fn less_known_functions_match_table2() {
        let w = world();
        for name in ["ABCC8", "CFTR", "EYA1"] {
            let p = w.profile(name).unwrap();
            let lk = p.functions_of(FunctionClass::LessKnown);
            assert_eq!(lk, paper_data::table2_functions(name), "{name}");
            // Less-known functions must NOT be in iProClass.
            for go in lk {
                assert!(!w.iproclass.is_known(name, go));
            }
        }
    }

    #[test]
    fn hypothetical_proteins_match_table3() {
        let w = world();
        for row in TABLE3 {
            let p = w.profile(row.protein).unwrap();
            assert_eq!(p.functions.len(), row.answer_set_size, "{}", row.protein);
            let truth = p.functions_of(FunctionClass::Expert);
            assert_eq!(truth, vec![GoTerm(row.go)], "{}", row.protein);
            // Hypothetical proteins have no curated self gene.
            assert!(!w
                .entrez_gene
                .records
                .contains_key(&format!("EG:{}", row.protein)));
        }
    }

    #[test]
    fn every_function_is_evidenced_somewhere() {
        let w = world();
        // Collect all GO terms reachable through any annotation table.
        let mut annotated: std::collections::BTreeSet<GoTerm> = std::collections::BTreeSet::new();
        for gos in w.pfam.annotations.values() {
            annotated.extend(gos.iter().copied());
        }
        for gos in w.tigrfam.annotations.values() {
            annotated.extend(gos.iter().copied());
        }
        for rec in w.entrez_gene.records.values() {
            annotated.extend(rec.annotations.iter().copied());
        }
        for p in &w.profiles {
            for (go, _) in &p.functions {
                assert!(annotated.contains(go), "{}: {} unevidenced", p.name, go);
                assert!(w.amigo.evidence.contains_key(go), "{go} missing from AmiGO");
            }
        }
    }

    #[test]
    fn self_gene_exists_for_studied_proteins() {
        let w = world();
        for row in TABLE1 {
            let gene_id = format!("EG:{}", row.protein);
            assert!(
                w.entrez_gene.records.contains_key(&gene_id),
                "{gene_id} missing"
            );
            let hits = &w.blast.hits[row.protein];
            assert!(
                hits.iter().any(|h| h.id_eg == gene_id),
                "{}: self blast hit missing",
                row.protein
            );
        }
    }

    #[test]
    fn registry_covers_the_fig1_entity_sets() {
        let w = world();
        let r = w.registry();
        for es in [
            "EntrezProtein",
            "Pfam",
            "TigrFam",
            "NCBIBlast",
            "EntrezGene",
            "AmiGO",
        ] {
            assert!(r.owner(es).is_some(), "{es} unowned");
        }
        // The query for ABCC8 finds the protein record.
        assert_eq!(r.search("EntrezProtein", "ABCC8").len(), 1);
    }

    #[test]
    fn noise_terms_are_disjoint_across_proteins() {
        let w = world();
        let mut seen = std::collections::BTreeSet::new();
        for p in &w.profiles {
            for go in p.functions_of(FunctionClass::Noise) {
                assert!(seen.insert((go, ())), "noise term {go} reused");
            }
        }
    }

    #[test]
    fn sequences_look_like_proteins() {
        let w = world();
        let seq = &w.entrez_protein.records["ABCC8"];
        assert!(seq.len() >= 120);
        assert!(seq.chars().all(|c| "ACDEFGHIKLMNPQRSTVWY".contains(c)));
    }
}
