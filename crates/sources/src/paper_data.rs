//! Ground-truth constants lifted from the paper's tables.
//!
//! * Table 1 — the 20 iProClass reference proteins with their function
//!   counts (`#iProClass`, `#BioRank`).
//! * Table 2 — the 7 less-known functions for ABCC8/Cftr/EYA1 with their
//!   PubMed provenance.
//! * Table 3 — the 11 hypothetical proteins, their expert-assigned
//!   function, and the answer-set size implied by the Random column.
//!
//! The synthetic world generator reproduces exactly these population
//! sizes so that Tables 1–3 regenerate with the paper's row structure.

use crate::go::GoTerm;

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Protein / gene symbol.
    pub protein: &'static str,
    /// Number of (well-known) functions listed in iProClass.
    pub iproclass_functions: usize,
    /// Number of candidate functions in BioRank's answer set.
    pub biorank_functions: usize,
}

/// Table 1: the 20 golden-standard proteins.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        protein: "ABCC8",
        iproclass_functions: 13,
        biorank_functions: 97,
    },
    Table1Row {
        protein: "ABCD1",
        iproclass_functions: 15,
        biorank_functions: 79,
    },
    Table1Row {
        protein: "AGPAT2",
        iproclass_functions: 10,
        biorank_functions: 16,
    },
    Table1Row {
        protein: "ATP1A2",
        iproclass_functions: 31,
        biorank_functions: 108,
    },
    Table1Row {
        protein: "ATP7A",
        iproclass_functions: 35,
        biorank_functions: 130,
    },
    Table1Row {
        protein: "CFTR",
        iproclass_functions: 19,
        biorank_functions: 90,
    },
    Table1Row {
        protein: "CNTS",
        iproclass_functions: 8,
        biorank_functions: 15,
    },
    Table1Row {
        protein: "DARE",
        iproclass_functions: 18,
        biorank_functions: 39,
    },
    Table1Row {
        protein: "EIF2B1",
        iproclass_functions: 15,
        biorank_functions: 35,
    },
    Table1Row {
        protein: "EYA1",
        iproclass_functions: 12,
        biorank_functions: 38,
    },
    Table1Row {
        protein: "FGFR3",
        iproclass_functions: 16,
        biorank_functions: 65,
    },
    Table1Row {
        protein: "GALT",
        iproclass_functions: 8,
        biorank_functions: 15,
    },
    Table1Row {
        protein: "GCH1",
        iproclass_functions: 10,
        biorank_functions: 21,
    },
    Table1Row {
        protein: "GLDC",
        iproclass_functions: 7,
        biorank_functions: 17,
    },
    Table1Row {
        protein: "GNE",
        iproclass_functions: 13,
        biorank_functions: 24,
    },
    Table1Row {
        protein: "LPL",
        iproclass_functions: 13,
        biorank_functions: 36,
    },
    Table1Row {
        protein: "MLH1",
        iproclass_functions: 19,
        biorank_functions: 52,
    },
    Table1Row {
        protein: "MUTL",
        iproclass_functions: 13,
        biorank_functions: 28,
    },
    Table1Row {
        protein: "RYR2",
        iproclass_functions: 18,
        biorank_functions: 66,
    },
    Table1Row {
        protein: "SLC17A5",
        iproclass_functions: 13,
        biorank_functions: 66,
    },
];

/// Sum of Table 1's `#iProClass` column (the paper reports 306).
pub fn table1_iproclass_total() -> usize {
    TABLE1.iter().map(|r| r.iproclass_functions).sum()
}

/// Sum of Table 1's `#BioRank` column.
///
/// The paper's sum row prints 1036, but its own 20 cells add up to 1037
/// — an off-by-one in the paper. We keep the per-protein cells verbatim
/// and report their true sum.
pub fn table1_biorank_total() -> usize {
    TABLE1.iter().map(|r| r.biorank_functions).sum()
}

/// One row of Table 2: a less-known function and its provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Protein carrying the newly discovered function.
    pub protein: &'static str,
    /// The GO term id.
    pub go: u32,
    /// PubMed id of the publication describing the function.
    pub pubmed_id: u32,
    /// Publication year.
    pub year: u16,
}

/// Table 2: the 7 less-known functions for 3 well-studied proteins.
///
/// Note the paper spells the second protein `Cftr` in Table 2 while
/// Table 1 has `CFTR`; we normalize to the Table 1 symbol.
pub const TABLE2: &[Table2Row] = &[
    Table2Row {
        protein: "ABCC8",
        go: 6855,
        pubmed_id: 18025464,
        year: 2007,
    },
    Table2Row {
        protein: "ABCC8",
        go: 15559,
        pubmed_id: 18025464,
        year: 2007,
    },
    Table2Row {
        protein: "ABCC8",
        go: 42493,
        pubmed_id: 18025464,
        year: 2007,
    },
    Table2Row {
        protein: "CFTR",
        go: 30321,
        pubmed_id: 17869070,
        year: 2007,
    },
    Table2Row {
        protein: "CFTR",
        go: 42493,
        pubmed_id: 18045536,
        year: 2007,
    },
    Table2Row {
        protein: "EYA1",
        go: 7501,
        pubmed_id: 17637804,
        year: 2007,
    },
    Table2Row {
        protein: "EYA1",
        go: 42472,
        pubmed_id: 17637804,
        year: 2007,
    },
];

/// One row of Table 3: a hypothetical protein and its expert-validated
/// function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table3Row {
    /// Bacterial protein identifier.
    pub protein: &'static str,
    /// The expert-assigned GO function.
    pub go: u32,
    /// Size of BioRank's answer set for this protein (upper end of the
    /// Random column's rank interval).
    pub answer_set_size: usize,
}

/// Table 3: the 11 hypothetical proteins.
pub const TABLE3: &[Table3Row] = &[
    Table3Row {
        protein: "DP0843",
        go: 3973,
        answer_set_size: 47,
    },
    Table3Row {
        protein: "DP1954",
        go: 19175,
        answer_set_size: 18,
    },
    Table3Row {
        protein: "NMC0498",
        go: 16226,
        answer_set_size: 5,
    },
    Table3Row {
        protein: "NMC1442",
        go: 50518,
        answer_set_size: 17,
    },
    Table3Row {
        protein: "NMC1815",
        go: 19143,
        answer_set_size: 14,
    },
    Table3Row {
        protein: "SO_0025",
        go: 4729,
        answer_set_size: 5,
    },
    Table3Row {
        protein: "SO_0599",
        go: 5524,
        answer_set_size: 19,
    },
    Table3Row {
        protein: "SO_0828",
        go: 8990,
        answer_set_size: 4,
    },
    Table3Row {
        protein: "SO_0887",
        go: 47632,
        answer_set_size: 6,
    },
    Table3Row {
        protein: "SO_1523",
        go: 3951,
        answer_set_size: 24,
    },
    Table3Row {
        protein: "WGLp528",
        go: 4017,
        answer_set_size: 9,
    },
];

/// Less-known functions of one protein as [`GoTerm`]s.
pub fn table2_functions(protein: &str) -> Vec<GoTerm> {
    TABLE2
        .iter()
        .filter(|r| r.protein == protein)
        .map(|r| GoTerm(r.go))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        assert_eq!(TABLE1.len(), 20);
        assert_eq!(table1_iproclass_total(), 306);
        // The paper's sum row says 1036; the cells genuinely sum to 1037.
        assert_eq!(table1_biorank_total(), 1037);
    }

    #[test]
    fn table1_ratio_for_abcc8_is_13_percent() {
        let r = &TABLE1[0];
        assert_eq!(r.protein, "ABCC8");
        let ratio = r.iproclass_functions as f64 / r.biorank_functions as f64;
        assert!((ratio - 0.13).abs() < 0.005);
    }

    #[test]
    fn table2_has_seven_functions_for_three_proteins() {
        assert_eq!(TABLE2.len(), 7);
        let mut proteins: Vec<_> = TABLE2.iter().map(|r| r.protein).collect();
        proteins.dedup();
        assert_eq!(proteins, vec!["ABCC8", "CFTR", "EYA1"]);
        assert_eq!(table2_functions("ABCC8").len(), 3);
        assert_eq!(table2_functions("CFTR").len(), 2);
        assert_eq!(table2_functions("EYA1").len(), 2);
    }

    #[test]
    fn table2_proteins_are_table1_proteins() {
        for r in TABLE2 {
            assert!(
                TABLE1.iter().any(|p| p.protein == r.protein),
                "{} missing from Table 1",
                r.protein
            );
        }
    }

    #[test]
    fn table3_has_eleven_hypothetical_proteins() {
        assert_eq!(TABLE3.len(), 11);
        for r in TABLE3 {
            assert!(r.answer_set_size >= 1);
            assert!(
                !TABLE1.iter().any(|p| p.protein == r.protein),
                "hypothetical {} must not be well-studied",
                r.protein
            );
        }
    }

    #[test]
    fn table2_terms_exist_in_the_universe() {
        let u = crate::go::GoUniverse::with_terms(0);
        for r in TABLE2 {
            assert!(u.contains(GoTerm(r.go)), "GO:{:07} missing", r.go);
        }
        for r in TABLE3 {
            assert!(u.contains(GoTerm(r.go)), "GO:{:07} missing", r.go);
        }
    }
}
