//! The generative evidence model behind the synthetic world.
//!
//! The paper's central empirical observation (Fig. 9) is a *structural*
//! difference in how true facts are evidenced:
//!
//! * **well-known** functions are supported by many redundant paths of
//!   medium strength ("commonly, many different ways lead to the same
//!   well-known conclusion");
//! * **less-known** functions — recent discoveries not yet propagated
//!   into curated databases — have "a small number of supporting
//!   evidence with high confidence score";
//! * **noise** candidates (wrong functions dragged in by imprecise
//!   similarity matching) have one to a few weak paths, with a small
//!   fraction of *strong noise* (spuriously strong similarity hits);
//! * **hypothetical-protein** functions (scenario 3) sit in sparse
//!   graphs where only evidence strength can discriminate.
//!
//! [`EvidenceModel`] encodes those four regimes as per-class profiles:
//! path-count range, path-strength range, and a mix over the four
//! mechanical path kinds of the Fig. 1 schema. The defaults were tuned
//! so the regenerated Figs. 5–6 match the paper's *shape* (method
//! ordering and approximate gaps), not its absolute decimals —
//! `EXPERIMENTS.md` records both.

use biorank_schema::{EvidenceCode, StatusCode};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Truth status of a candidate function for a protein.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FunctionClass {
    /// Curated in iProClass — the scenario-1 relevant set.
    WellKnown,
    /// True, recently published, not yet curated — scenario 2.
    LessKnown,
    /// True function of a hypothetical protein, expert-validated —
    /// scenario 3.
    Expert,
    /// An incorrect candidate pulled in by noisy integration.
    Noise,
}

/// The mechanical realization of one evidence path (Fig. 1 schema).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathKind {
    /// The protein's own EntrezGene record annotates the function
    /// (reached via the perfect self-BLAST hit): query → protein →
    /// blast(self) → gene → GO.
    GeneDirect,
    /// A Pfam family hit annotates the function: query → protein →
    /// family → GO (short path).
    Pfam,
    /// A TIGRFAM family hit (short path, HMM confidence).
    TigrFam,
    /// A BLAST neighbor's gene annotates the function (long path):
    /// query → protein → hit → gene → GO.
    BlastNeighbor,
}

/// Mixing weights over [`PathKind`]s.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KindWeights {
    /// Weight of [`PathKind::GeneDirect`].
    pub gene_direct: f64,
    /// Weight of [`PathKind::Pfam`].
    pub pfam: f64,
    /// Weight of [`PathKind::TigrFam`].
    pub tigrfam: f64,
    /// Weight of [`PathKind::BlastNeighbor`].
    pub blast: f64,
}

impl KindWeights {
    /// Samples a path kind proportionally to the weights.
    pub fn sample(&self, rng: &mut StdRng) -> PathKind {
        let total = self.gene_direct + self.pfam + self.tigrfam + self.blast;
        debug_assert!(total > 0.0, "kind weights must not all be zero");
        let mut x = rng.gen::<f64>() * total;
        x -= self.gene_direct;
        if x < 0.0 {
            return PathKind::GeneDirect;
        }
        x -= self.pfam;
        if x < 0.0 {
            return PathKind::Pfam;
        }
        x -= self.tigrfam;
        if x < 0.0 {
            return PathKind::TigrFam;
        }
        PathKind::BlastNeighbor
    }
}

/// Evidence profile of one function class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassProfile {
    /// Inclusive range of independent evidence paths per function.
    pub paths: (usize, usize),
    /// Range of per-path strength (the probability the e-value / match
    /// quality transforms to).
    pub strength: (f64, f64),
    /// Path-kind mix.
    pub kinds: KindWeights,
    /// Status codes for BLAST-neighbor gene records carrying this class.
    pub neighbor_statuses: Vec<StatusCode>,
    /// Evidence codes for the AmiGO annotation of this class.
    pub evidence_codes: Vec<EvidenceCode>,
    /// Probability of reusing an existing strength-compatible carrier
    /// (family / BLAST neighbor) instead of minting a new one. High
    /// reuse creates shared-evidence structure — the correlation that
    /// separates reliability from propagation.
    pub reuse: f64,
    /// Probability that a BLAST path lands on a *second alignment* to a
    /// neighbor gene that already annotates the function. The two hits
    /// then share the gene node — parallel paths with a common uncertain
    /// segment, which propagation double-counts but reliability does
    /// not (the Fig. 4a phenomenon inside real query graphs).
    pub double_hit: f64,
}

impl ClassProfile {
    /// Draws a path count from the profile's range.
    pub fn draw_paths(&self, rng: &mut StdRng) -> usize {
        let (lo, hi) = self.paths;
        if lo >= hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        }
    }

    /// Draws a path strength from the profile's range.
    pub fn draw_strength(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = self.strength;
        if lo >= hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    }

    /// Draws a neighbor status code.
    pub fn draw_status(&self, rng: &mut StdRng) -> StatusCode {
        self.neighbor_statuses[rng.gen_range(0..self.neighbor_statuses.len())]
    }

    /// Draws an AmiGO evidence code.
    pub fn draw_evidence(&self, rng: &mut StdRng) -> EvidenceCode {
        self.evidence_codes[rng.gen_range(0..self.evidence_codes.len())]
    }
}

/// The full generative model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvidenceModel {
    /// Scenario-1 relevant functions.
    pub well_known: ClassProfile,
    /// Scenario-2 relevant functions.
    pub less_known: ClassProfile,
    /// Ordinary noise candidates.
    pub noise: ClassProfile,
    /// Spuriously strong noise (fools evidence-strength rankers).
    pub strong_noise: ClassProfile,
    /// Fraction of noise functions drawn from the strong-noise profile.
    pub strong_noise_fraction: f64,
    /// Scenario-3 true functions of hypothetical proteins.
    pub hypo_true: ClassProfile,
    /// Noise candidates of hypothetical proteins.
    pub hypo_noise: ClassProfile,
    /// Strength tolerance when reusing a pooled carrier.
    pub pool_tolerance: f64,
    /// Maximum carriers per (kind, class) pool per protein.
    pub max_pool: usize,
    /// Probability that a well-known candidate term gets an `is_a` link
    /// to another (more general) well-known candidate of the same
    /// protein. The Gene Ontology is a DAG; these term–term links are
    /// part of AmiGO's exported relationships and create the
    /// non-series-parallel diamonds on which propagation and
    /// reliability genuinely differ.
    pub isa_well_known: f64,
    /// Like [`EvidenceModel::isa_well_known`] for noise candidates.
    pub isa_noise: f64,
    /// Given an `is_a` link child→parent, probability that one of the
    /// child's annotating genes also annotates the parent directly —
    /// the classic redundant-annotation diamond (curators record both
    /// the specific and the general term).
    pub isa_redundant: f64,
    /// Dead BLAST hits per live hit: similarity matches whose genes
    /// carry no GO annotation at all (the typical case for real BLAST
    /// output). They inflate the raw integration graph and are removed
    /// by pruning/reduction — the effect behind the paper's −78%.
    pub dead_hit_factor: f64,
    /// Dead family hits per live family hit (families without GO
    /// mappings).
    pub dead_family_factor: f64,
}

impl Default for EvidenceModel {
    fn default() -> Self {
        use EvidenceCode::*;
        use StatusCode::*;
        EvidenceModel {
            well_known: ClassProfile {
                paths: (3, 7),
                strength: (0.25, 0.9),
                kinds: KindWeights {
                    gene_direct: 0.25,
                    pfam: 0.15,
                    tigrfam: 0.1,
                    blast: 0.5,
                },
                neighbor_statuses: vec![Validated, Provisional, Validated],
                evidence_codes: vec![Ida, Tas, Imp, Iss, Iep, Iea, Iea, Nas],
                reuse: 0.5,
                double_hit: 0.2,
            },
            less_known: ClassProfile {
                paths: (1, 1),
                strength: (0.85, 0.98),
                kinds: KindWeights {
                    gene_direct: 0.0,
                    pfam: 0.4,
                    tigrfam: 0.6,
                    blast: 0.0,
                },
                neighbor_statuses: vec![Reviewed],
                evidence_codes: vec![Igi, Imp, Ipi],
                reuse: 0.0,
                double_hit: 0.0,
            },
            noise: ClassProfile {
                paths: (1, 3),
                strength: (0.08, 0.45),
                kinds: KindWeights {
                    gene_direct: 0.0,
                    pfam: 0.3,
                    tigrfam: 0.15,
                    blast: 0.55,
                },
                neighbor_statuses: vec![Predicted, Model, Inferred],
                evidence_codes: vec![Tas, Imp, Iss, Iep, Iea, Nas],
                reuse: 0.85,
                double_hit: 0.05,
            },
            strong_noise: ClassProfile {
                paths: (1, 2),
                strength: (0.6, 0.9),
                kinds: KindWeights {
                    gene_direct: 0.0,
                    pfam: 0.0,
                    tigrfam: 0.0,
                    blast: 1.0,
                },
                neighbor_statuses: vec![Validated, Provisional],
                evidence_codes: vec![Imp, Iss, Iep],
                reuse: 0.5,
                double_hit: 0.0,
            },
            strong_noise_fraction: 0.12,
            hypo_true: ClassProfile {
                paths: (1, 3),
                strength: (0.4, 0.75),
                kinds: KindWeights {
                    gene_direct: 0.0,
                    pfam: 0.2,
                    tigrfam: 0.1,
                    blast: 0.7,
                },
                neighbor_statuses: vec![Provisional, Predicted],
                evidence_codes: vec![Iss, Rca, Iep],
                reuse: 0.2,
                double_hit: 0.0,
            },
            hypo_noise: ClassProfile {
                paths: (1, 2),
                strength: (0.12, 0.55),
                kinds: KindWeights {
                    gene_direct: 0.0,
                    pfam: 0.35,
                    tigrfam: 0.15,
                    blast: 0.5,
                },
                neighbor_statuses: vec![Predicted, Model, Inferred],
                evidence_codes: vec![Iss, Iep, Iea, Nas],
                reuse: 0.5,
                double_hit: 0.25,
            },
            pool_tolerance: 0.08,
            max_pool: 14,
            isa_well_known: 0.35,
            isa_noise: 0.1,
            isa_redundant: 0.6,
            dead_hit_factor: 1.6,
            dead_family_factor: 0.6,
        }
    }
}

impl EvidenceModel {
    /// The profile for a function class (`strong_noise` is selected by
    /// the generator via [`EvidenceModel::strong_noise_fraction`], not
    /// through this accessor).
    pub fn profile(&self, class: FunctionClass, hypothetical: bool) -> &ClassProfile {
        match (class, hypothetical) {
            (FunctionClass::WellKnown, _) => &self.well_known,
            (FunctionClass::LessKnown, _) => &self.less_known,
            (FunctionClass::Expert, _) => &self.hypo_true,
            (FunctionClass::Noise, false) => &self.noise,
            (FunctionClass::Noise, true) => &self.hypo_noise,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kind_weights_sample_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = KindWeights {
            gene_direct: 0.0,
            pfam: 1.0,
            tigrfam: 0.0,
            blast: 0.0,
        };
        for _ in 0..100 {
            assert_eq!(w.sample(&mut rng), PathKind::Pfam);
        }
    }

    #[test]
    fn kind_weights_cover_all_kinds() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = KindWeights {
            gene_direct: 1.0,
            pfam: 1.0,
            tigrfam: 1.0,
            blast: 1.0,
        };
        let mut seen = [false; 4];
        for _ in 0..1000 {
            match w.sample(&mut rng) {
                PathKind::GeneDirect => seen[0] = true,
                PathKind::Pfam => seen[1] = true,
                PathKind::TigrFam => seen[2] = true,
                PathKind::BlastNeighbor => seen[3] = true,
            }
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn class_profile_draws_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = EvidenceModel::default().well_known.clone();
        for _ in 0..200 {
            let n = p.draw_paths(&mut rng);
            assert!(n >= p.paths.0 && n <= p.paths.1);
            let s = p.draw_strength(&mut rng);
            assert!(s >= p.strength.0 && s < p.strength.1);
        }
    }

    #[test]
    fn default_model_separates_classes_by_strength() {
        let m = EvidenceModel::default();
        // Less-known strength strictly above noise strength.
        assert!(m.less_known.strength.0 > m.noise.strength.1);
        // Hypothetical true and noise strengths overlap by design (the
        // scenario is hard); but the true ceiling must dominate.
        assert!(m.hypo_true.strength.1 > m.hypo_noise.strength.1);
        assert!(m.hypo_true.strength.0 > m.hypo_noise.strength.0);
        // Well-known functions have more paths than noise.
        assert!(m.well_known.paths.0 >= m.noise.paths.0);
        assert!(m.well_known.paths.1 > m.noise.paths.1);
    }

    #[test]
    fn profile_accessor_selects_hypo_variants() {
        let m = EvidenceModel::default();
        assert_eq!(
            m.profile(FunctionClass::Noise, true).strength,
            m.hypo_noise.strength
        );
        assert_eq!(
            m.profile(FunctionClass::Noise, false).strength,
            m.noise.strength
        );
        assert_eq!(
            m.profile(FunctionClass::Expert, true).strength,
            m.hypo_true.strength
        );
    }

    #[test]
    fn fixed_range_draws_are_constant() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = EvidenceModel::default().less_known.clone();
        p.paths = (2, 2);
        for _ in 0..10 {
            assert_eq!(p.draw_paths(&mut rng), 2);
        }
    }
}
