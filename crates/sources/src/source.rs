//! The data-source abstraction the mediator integrates over.
//!
//! Paper §2: "Every data source that we integrate exports one or more
//! entity sets"; the mediator "computes a number of relationships between
//! the sources to achieve the actual integration, e.g. by following
//! foreign keys, looking up aliases, or even matching keywords."
//!
//! A [`Source`] exposes records of its entity sets and *links* — record-
//! level relationship instances, each carrying the record-level
//! confidence `qr` already transformed into a probability (foreign keys
//! get `qr = 1`, e-values go through
//! [`biorank_schema::evalue_to_prob`], etc.). Set-level confidences
//! (`ps`, `qs`) live on the schema and are applied by the mediator when
//! it builds the probabilistic entity graph.

use std::collections::BTreeMap;

use biorank_graph::Prob;
use serde::{Deserialize, Serialize};

/// A record exported by a source, identified by `(entity_set, key)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The entity set this record belongs to (schema name).
    pub entity_set: String,
    /// Source-unique key within the entity set.
    pub key: String,
    /// Human-readable label for graph display.
    pub label: String,
    /// Record-level confidence `pr`, already transformed from the
    /// record's attributes (status code, evidence code, …).
    pub pr: Prob,
    /// Raw attributes, for provenance display.
    pub attrs: Vec<(String, String)>,
}

impl Record {
    /// Convenience constructor without attributes.
    pub fn new(
        entity_set: impl Into<String>,
        key: impl Into<String>,
        label: impl Into<String>,
        pr: Prob,
    ) -> Record {
        Record {
            entity_set: entity_set.into(),
            key: key.into(),
            label: label.into(),
            pr,
            attrs: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Record {
        self.attrs.push((name.into(), value.into()));
        self
    }
}

/// A record-level relationship instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Schema relationship name (e.g. `"prot2blast"`).
    pub relationship: String,
    /// Entity set of the link target.
    pub to_entity_set: String,
    /// Key of the target record within its entity set.
    pub to_key: String,
    /// Record-level confidence `qr` of this link.
    pub qr: Prob,
}

/// A queryable data source.
pub trait Source: Send + Sync {
    /// Source name (matches the paper's catalog).
    fn name(&self) -> &str;

    /// Entity sets this source exports records for.
    fn entity_sets(&self) -> Vec<String>;

    /// Keyword search: records of `entity_set` whose search attribute
    /// matches `value` exactly (the paper's exploratory queries use
    /// exact attribute matches).
    fn search(&self, entity_set: &str, value: &str) -> Vec<Record>;

    /// Fetch one record by key.
    fn get(&self, entity_set: &str, key: &str) -> Option<Record>;

    /// Relationship instances *from* the given record. Sources may
    /// contribute links from entity sets they do not own — that is how
    /// computed relationships (BLAST runs, family matches) integrate
    /// foreign records.
    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link>;
}

/// Routes record lookups to the owning source and aggregates links from
/// all sources.
#[derive(Default)]
pub struct Registry {
    sources: Vec<Box<dyn Source>>,
    owner_of: BTreeMap<String, usize>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source, recording it as the owner of its entity sets.
    /// The first registered owner of an entity set wins.
    pub fn register(&mut self, source: Box<dyn Source>) {
        let idx = self.sources.len();
        for es in source.entity_sets() {
            self.owner_of.entry(es).or_insert(idx);
        }
        self.sources.push(source);
    }

    /// The source owning `entity_set`, if any.
    pub fn owner(&self, entity_set: &str) -> Option<&dyn Source> {
        self.owner_of
            .get(entity_set)
            .map(|&i| self.sources[i].as_ref())
    }

    /// Keyword search against the owner of `entity_set`.
    pub fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.owner(entity_set)
            .map(|s| s.search(entity_set, value))
            .unwrap_or_default()
    }

    /// Record fetch against the owner of `entity_set`.
    pub fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        self.owner(entity_set).and_then(|s| s.get(entity_set, key))
    }

    /// Links from a record, aggregated over *all* registered sources.
    pub fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        let mut out = Vec::new();
        for s in &self.sources {
            out.extend(s.links_from(entity_set, key));
        }
        out
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// `true` when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub {
        name: &'static str,
        es: &'static str,
    }

    impl Source for Stub {
        fn name(&self) -> &str {
            self.name
        }
        fn entity_sets(&self) -> Vec<String> {
            vec![self.es.to_string()]
        }
        fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
            if entity_set == self.es && value == "hit" {
                vec![Record::new(self.es, "k1", "label", Prob::ONE)]
            } else {
                vec![]
            }
        }
        fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
            (entity_set == self.es && key == "k1")
                .then(|| Record::new(self.es, "k1", "label", Prob::ONE))
        }
        fn links_from(&self, entity_set: &str, _key: &str) -> Vec<Link> {
            if entity_set == "A" {
                vec![Link {
                    relationship: format!("{}_rel", self.name),
                    to_entity_set: self.es.to_string(),
                    to_key: "k1".to_string(),
                    qr: Prob::HALF,
                }]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn registry_routes_to_owner() {
        let mut r = Registry::new();
        r.register(Box::new(Stub {
            name: "S1",
            es: "A",
        }));
        r.register(Box::new(Stub {
            name: "S2",
            es: "B",
        }));
        assert_eq!(r.len(), 2);
        assert_eq!(r.search("A", "hit").len(), 1);
        assert_eq!(r.search("B", "miss").len(), 0);
        assert!(r.get("B", "k1").is_some());
        assert!(r.get("C", "k1").is_none());
    }

    #[test]
    fn links_aggregate_across_sources() {
        let mut r = Registry::new();
        r.register(Box::new(Stub {
            name: "S1",
            es: "A",
        }));
        r.register(Box::new(Stub {
            name: "S2",
            es: "B",
        }));
        // Both stubs contribute a link from entity set A.
        let links = r.links_from("A", "k1");
        assert_eq!(links.len(), 2);
        let rels: Vec<_> = links.iter().map(|l| l.relationship.as_str()).collect();
        assert!(rels.contains(&"S1_rel") && rels.contains(&"S2_rel"));
    }

    #[test]
    fn first_owner_wins() {
        let mut r = Registry::new();
        r.register(Box::new(Stub {
            name: "S1",
            es: "A",
        }));
        r.register(Box::new(Stub {
            name: "S2",
            es: "A",
        }));
        assert_eq!(r.owner("A").unwrap().name(), "S1");
    }

    #[test]
    fn record_builder_attrs() {
        let rec = Record::new("E", "k", "lbl", Prob::HALF)
            .with_attr("StatusCode", "Reviewed")
            .with_attr("idGO", "GO:0008281");
        assert_eq!(rec.attrs.len(), 2);
        assert_eq!(rec.attrs[0].1, "Reviewed");
    }
}
