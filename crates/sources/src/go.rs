//! A synthetic Gene Ontology universe.
//!
//! The Gene Ontology is "a shared vocabulary of biological functions"
//! (paper §1) — the common currency that lets BioRank link annotations
//! across sources. The ranking algorithms only need GO terms as opaque,
//! stable identifiers with display names; this module generates a
//! deterministic universe of them, seeding it with the specific terms the
//! paper mentions (Tables 2–3 and the ABCC8 example) so experiment output
//! matches the paper's text.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A GO term identifier, e.g. `GO:0008281`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GoTerm(pub u32);

impl fmt::Display for GoTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GO:{:07}", self.0)
    }
}

impl GoTerm {
    /// Parses `GO:0008281`-style strings.
    pub fn parse(s: &str) -> Option<GoTerm> {
        let digits = s.strip_prefix("GO:")?;
        digits.parse::<u32>().ok().map(GoTerm)
    }
}

/// The set of GO terms known to a generated world, with display names.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GoUniverse {
    names: BTreeMap<GoTerm, String>,
}

/// GO terms named in the paper, used verbatim by the experiments.
///
/// The first five are the ABCC8 example ranking of §2; the next are the
/// scenario-2 (Table 2) and scenario-3 (Table 3) functions.
pub const PAPER_TERMS: &[(u32, &str)] = &[
    (8281, "sulphonylurea receptor activity"),
    (6813, "potassium ion conductance"),
    (5524, "interacting selectively with ATP"),
    (5886, "cytoplasmic membrane"),
    (5215, "small-molecule carrier or transporter"),
    // Table 2 — less-known functions found via PubMed.
    (6855, "multidrug transport"),
    (15559, "multidrug efflux pump activity"),
    (42493, "response to drug"),
    (30321, "transepithelial chloride transport"),
    (7501, "mesodermal cell fate specification"),
    (42472, "inner ear morphogenesis"),
    // Table 3 — hypothetical protein functions.
    (3973, "(S)-2-hydroxy-acid oxidase activity"),
    (19175, "aminopeptidase activity"),
    (16226, "iron-sulfur cluster assembly"),
    (50518, "glycerol-3-phosphate cytidylyltransferase activity"),
    (19143, "3-deoxy-manno-octulosonate-8-phosphatase activity"),
    (4729, "oxygen-dependent protoporphyrinogen oxidase activity"),
    (8990, "rRNA (guanine-N2-)-methyltransferase activity"),
    (47632, "agmatine deiminase activity"),
    (3951, "NAD+ kinase activity"),
    (4017, "adenylate kinase activity"),
];

/// Vocabulary for synthesizing plausible names for generated terms.
const NOUNS: &[&str] = &[
    "kinase",
    "transporter",
    "receptor",
    "oxidase",
    "reductase",
    "ligase",
    "hydrolase",
    "transferase",
    "isomerase",
    "binding",
    "channel",
    "polymerase",
    "protease",
    "phosphatase",
    "synthase",
    "dehydrogenase",
];
const QUALIFIERS: &[&str] = &[
    "ATP-dependent",
    "membrane",
    "cytoplasmic",
    "nuclear",
    "mitochondrial",
    "zinc ion",
    "calcium ion",
    "potassium ion",
    "amino acid",
    "lipid",
    "carbohydrate",
    "nucleotide",
    "iron-sulfur",
    "heme",
    "RNA",
    "DNA",
];

impl GoUniverse {
    /// Builds a universe containing the paper's named terms plus
    /// `extra_terms` generated ones (deterministic in the count).
    pub fn with_terms(extra_terms: usize) -> GoUniverse {
        let mut names = BTreeMap::new();
        for &(id, name) in PAPER_TERMS {
            names.insert(GoTerm(id), name.to_string());
        }
        // Generated terms get ids well above the paper's range so the
        // two can never collide.
        let mut next = 100_000u32;
        for i in 0..extra_terms {
            let q = QUALIFIERS[i % QUALIFIERS.len()];
            let n = NOUNS[(i / QUALIFIERS.len()) % NOUNS.len()];
            let term = GoTerm(next);
            names.insert(term, format!("{q} {n} activity #{i}"));
            next += 7; // arbitrary stride, keeps ids non-contiguous
        }
        GoUniverse { names }
    }

    /// Number of terms in the universe.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the universe has no terms.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Display name of a term, if known.
    pub fn name(&self, t: GoTerm) -> Option<&str> {
        self.names.get(&t).map(String::as_str)
    }

    /// `true` when the term exists in this universe.
    pub fn contains(&self, t: GoTerm) -> bool {
        self.names.contains_key(&t)
    }

    /// All terms in ascending id order.
    pub fn terms(&self) -> impl Iterator<Item = GoTerm> + '_ {
        self.names.keys().copied()
    }

    /// The generated (non-paper) terms, used as the noise pool.
    pub fn generated_terms(&self) -> impl Iterator<Item = GoTerm> + '_ {
        self.names.keys().copied().filter(|t| t.0 >= 100_000)
    }

    /// Registers an additional named term (idempotent for equal names).
    pub fn insert(&mut self, t: GoTerm, name: impl Into<String>) {
        self.names.entry(t).or_insert_with(|| name.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_pads_to_seven_digits() {
        assert_eq!(GoTerm(8281).to_string(), "GO:0008281");
        assert_eq!(GoTerm(5524).to_string(), "GO:0005524");
    }

    #[test]
    fn parse_round_trips() {
        let t = GoTerm(42493);
        assert_eq!(GoTerm::parse(&t.to_string()), Some(t));
        assert_eq!(GoTerm::parse("GO:0008281"), Some(GoTerm(8281)));
        assert_eq!(GoTerm::parse("nope"), None);
        assert_eq!(GoTerm::parse("GO:x"), None);
    }

    #[test]
    fn universe_contains_paper_terms() {
        let u = GoUniverse::with_terms(100);
        assert!(u.contains(GoTerm(8281)));
        assert_eq!(
            u.name(GoTerm(8281)),
            Some("sulphonylurea receptor activity")
        );
        assert_eq!(u.len(), PAPER_TERMS.len() + 100);
    }

    #[test]
    fn generated_terms_are_disjoint_from_paper_terms() {
        let u = GoUniverse::with_terms(50);
        let generated: Vec<_> = u.generated_terms().collect();
        assert_eq!(generated.len(), 50);
        for t in generated {
            assert!(t.0 >= 100_000);
            assert!(u.name(t).is_some());
        }
    }

    #[test]
    fn with_terms_is_deterministic() {
        let a = GoUniverse::with_terms(30);
        let b = GoUniverse::with_terms(30);
        assert_eq!(a.terms().collect::<Vec<_>>(), b.terms().collect::<Vec<_>>());
    }

    #[test]
    fn insert_is_idempotent() {
        let mut u = GoUniverse::with_terms(0);
        u.insert(GoTerm(99), "first");
        u.insert(GoTerm(99), "second");
        assert_eq!(u.name(GoTerm(99)), Some("first"));
    }
}
