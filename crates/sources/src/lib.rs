//! # biorank-sources
//!
//! The synthetic biological data-source substrate of the BioRank
//! reproduction ("Integrating and Ranking Uncertain Scientific Data",
//! Detwiler et al., ICDE 2009).
//!
//! The paper integrated 11 live web databases (June 2007 snapshots) and
//! used human curation (iProClass + PubMed searches) as ground truth.
//! Neither is available to a reproduction, so this crate *generates* a
//! deterministic world with the same population structure and — more
//! importantly — the same evidence topology:
//!
//! * [`go`] — a Gene Ontology universe seeded with the paper's named
//!   terms.
//! * [`paper_data`] — Tables 1–3 lifted verbatim (protein names,
//!   function counts, answer-set sizes).
//! * [`evidence`] — the generative model: per-class path-count /
//!   strength / path-kind profiles whose defaults reproduce the paper's
//!   scenario shapes.
//! * [`source`] — the `Source` trait and `Registry` the mediator
//!   integrates over.
//! * [`tables`] — in-memory implementations of EntrezProtein, Pfam,
//!   TIGRFAM, NCBIBlast, EntrezGene, AmiGO and iProClass.
//! * [`world`] — `World::generate(params)`: everything wired together.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod evidence;
pub mod go;
pub mod paper_data;
pub mod source;
pub mod tables;
pub mod world;

pub use evidence::{ClassProfile, EvidenceModel, FunctionClass, KindWeights, PathKind};
pub use go::{GoTerm, GoUniverse};
pub use source::{Link, Record, Registry, Source};
pub use tables::{PdbSource, UniProtSource};
pub use world::{ProteinKind, ProteinProfile, World, WorldParams};
