//! Concrete synthetic implementations of the BioRank data sources.
//!
//! Each source is an in-memory table substitute for the live web
//! database the paper queried (snapshots of June 2007). The tables are
//! filled by the world generator ([`crate::world`]) and expose exactly
//! the record/link structure the Fig. 1 mediated schema expects:
//!
//! * [`EntrezProteinSource`] — `EntrezProtein(name, seq)`.
//! * [`FamilySource`] — Pfam and TIGRFAM: family records, per-protein
//!   hits with e-values, and family→GO annotations.
//! * [`BlastSource`] — `NCBIBlast1(seq1, seq2, e-value)` +
//!   `NCBIBlast2(seq2, idEG)`, the reified ternary relationship of §2.
//! * [`EntrezGeneSource`] — `EntrezGene(idEG, StatusCode, idGO)`.
//! * [`AmigoSource`] — GO-term records with evidence codes.
//! * [`IproclassSource`] — the curated gold standard (reference only;
//!   "the iProClass database was not considered because it was the
//!   source of the test set", §4).

use std::collections::BTreeMap;

use biorank_graph::Prob;
use biorank_schema::{evalue_to_prob, EvidenceCode, StatusCode};
use serde::{Deserialize, Serialize};

use crate::go::{GoTerm, GoUniverse};
use crate::source::{Link, Record, Source};

/// `EntrezProtein(name, seq)`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EntrezProteinSource {
    /// name → amino-acid sequence.
    pub records: BTreeMap<String, String>,
}

impl Source for EntrezProteinSource {
    fn name(&self) -> &str {
        "EntrezProtein"
    }

    fn entity_sets(&self) -> Vec<String> {
        vec!["EntrezProtein".to_string()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        if entity_set != "EntrezProtein" {
            return vec![];
        }
        self.records
            .get(value)
            .map(|seq| {
                vec![Record::new("EntrezProtein", value, value, Prob::ONE)
                    .with_attr("name", value)
                    .with_attr("seq", seq)]
            })
            .unwrap_or_default()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        self.search(entity_set, key).into_iter().next()
    }

    fn links_from(&self, _entity_set: &str, _key: &str) -> Vec<Link> {
        vec![] // relationships from proteins are computed by the matchers
    }
}

/// One sequence-similarity hit of a protein against a family database.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FamilyHit {
    /// Family accession, e.g. `PF00005`.
    pub family: String,
    /// Match e-value (smaller = stronger).
    pub e_value: f64,
}

/// A protein-family database (Pfam or TIGRFAM).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FamilySource {
    /// `"Pfam"` or `"TigrFam"` — also the entity-set name.
    pub entity_set: String,
    /// Relationship names this source implements:
    /// `(protein→family, family→GO)`.
    pub rel_hit: String,
    /// Family→GO relationship name.
    pub rel_annotation: String,
    /// protein name → hits.
    pub hits: BTreeMap<String, Vec<FamilyHit>>,
    /// family accession → annotated GO terms.
    pub annotations: BTreeMap<String, Vec<GoTerm>>,
}

impl FamilySource {
    /// Creates an empty family database.
    pub fn new(entity_set: &str, rel_hit: &str, rel_annotation: &str) -> Self {
        FamilySource {
            entity_set: entity_set.to_string(),
            rel_hit: rel_hit.to_string(),
            rel_annotation: rel_annotation.to_string(),
            hits: BTreeMap::new(),
            annotations: BTreeMap::new(),
        }
    }
}

impl Source for FamilySource {
    fn name(&self) -> &str {
        &self.entity_set
    }

    fn entity_sets(&self) -> Vec<String> {
        vec![self.entity_set.clone()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.get(entity_set, value).into_iter().collect()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        if entity_set != self.entity_set || !self.annotations.contains_key(key) {
            return None;
        }
        Some(Record::new(&self.entity_set, key, key, Prob::ONE).with_attr("family", key))
    }

    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        if entity_set == "EntrezProtein" {
            // Computed relationship: run the matcher on the protein.
            self.hits
                .get(key)
                .map(|hits| {
                    hits.iter()
                        .map(|h| Link {
                            relationship: self.rel_hit.clone(),
                            to_entity_set: self.entity_set.clone(),
                            to_key: h.family.clone(),
                            qr: evalue_to_prob(h.e_value),
                        })
                        .collect()
                })
                .unwrap_or_default()
        } else if entity_set == self.entity_set {
            // Curated family→GO annotations: foreign keys, qr = 1.
            self.annotations
                .get(key)
                .map(|gos| {
                    gos.iter()
                        .map(|&go| Link {
                            relationship: self.rel_annotation.clone(),
                            to_entity_set: "AmiGO".to_string(),
                            to_key: go.to_string(),
                            qr: Prob::ONE,
                        })
                        .collect()
                })
                .unwrap_or_default()
        } else {
            vec![]
        }
    }
}

/// One BLAST hit: a similar sequence and the gene it belongs to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlastHit {
    /// Hit record key (the `seq2` side of `NCBIBlast1`).
    pub hit_key: String,
    /// Similarity e-value.
    pub e_value: f64,
    /// Foreign key into EntrezGene (`idEG`), the `NCBIBlast2` half.
    pub id_eg: String,
}

/// The NCBIBlast computed source.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BlastSource {
    /// protein name → hits.
    pub hits: BTreeMap<String, Vec<BlastHit>>,
}

impl BlastSource {
    fn hit_by_key(&self, key: &str) -> Option<&BlastHit> {
        self.hits
            .values()
            .flat_map(|v| v.iter())
            .find(|h| h.hit_key == key)
    }
}

impl Source for BlastSource {
    fn name(&self) -> &str {
        "NCBIBlast"
    }

    fn entity_sets(&self) -> Vec<String> {
        vec!["NCBIBlast".to_string()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.get(entity_set, value).into_iter().collect()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        if entity_set != "NCBIBlast" {
            return None;
        }
        self.hit_by_key(key).map(|h| {
            Record::new("NCBIBlast", key, key, Prob::ONE)
                .with_attr("seq2", &h.hit_key)
                .with_attr("e-value", format!("{:e}", h.e_value))
        })
    }

    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        if entity_set == "EntrezProtein" {
            // NCBIBlast1: similarity scored by e-value.
            self.hits
                .get(key)
                .map(|hits| {
                    hits.iter()
                        .map(|h| Link {
                            relationship: "prot2blast".to_string(),
                            to_entity_set: "NCBIBlast".to_string(),
                            to_key: h.hit_key.clone(),
                            qr: evalue_to_prob(h.e_value),
                        })
                        .collect()
                })
                .unwrap_or_default()
        } else if entity_set == "NCBIBlast" {
            // NCBIBlast2: unique foreign key into EntrezGene, qr = 1 (§2).
            self.hit_by_key(key)
                .map(|h| {
                    vec![Link {
                        relationship: "blast2gene".to_string(),
                        to_entity_set: "EntrezGene".to_string(),
                        to_key: h.id_eg.clone(),
                        qr: Prob::ONE,
                    }]
                })
                .unwrap_or_default()
        } else {
            vec![]
        }
    }
}

/// A curated gene record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneRecord {
    /// Curation status, transformed to `pr` via the §2 table.
    pub status: StatusCode,
    /// Annotated GO functions (`idGO` foreign keys).
    pub annotations: Vec<GoTerm>,
}

/// `EntrezGene(idEG, StatusCode, idGO)`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EntrezGeneSource {
    /// idEG → record.
    pub records: BTreeMap<String, GeneRecord>,
}

impl Source for EntrezGeneSource {
    fn name(&self) -> &str {
        "EntrezGene"
    }

    fn entity_sets(&self) -> Vec<String> {
        vec!["EntrezGene".to_string()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.get(entity_set, value).into_iter().collect()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        if entity_set != "EntrezGene" {
            return None;
        }
        self.records.get(key).map(|r| {
            Record::new("EntrezGene", key, key, r.status.pr())
                .with_attr("StatusCode", r.status.to_string())
        })
    }

    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        if entity_set != "EntrezGene" {
            return vec![];
        }
        self.records
            .get(key)
            .map(|r| {
                r.annotations
                    .iter()
                    .map(|&go| Link {
                        relationship: "gene2go".to_string(),
                        to_entity_set: "AmiGO".to_string(),
                        to_key: go.to_string(),
                        qr: Prob::ONE,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// AmiGO: GO-term records carrying evidence codes, plus the ontology's
/// own `is_a` term–term links (the Gene Ontology is a DAG; evidence for
/// a specific term also supports its more general ancestors).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AmigoSource {
    /// term → evidence code of its annotation.
    pub evidence: BTreeMap<GoTerm, EvidenceCode>,
    /// child term → parent terms (`is_a`); kept acyclic by construction
    /// (parents always have smaller ids).
    pub isa: BTreeMap<GoTerm, Vec<GoTerm>>,
    /// Term display names (shared universe).
    pub universe: GoUniverse,
}

impl Source for AmigoSource {
    fn name(&self) -> &str {
        "AmiGO"
    }

    fn entity_sets(&self) -> Vec<String> {
        vec!["AmiGO".to_string()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.get(entity_set, value).into_iter().collect()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        if entity_set != "AmiGO" {
            return None;
        }
        let term = GoTerm::parse(key)?;
        let code = self.evidence.get(&term)?;
        let name = self.universe.name(term).unwrap_or("unknown function");
        Some(Record::new("AmiGO", key, name, code.pr()).with_attr("EvidenceCode", code.to_string()))
    }

    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        if entity_set != "AmiGO" {
            return vec![];
        }
        let Some(term) = GoTerm::parse(key) else {
            return vec![];
        };
        self.isa
            .get(&term)
            .map(|parents| {
                parents
                    .iter()
                    .map(|p| Link {
                        relationship: "go2go".to_string(),
                        to_entity_set: "AmiGO".to_string(),
                        to_key: p.to_string(),
                        qr: Prob::ONE,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// UniProt: a cross-reference hub. Each protein has at most one UniProt
/// record, which carries a curated foreign key to its EntrezGene entry —
/// an independent, certain corroboration channel for gene-direct
/// annotations.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UniProtSource {
    /// protein name → (uniprot accession, idEG).
    pub records: BTreeMap<String, (String, String)>,
}

impl UniProtSource {
    fn by_accession(&self, acc: &str) -> Option<(&String, &(String, String))> {
        self.records.iter().find(|(_, (a, _))| a == acc)
    }
}

impl Source for UniProtSource {
    fn name(&self) -> &str {
        "UniProt"
    }

    fn entity_sets(&self) -> Vec<String> {
        vec!["UniProt".to_string()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.get(entity_set, value).into_iter().collect()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        if entity_set != "UniProt" {
            return None;
        }
        self.by_accession(key).map(|(protein, (acc, _))| {
            Record::new("UniProt", acc, format!("{protein} ({acc})"), Prob::ONE)
                .with_attr("accession", acc)
        })
    }

    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        match entity_set {
            "EntrezProtein" => self
                .records
                .get(key)
                .map(|(acc, _)| {
                    vec![Link {
                        relationship: "prot2uniprot".to_string(),
                        to_entity_set: "UniProt".to_string(),
                        to_key: acc.clone(),
                        qr: Prob::ONE,
                    }]
                })
                .unwrap_or_default(),
            "UniProt" => self
                .by_accession(key)
                .map(|(_, (_, id_eg))| {
                    vec![Link {
                        relationship: "uniprot2gene".to_string(),
                        to_entity_set: "EntrezGene".to_string(),
                        to_key: id_eg.clone(),
                        qr: Prob::ONE,
                    }]
                })
                .unwrap_or_default(),
            _ => vec![],
        }
    }
}

/// PDB: protein structure records. The paper's catalog lists PDB with
/// zero relationships — its records are informational leaves, which the
/// reduction engine prunes from every query graph (they never reach an
/// answer).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PdbSource {
    /// protein name → structure ids.
    pub structures: BTreeMap<String, Vec<String>>,
}

impl Source for PdbSource {
    fn name(&self) -> &str {
        "PDB"
    }

    fn entity_sets(&self) -> Vec<String> {
        vec!["PDB".to_string()]
    }

    fn search(&self, entity_set: &str, value: &str) -> Vec<Record> {
        self.get(entity_set, value).into_iter().collect()
    }

    fn get(&self, entity_set: &str, key: &str) -> Option<Record> {
        if entity_set != "PDB" {
            return None;
        }
        self.structures
            .values()
            .flatten()
            .find(|id| id.as_str() == key)
            .map(|id| Record::new("PDB", id, format!("structure {id}"), Prob::ONE))
    }

    fn links_from(&self, entity_set: &str, key: &str) -> Vec<Link> {
        if entity_set != "EntrezProtein" {
            return vec![];
        }
        self.structures
            .get(key)
            .map(|ids| {
                ids.iter()
                    .map(|id| Link {
                        relationship: "prot2pdb".to_string(),
                        to_entity_set: "PDB".to_string(),
                        to_key: id.clone(),
                        qr: Prob::ONE,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// iProClass: the curated gold standard used for relevance judgments.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IproclassSource {
    /// protein → its well-known functions.
    pub gold: BTreeMap<String, Vec<GoTerm>>,
}

impl IproclassSource {
    /// The well-known functions of a protein (empty when unknown).
    pub fn functions(&self, protein: &str) -> &[GoTerm] {
        self.gold.get(protein).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` when `go` is a curated function of `protein`.
    pub fn is_known(&self, protein: &str, go: GoTerm) -> bool {
        self.functions(protein).contains(&go)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entrez_protein_search_exact_match() {
        let mut s = EntrezProteinSource::default();
        s.records.insert("ABCC8".into(), "MAGIC".into());
        assert_eq!(s.search("EntrezProtein", "ABCC8").len(), 1);
        assert_eq!(s.search("EntrezProtein", "abcc8").len(), 0);
        assert_eq!(s.search("Other", "ABCC8").len(), 0);
        let r = s.get("EntrezProtein", "ABCC8").unwrap();
        assert_eq!(r.attrs[1], ("seq".to_string(), "MAGIC".to_string()));
    }

    #[test]
    fn family_source_links_both_directions() {
        let mut f = FamilySource::new("Pfam", "prot2pfam", "pfam2go");
        f.hits.insert(
            "ABCC8".into(),
            vec![FamilyHit {
                family: "PF00005".into(),
                e_value: 1e-65,
            }],
        );
        f.annotations
            .insert("PF00005".into(), vec![GoTerm(5524), GoTerm(8281)]);
        let hit_links = f.links_from("EntrezProtein", "ABCC8");
        assert_eq!(hit_links.len(), 1);
        assert_eq!(hit_links[0].relationship, "prot2pfam");
        assert!((hit_links[0].qr.get() - evalue_to_prob(1e-65).get()).abs() < 1e-12);
        let go_links = f.links_from("Pfam", "PF00005");
        assert_eq!(go_links.len(), 2);
        assert!(go_links.iter().all(|l| l.qr.get() == 1.0));
        assert!(go_links.iter().all(|l| l.to_entity_set == "AmiGO"));
        assert!(f.get("Pfam", "PF00005").is_some());
        assert!(f.get("Pfam", "PF99999").is_none());
    }

    #[test]
    fn blast_source_splits_ternary_relationship() {
        let mut b = BlastSource::default();
        b.hits.insert(
            "ABCC8".into(),
            vec![BlastHit {
                hit_key: "HIT1".into(),
                e_value: 1e-100,
                id_eg: "EG42".into(),
            }],
        );
        let l1 = b.links_from("EntrezProtein", "ABCC8");
        assert_eq!(l1.len(), 1);
        assert_eq!(l1[0].relationship, "prot2blast");
        assert!(l1[0].qr.get() > 0.7, "strong hit should transform high");
        let l2 = b.links_from("NCBIBlast", "HIT1");
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].relationship, "blast2gene");
        assert_eq!(l2[0].to_key, "EG42");
        assert_eq!(l2[0].qr.get(), 1.0, "foreign keys carry qr = 1");
    }

    #[test]
    fn entrez_gene_pr_follows_status_code() {
        let mut g = EntrezGeneSource::default();
        g.records.insert(
            "EG1".into(),
            GeneRecord {
                status: StatusCode::Predicted,
                annotations: vec![GoTerm(8281)],
            },
        );
        let r = g.get("EntrezGene", "EG1").unwrap();
        assert_eq!(r.pr.get(), 0.4);
        let links = g.links_from("EntrezGene", "EG1");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].to_key, "GO:0008281");
    }

    #[test]
    fn amigo_pr_follows_evidence_code() {
        let mut a = AmigoSource {
            universe: GoUniverse::with_terms(0),
            ..Default::default()
        };
        a.evidence.insert(GoTerm(8281), EvidenceCode::Iea);
        let r = a.get("AmiGO", "GO:0008281").unwrap();
        assert_eq!(r.pr.get(), 0.3);
        assert_eq!(r.label, "sulphonylurea receptor activity");
        assert!(a.get("AmiGO", "GO:0000001").is_none());
        assert!(a.get("AmiGO", "garbage").is_none());
    }

    #[test]
    fn iproclass_gold_standard_lookup() {
        let mut i = IproclassSource::default();
        i.gold
            .insert("ABCC8".into(), vec![GoTerm(8281), GoTerm(5524)]);
        assert!(i.is_known("ABCC8", GoTerm(8281)));
        assert!(!i.is_known("ABCC8", GoTerm(42493)));
        assert!(!i.is_known("NOPE", GoTerm(8281)));
        assert_eq!(i.functions("ABCC8").len(), 2);
    }
}
