//! Average precision, with analytic handling of ties (paper §4).
//!
//! BioRank's evaluation metric is average precision at 100% recall.
//! Tied scores yield only a partial order, so the paper uses the method
//! of McSherry & Najork (ECIR 2008): "calculate the mean AP over all
//! possible permutations". [`average_precision`] implements the exact
//! closed form of that expectation; a brute-force permutation test in
//! this module validates it.
//!
//! [`random_ap`] is Definition 4.1 — the expected AP of an arbitrarily
//! ordered list — used as the "Random" baseline in every figure.

use biorank_rank::{Ranking, TieGroup};

/// Exact expected average precision of a tie-grouped ranking.
///
/// For a tie group starting at (1-based) rank `s+1` with `n` items of
/// which `r` are relevant, preceded by `c` relevant items, each
/// within-group position `i` contributes
/// `(r/n)·(c + 1 + (i−1)(r−1)/(n−1)) / (s+i)` to the expected sum of
/// `P@rank · rel`, because under a uniform random permutation of the
/// group the item at position `i` is relevant with probability `r/n`
/// and, conditioned on that, carries on average `(i−1)(r−1)/(n−1)`
/// relevant predecessors within the group.
///
/// Returns `None` when the ranking contains no relevant items (AP is
/// undefined; the paper's scenarios always have at least one).
pub fn average_precision_groups(groups: &[TieGroup]) -> Option<f64> {
    let total_relevant: usize = groups.iter().map(|g| g.relevant).sum();
    if total_relevant == 0 {
        return None;
    }
    let mut cum_relevant = 0usize; // relevant items before this group
    let mut sum = 0.0f64;
    for g in groups {
        let s = (g.rank_lo - 1) as f64;
        let n = g.size as f64;
        let r = g.relevant as f64;
        if g.relevant > 0 {
            let c = cum_relevant as f64;
            for i in 1..=g.size {
                let i_f = i as f64;
                let within = if g.size == 1 {
                    1.0
                } else {
                    1.0 + (i_f - 1.0) * (r - 1.0) / (n - 1.0)
                };
                sum += (r / n) * (c + within) / (s + i_f);
            }
        }
        cum_relevant += g.relevant;
    }
    Some(sum / total_relevant as f64)
}

/// Expected AP of a [`Ranking`] under the tie-permutation semantics.
pub fn average_precision(
    ranking: &Ranking,
    is_relevant: impl Fn(biorank_graph::NodeId) -> bool,
) -> Option<f64> {
    let groups = ranking.tie_groups(is_relevant);
    average_precision_groups(&groups)
}

/// Plain AP of a fully ordered relevance vector (no ties) — the textbook
/// definition `AP = (1/k)·Σ P@i · relᵢ`.
pub fn average_precision_strict(rel: &[bool]) -> Option<f64> {
    let k = rel.iter().filter(|&&r| r).count();
    if k == 0 {
        return None;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &r) in rel.iter().enumerate() {
        if r {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    Some(sum / k as f64)
}

/// Definition 4.1: expected AP of a randomly sorted list with `k`
/// relevant among `n` items.
///
/// `APrand(k, n) = Σᵢ ((k−1)(i−1) + (n−1)) / (i·(n−1)·n)`.
pub fn random_ap(k: usize, n: usize) -> Option<f64> {
    if k == 0 || n == 0 || k > n {
        return None;
    }
    if n == 1 {
        return Some(1.0);
    }
    let (kf, nf) = (k as f64, n as f64);
    let sum: f64 = (1..=n)
        .map(|i| {
            let i_f = i as f64;
            ((kf - 1.0) * (i_f - 1.0) + (nf - 1.0)) / (i_f * (nf - 1.0) * nf)
        })
        .sum();
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Brute-force expected AP over all permutations of tied groups.
    fn brute_force_expected_ap(scored: &[(usize, f64)], relevant: &[usize]) -> f64 {
        // Enumerate permutations of the whole list that respect the
        // score order (i.e. permute within tie groups only).
        let mut sorted: Vec<(usize, f64)> = scored.to_vec();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        // Collect tie groups (runs of equal scores).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut last_score = f64::INFINITY;
        for &(id, score) in &sorted {
            if score == last_score {
                groups
                    .last_mut()
                    .expect("non-empty on equal score")
                    .push(id);
            } else {
                groups.push(vec![id]);
                last_score = score;
            }
        }
        // Recursively expand permutations of each group.
        fn perms(items: &[usize]) -> Vec<Vec<usize>> {
            if items.len() <= 1 {
                return vec![items.to_vec()];
            }
            let mut out = Vec::new();
            for (i, &x) in items.iter().enumerate() {
                let mut rest = items.to_vec();
                rest.remove(i);
                for mut p in perms(&rest) {
                    p.insert(0, x);
                    out.push(p);
                }
            }
            out
        }
        let group_perms: Vec<Vec<Vec<usize>>> = groups.iter().map(|g| perms(g)).collect();
        let mut total = 0.0;
        let mut count = 0usize;
        let mut idx = vec![0usize; group_perms.len()];
        loop {
            let order: Vec<usize> = idx
                .iter()
                .enumerate()
                .flat_map(|(gi, &pi)| group_perms[gi][pi].clone())
                .collect();
            let rel: Vec<bool> = order.iter().map(|i| relevant.contains(i)).collect();
            total += average_precision_strict(&rel).unwrap_or(0.0);
            count += 1;
            // Odometer increment.
            let mut carry = true;
            for (gi, pi) in idx.iter_mut().enumerate() {
                if carry {
                    *pi += 1;
                    if *pi == group_perms[gi].len() {
                        *pi = 0;
                    } else {
                        carry = false;
                    }
                }
            }
            if carry {
                break;
            }
        }
        total / count as f64
    }

    #[test]
    fn strict_ap_textbook_example() {
        // rel = [1, 0, 1]: AP = (1/1 + 2/3) / 2 = 5/6.
        let ap = average_precision_strict(&[true, false, true]).unwrap();
        assert!((ap - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(average_precision_strict(&[false, false]), None);
        assert_eq!(average_precision_strict(&[true]).unwrap(), 1.0);
    }

    #[test]
    fn tie_free_ranking_matches_strict_ap() {
        let ranking = Ranking::rank(vec![(n(0), 0.9), (n(1), 0.7), (n(2), 0.5), (n(3), 0.3)]);
        let relevant = |x: NodeId| x == n(0) || x == n(2);
        let tie_aware = average_precision(&ranking, relevant).unwrap();
        let strict = average_precision_strict(&ranking.relevance_vector(relevant)).unwrap();
        assert!((tie_aware - strict).abs() < 1e-12);
    }

    #[test]
    fn tied_ap_matches_brute_force_small() {
        // 5 items: one leader, a 3-way tie, one trailer; relevance mixed.
        let scored = [(0, 0.9), (1, 0.5), (2, 0.5), (3, 0.5), (4, 0.1)];
        let relevant = [1usize, 4];
        let brute = brute_force_expected_ap(&scored, &relevant);
        let ranking = Ranking::rank(scored.iter().map(|&(i, s)| (n(i), s)).collect());
        let fast = average_precision(&ranking, |x| relevant.contains(&x.index())).unwrap();
        assert!((brute - fast).abs() < 1e-9, "brute {brute} vs fast {fast}");
    }

    #[test]
    fn tied_ap_matches_brute_force_all_tied() {
        let scored = [(0, 0.5), (1, 0.5), (2, 0.5), (3, 0.5)];
        let relevant = [0usize, 2];
        let brute = brute_force_expected_ap(&scored, &relevant);
        let ranking = Ranking::rank(scored.iter().map(|&(i, s)| (n(i), s)).collect());
        let fast = average_precision(&ranking, |x| relevant.contains(&x.index())).unwrap();
        assert!((brute - fast).abs() < 1e-9, "brute {brute} vs fast {fast}");
    }

    #[test]
    fn all_tied_ap_equals_random_ap() {
        // A single all-tied group IS a random ordering.
        let scored: Vec<(NodeId, f64)> = (0..10).map(|i| (n(i), 1.0)).collect();
        let ranking = Ranking::rank(scored);
        let ap = average_precision(&ranking, |x| x.index() < 3).unwrap();
        let rand = random_ap(3, 10).unwrap();
        assert!((ap - rand).abs() < 1e-12, "{ap} vs {rand}");
    }

    #[test]
    fn random_ap_edge_cases() {
        assert_eq!(random_ap(0, 10), None);
        assert_eq!(random_ap(5, 0), None);
        assert_eq!(random_ap(11, 10), None);
        assert_eq!(random_ap(1, 1).unwrap(), 1.0);
        // All relevant: AP = 1 regardless of order.
        assert!((random_ap(7, 7).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_ap_matches_simulation() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (k, nn) = (4, 15);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut rel: Vec<bool> = (0..nn).map(|i| i < k).collect();
        let mut total = 0.0;
        let m = 20_000;
        for _ in 0..m {
            rel.shuffle(&mut rng);
            total += average_precision_strict(&rel).unwrap();
        }
        let sim = total / m as f64;
        let formula = random_ap(k, nn).unwrap();
        assert!(
            (sim - formula).abs() < 0.01,
            "sim {sim} vs formula {formula}"
        );
    }

    #[test]
    fn random_ap_for_abcc8_shape() {
        // 13 relevant of 97: the kind of ratio behind the paper's 0.42
        // scenario-1 random mean (averaged over 20 proteins with
        // ratios 13%-63%).
        let ap = random_ap(13, 97).unwrap();
        assert!(ap > 0.1 && ap < 0.2, "ap = {ap}");
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let scored: Vec<(NodeId, f64)> = (0..8).map(|i| (n(i), 1.0 - 0.1 * i as f64)).collect();
        let ranking = Ranking::rank(scored);
        let ap = average_precision(&ranking, |x| x.index() < 3).unwrap();
        assert!((ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn groups_api_direct() {
        use biorank_rank::TieGroup;
        // One group of 2 with 1 relevant: E[AP] over [R,N] and [N,R]
        // = (1 + 1/2) / 2 = 0.75.
        let groups = [TieGroup {
            rank_lo: 1,
            size: 2,
            relevant: 1,
        }];
        let ap = average_precision_groups(&groups).unwrap();
        assert!((ap - 0.75).abs() < 1e-12);
        assert_eq!(average_precision_groups(&[]), None);
    }
}
