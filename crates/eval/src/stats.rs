//! Small descriptive statistics used by the experiment harness.

/// Sample mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Returns 0 for fewer than
/// two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the normal-approximation 95% confidence interval for
/// the mean.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95% CI half-width for the mean.
    pub ci95: f64,
}

/// Summarizes a sample.
pub fn summarize(xs: &[f64]) -> Summary {
    Summary {
        n: xs.len(),
        mean: mean(xs),
        std_dev: std_dev(xs),
        ci95: ci95_half_width(xs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(ci95_half_width(&[1.0]), 0.0);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [1.0, 2.0, 3.0];
        let s = summarize(&xs);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert!((s.ci95 - 1.96 / 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = [0.0, 1.0, 0.0, 1.0];
        let large: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        assert!(ci95_half_width(&large) < ci95_half_width(&small));
    }
}
