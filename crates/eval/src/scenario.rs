//! The three evaluation scenarios of paper §4.
//!
//! 1. **Well-known functions for well-studied proteins** — the 20
//!    iProClass reference proteins; relevant = the 306 curated
//!    functions.
//! 2. **Less-known functions for well-studied proteins** — ABCC8, CFTR,
//!    EYA1; relevant = the 7 recently published functions of Table 2
//!    (well-known functions are *not* counted relevant here).
//! 3. **Unknown functions for less-studied proteins** — the 11
//!    hypothetical bacterial proteins of Table 3; relevant = the single
//!    expert-validated function each.
//!
//! A [`ScenarioCase`] bundles one protein's integrated query graph with
//! its scenario-specific relevance judgments.

use std::collections::BTreeSet;

use biorank_graph::NodeId;
use biorank_mediator::{ExploratoryQuery, IntegrationResult, Mediator};
use biorank_schema::biorank_schema_with_ontology;
use biorank_sources::{FunctionClass, GoTerm, ProteinKind, World};
use serde::{Deserialize, Serialize};

use crate::Error;

/// The three scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// 306 well-known functions, 20 well-studied proteins.
    WellKnown,
    /// 7 less-known functions, 3 well-studied proteins.
    LessKnown,
    /// 11 unknown functions, 11 less-studied (hypothetical) proteins.
    Hypothetical,
}

impl Scenario {
    /// All scenarios in paper order.
    pub const ALL: [Scenario; 3] = [
        Scenario::WellKnown,
        Scenario::LessKnown,
        Scenario::Hypothetical,
    ];

    /// Figure caption, e.g. "Scenario 1".
    pub fn title(self) -> &'static str {
        match self {
            Scenario::WellKnown => "Scenario 1",
            Scenario::LessKnown => "Scenario 2",
            Scenario::Hypothetical => "Scenario 3",
        }
    }

    /// The function class counted as relevant.
    pub fn relevant_class(self) -> FunctionClass {
        match self {
            Scenario::WellKnown => FunctionClass::WellKnown,
            Scenario::LessKnown => FunctionClass::LessKnown,
            Scenario::Hypothetical => FunctionClass::Expert,
        }
    }
}

/// One protein's query graph plus relevance judgments.
#[derive(Clone, Debug)]
pub struct ScenarioCase {
    /// Protein symbol.
    pub protein: String,
    /// The integration result (query graph + record provenance).
    pub result: IntegrationResult,
    /// GO keys (e.g. `"GO:0008281"`) relevant in this scenario.
    pub relevant: BTreeSet<String>,
}

impl ScenarioCase {
    /// `true` when answer node `n` is relevant.
    pub fn is_relevant(&self, n: NodeId) -> bool {
        self.result
            .answer_key(n)
            .is_some_and(|k| self.relevant.contains(k))
    }

    /// Number of relevant answers (`k` in APrand).
    pub fn relevant_count(&self) -> usize {
        self.result
            .query
            .answers()
            .iter()
            .filter(|&&a| self.is_relevant(a))
            .count()
    }

    /// Total answers (`n` in APrand).
    pub fn answer_count(&self) -> usize {
        self.result.query.answers().len()
    }
}

/// Builds the cases of a scenario from a generated world.
pub fn build_cases(world: &World, scenario: Scenario) -> Result<Vec<ScenarioCase>, Error> {
    let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
    let wanted_kind = match scenario {
        Scenario::WellKnown => ProteinKind::WellStudied,
        Scenario::LessKnown => ProteinKind::WellStudied,
        Scenario::Hypothetical => ProteinKind::Hypothetical,
    };
    let relevant_class = scenario.relevant_class();
    let mut cases = Vec::new();
    for profile in &world.profiles {
        if profile.kind != wanted_kind {
            continue;
        }
        let relevant_terms: Vec<GoTerm> = profile.functions_of(relevant_class);
        if relevant_terms.is_empty() {
            continue; // e.g. scenario 2 skips the 17 proteins without
                      // newly published functions
        }
        let result = mediator.execute(&ExploratoryQuery::protein_functions(&profile.name))?;
        let relevant = relevant_terms.iter().map(|t| t.to_string()).collect();
        cases.push(ScenarioCase {
            protein: profile.name.clone(),
            result,
            relevant,
        });
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_sources::WorldParams;

    fn world() -> World {
        World::generate(WorldParams::default())
    }

    #[test]
    fn scenario1_has_20_cases_306_relevant() {
        let cases = build_cases(&world(), Scenario::WellKnown).unwrap();
        assert_eq!(cases.len(), 20);
        let total: usize = cases.iter().map(|c| c.relevant_count()).sum();
        assert_eq!(total, 306);
        let answers: usize = cases.iter().map(|c| c.answer_count()).sum();
        assert_eq!(answers, 1037);
    }

    #[test]
    fn scenario2_has_3_cases_7_relevant() {
        let cases = build_cases(&world(), Scenario::LessKnown).unwrap();
        assert_eq!(cases.len(), 3);
        let proteins: Vec<_> = cases.iter().map(|c| c.protein.as_str()).collect();
        assert_eq!(proteins, vec!["ABCC8", "CFTR", "EYA1"]);
        let total: usize = cases.iter().map(|c| c.relevant_count()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn scenario3_has_11_cases_11_relevant() {
        let cases = build_cases(&world(), Scenario::Hypothetical).unwrap();
        assert_eq!(cases.len(), 11);
        let total: usize = cases.iter().map(|c| c.relevant_count()).sum();
        assert_eq!(total, 11);
        for c in &cases {
            assert_eq!(c.relevant_count(), 1, "{}", c.protein);
        }
    }

    #[test]
    fn relevance_is_class_specific() {
        // ABCC8's well-known functions are irrelevant in scenario 2.
        let w = world();
        let s2 = build_cases(&w, Scenario::LessKnown).unwrap();
        let abcc8 = &s2[0];
        assert_eq!(abcc8.protein, "ABCC8");
        assert_eq!(abcc8.relevant_count(), 3);
        assert!(abcc8.relevant.contains("GO:0006855"));
        assert!(
            !abcc8.relevant.contains("GO:0008281"),
            "well-known term must not be scenario-2 relevant"
        );
    }

    #[test]
    fn titles_and_classes() {
        assert_eq!(Scenario::WellKnown.title(), "Scenario 1");
        assert_eq!(
            Scenario::Hypothetical.relevant_class(),
            FunctionClass::Expert
        );
        assert_eq!(Scenario::ALL.len(), 3);
    }
}
