//! # biorank-eval
//!
//! Evaluation machinery for the BioRank reproduction ("Integrating and
//! Ranking Uncertain Scientific Data", Detwiler et al., ICDE 2009, §4):
//!
//! * [`ap`] — average precision at 100% recall, with the analytic
//!   tie-permutation expectation of McSherry & Najork and the
//!   random-ordering baseline of Definition 4.1.
//! * [`scenario`] — the three evaluation scenarios built from a
//!   generated world.
//! * [`perturb`] — log-odds Gaussian perturbation for the multi-way
//!   sensitivity analysis (Fig. 6).
//! * [`harness`] — runs rankers over scenarios and summarizes AP.
//! * [`stats`] / [`report`] — summary statistics and ASCII tables.
//!
//! ```
//! // Definition 4.1: expected AP of a randomly ordered list.
//! let ap = biorank_eval::random_ap(13, 97).unwrap();
//! assert!(ap > 0.1 && ap < 0.2);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ap;
pub mod harness;
pub mod perturb;
pub mod report;
pub mod scenario;
pub mod stats;

pub use ap::{average_precision, average_precision_strict, random_ap};
pub use harness::{
    case_ap, case_ap_on_graph, evaluate, random_assignment_ap, random_baseline, sensitivity_ap,
    MethodAp,
};
pub use scenario::{build_cases, Scenario, ScenarioCase};
pub use stats::{summarize, Summary};

use std::fmt;

/// Errors produced during evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Integration failed while building scenario cases.
    Mediator(biorank_mediator::Error),
    /// A ranking method failed.
    Rank(biorank_rank::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Mediator(e) => write!(f, "integration failed: {e}"),
            Error::Rank(e) => write!(f, "ranking failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Mediator(e) => Some(e),
            Error::Rank(e) => Some(e),
        }
    }
}

impl From<biorank_mediator::Error> for Error {
    fn from(e: biorank_mediator::Error) -> Self {
        Error::Mediator(e)
    }
}

impl From<biorank_rank::Error> for Error {
    fn from(e: biorank_rank::Error) -> Self {
        Error::Rank(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wrapping() {
        let e: Error = biorank_rank::Error::ZeroTrials.into();
        assert!(e.to_string().contains("ranking failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
