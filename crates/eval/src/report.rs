//! Plain-text report tables for the experiment binaries.
//!
//! The experiments print fixed-width ASCII tables mirroring the paper's
//! figures; `EXPERIMENTS.md` embeds them directly.

use crate::harness::MethodAp;

/// Renders a Fig. 5-style table: one column per method plus the random
/// baseline, rows = mean and stdev.
pub fn ap_table(title: &str, methods: &[MethodAp]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let width = 10usize;
    let mut header = format!("{:<8}", "");
    let mut mean_row = format!("{:<8}", "Mean");
    let mut std_row = format!("{:<8}", "Stdv");
    for m in methods {
        header.push_str(&format!("{:>width$}", shorten(&m.method)));
        mean_row.push_str(&format!("{:>width$.2}", m.summary.mean));
        std_row.push_str(&format!("{:>width$.2}", m.summary.std_dev));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&mean_row);
    out.push('\n');
    out.push_str(&std_row);
    out.push('\n');
    out
}

/// Renders a generic table with a header row and aligned columns.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:<w$}", cell, w = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    render(&header_cells, &widths, &mut out);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render(&sep, &widths, &mut out);
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

/// Shortens method names to the paper's column labels.
fn shorten(name: &str) -> String {
    match name {
        "Rel(R&MC)" | "Rel(MC)" | "Rel(closed)" | "Rel(naiveMC)" => "Rel".to_string(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    #[test]
    fn ap_table_renders_means() {
        let methods = vec![
            MethodAp {
                method: "Rel(R&MC)".into(),
                per_case: vec![0.8, 0.9],
                summary: summarize(&[0.8, 0.9]),
            },
            MethodAp {
                method: "InEdge".into(),
                per_case: vec![0.5, 0.7],
                summary: summarize(&[0.5, 0.7]),
            },
        ];
        let t = ap_table("Scenario 1", &methods);
        assert!(t.contains("Scenario 1"));
        assert!(t.contains("Rel"));
        assert!(t.contains("InEdge"));
        assert!(t.contains("0.85"));
        assert!(t.contains("0.60"));
    }

    #[test]
    fn generic_table_aligns_columns() {
        let t = table(
            &["Protein", "Rank"],
            &[
                vec!["ABCC8".into(), "1".into()],
                vec!["CFTR".into(), "21-22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Protein"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].contains("21-22"));
    }

    #[test]
    fn shorten_maps_reliability_variants() {
        assert_eq!(shorten("Rel(R&MC)"), "Rel");
        assert_eq!(shorten("Prop"), "Prop");
    }
}
