//! Log-odds perturbation of input probabilities (paper §4, sensitivity
//! analysis).
//!
//! "Normally distributed random noise is added to a log-odds probability
//! then converted back to a probability. This approach avoids the need
//! for range checks and enables control over the amount of noise added"
//! (following Henrion et al., UAI 1996):
//!
//! ```text
//! p′ = Lo⁻¹(Lo(p) + e),    e ~ Normal(0, σ)
//! ```
//!
//! The multi-way analysis perturbs *all* node and edge probabilities of
//! a query graph simultaneously — "representative of our situation where
//! all parameters may be imprecise."

use biorank_graph::{Prob, QueryGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Log-odds (logit) of a probability in the open interval.
fn log_odds(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

/// Inverse log-odds (logistic).
fn inv_log_odds(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A standard Gaussian sample via Box–Muller (the allowed crate set has
/// no `rand_distr`).
fn gaussian(rng: &mut StdRng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1 = 1.0 - rng.gen::<f64>();
    let u2 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Perturbs one probability with log-odds Gaussian noise of standard
/// deviation `sigma`.
///
/// Exact 0 and 1 are fixed points of the transform (their log-odds are
/// infinite), which matches the paper's setup: deterministic facts like
/// foreign-key links (`qr = 1`) stay deterministic under perturbation.
pub fn perturb_prob(p: Prob, sigma: f64, rng: &mut StdRng) -> Prob {
    let v = p.get();
    if v <= 0.0 || v >= 1.0 || sigma == 0.0 {
        return p;
    }
    let e = gaussian(rng) * sigma;
    Prob::clamped(inv_log_odds(log_odds(v) + e))
}

/// Returns a copy of the query graph with every node and edge
/// probability perturbed (multi-way sensitivity analysis).
pub fn perturb_query_graph(q: &QueryGraph, sigma: f64, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = q.clone();
    out.graph_mut()
        .map_node_probs(|_, p| perturb_prob(p, sigma, &mut rng));
    out.graph_mut()
        .map_edge_probs(|_, p| perturb_prob(p, sigma, &mut rng));
    out
}

/// Returns a copy with every (non-degenerate) probability replaced by an
/// independent Uniform(0, 1) draw — the "Random" probability-assignment
/// baseline of Fig. 6.
pub fn randomize_query_graph(q: &QueryGraph, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = q.clone();
    out.graph_mut().map_node_probs(|_, p| {
        if p.is_zero() || p.is_one() {
            p
        } else {
            Prob::clamped(rng.gen::<f64>())
        }
    });
    out.graph_mut().map_edge_probs(|_, p| {
        if p.is_zero() || p.is_one() {
            p
        } else {
            Prob::clamped(rng.gen::<f64>())
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::ProbGraph;

    #[test]
    fn log_odds_round_trips() {
        for v in [0.01, 0.3, 0.5, 0.77, 0.99] {
            assert!((inv_log_odds(log_odds(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Prob::new(0.37).unwrap();
        assert_eq!(perturb_prob(p, 0.0, &mut rng).get(), 0.37);
    }

    #[test]
    fn extremes_are_fixed_points() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(perturb_prob(Prob::ZERO, 3.0, &mut rng).get(), 0.0);
        assert_eq!(perturb_prob(Prob::ONE, 3.0, &mut rng).get(), 1.0);
    }

    #[test]
    fn perturbation_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let p = perturb_prob(Prob::new(0.5).unwrap(), 3.0, &mut rng);
            assert!((0.0..=1.0).contains(&p.get()));
        }
    }

    #[test]
    fn noise_is_roughly_unbiased_in_log_odds() {
        // Mean of perturbed logits ≈ original logit.
        let mut rng = StdRng::seed_from_u64(4);
        let p0 = 0.3f64;
        let m = 20_000;
        let mean_logit: f64 = (0..m)
            .map(|_| log_odds(perturb_prob(Prob::new(p0).unwrap(), 1.0, &mut rng).get()))
            .sum::<f64>()
            / m as f64;
        assert!((mean_logit - log_odds(p0)).abs() < 0.05, "{mean_logit}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = 50_000;
        let samples: Vec<f64> = (0..m).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / m as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / m as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    fn tiny_query() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(Prob::ONE);
        let t = g.add_node(Prob::new(0.5).unwrap());
        g.add_edge(s, t, Prob::new(0.5).unwrap()).unwrap();
        QueryGraph::new(g, s, vec![t]).unwrap()
    }

    #[test]
    fn graph_perturbation_is_seed_deterministic() {
        let q = tiny_query();
        let a = perturb_query_graph(&q, 1.0, 7);
        let b = perturb_query_graph(&q, 1.0, 7);
        let t = q.answers()[0];
        assert_eq!(a.graph().node_p(t).get(), b.graph().node_p(t).get());
        let c = perturb_query_graph(&q, 1.0, 8);
        assert_ne!(a.graph().node_p(t).get(), c.graph().node_p(t).get());
    }

    #[test]
    fn randomize_replaces_interior_probs_only() {
        let q = tiny_query();
        let r = randomize_query_graph(&q, 3);
        assert_eq!(r.graph().node_p(q.source()).get(), 1.0, "p=1 stays");
        let t = q.answers()[0];
        // Interior probability was (almost surely) replaced.
        assert_ne!(r.graph().node_p(t).get(), 0.5);
    }

    #[test]
    fn larger_sigma_spreads_more() {
        let spread = |sigma: f64| {
            let mut rng = StdRng::seed_from_u64(11);
            let vals: Vec<f64> = (0..4000)
                .map(|_| perturb_prob(Prob::new(0.5).unwrap(), sigma, &mut rng).get())
                .collect();
            crate::stats::std_dev(&vals)
        };
        assert!(spread(0.5) < spread(2.0));
    }
}
