//! The experiment harness: run rankers over scenario cases, collect
//! per-protein average precision, summarize as in the paper's figures.

use biorank_graph::QueryGraph;
use biorank_rank::{Ranker, Ranking};

use crate::ap::{average_precision, random_ap};
use crate::scenario::ScenarioCase;
use crate::stats::{summarize, Summary};
use crate::{perturb, Error};

/// Mean/stdev AP of one method over a scenario, as plotted in Fig. 5.
#[derive(Clone, Debug)]
pub struct MethodAp {
    /// Method name (`Rel`, `Prop`, …).
    pub method: String,
    /// Per-protein APs, in case order.
    pub per_case: Vec<f64>,
    /// Summary over cases.
    pub summary: Summary,
}

/// Scores one case with one ranker and computes tie-aware AP.
///
/// Returns `None` when the case has no relevant answers (AP undefined).
pub fn case_ap(ranker: &dyn Ranker, case: &ScenarioCase) -> Result<Option<f64>, Error> {
    case_ap_on_graph(ranker, case, &case.result.query)
}

/// Like [`case_ap`] but scores a caller-supplied graph (used by the
/// sensitivity analysis, which perturbs the graph first).
pub fn case_ap_on_graph(
    ranker: &dyn Ranker,
    case: &ScenarioCase,
    graph: &QueryGraph,
) -> Result<Option<f64>, Error> {
    let scores = ranker.score(graph)?;
    let ranking = Ranking::rank(scores.answers(graph));
    Ok(average_precision(&ranking, |n| case.is_relevant(n)))
}

/// Evaluates each ranker over all cases (Fig. 5 columns).
pub fn evaluate(
    rankers: &[Box<dyn Ranker + Send + Sync>],
    cases: &[ScenarioCase],
) -> Result<Vec<MethodAp>, Error> {
    let mut out = Vec::with_capacity(rankers.len() + 1);
    for ranker in rankers {
        let mut per_case = Vec::with_capacity(cases.len());
        for case in cases {
            if let Some(ap) = case_ap(ranker.as_ref(), case)? {
                per_case.push(ap);
            }
        }
        out.push(MethodAp {
            method: ranker.name().to_string(),
            summary: summarize(&per_case),
            per_case,
        });
    }
    Ok(out)
}

/// The analytic random-ordering baseline (Definition 4.1) per case.
pub fn random_baseline(cases: &[ScenarioCase]) -> MethodAp {
    let per_case: Vec<f64> = cases
        .iter()
        .filter_map(|c| random_ap(c.relevant_count(), c.answer_count()))
        .collect();
    MethodAp {
        method: "Random".to_string(),
        summary: summarize(&per_case),
        per_case,
    }
}

/// One cell of the Fig. 6 sensitivity analysis: mean AP of `ranker` over
/// `cases` after perturbing all probabilities with log-odds noise of
/// standard deviation `sigma`, averaged over `repetitions` noise draws.
pub fn sensitivity_ap(
    ranker: &dyn Ranker,
    cases: &[ScenarioCase],
    sigma: f64,
    repetitions: usize,
    seed: u64,
) -> Result<Summary, Error> {
    let mut reps = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let mut per_case = Vec::with_capacity(cases.len());
        for (ci, case) in cases.iter().enumerate() {
            let noise_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((rep * 1000 + ci) as u64);
            let perturbed = perturb::perturb_query_graph(&case.result.query, sigma, noise_seed);
            if let Some(ap) = case_ap_on_graph(ranker, case, &perturbed)? {
                per_case.push(ap);
            }
        }
        reps.push(crate::stats::mean(&per_case));
    }
    Ok(summarize(&reps))
}

/// The Fig. 6 "Random" column: probabilities replaced by Uniform(0,1).
pub fn random_assignment_ap(
    ranker: &dyn Ranker,
    cases: &[ScenarioCase],
    repetitions: usize,
    seed: u64,
) -> Result<Summary, Error> {
    let mut reps = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let mut per_case = Vec::with_capacity(cases.len());
        for (ci, case) in cases.iter().enumerate() {
            let noise_seed = seed
                .wrapping_mul(0xD134_2543_DE82_EF95)
                .wrapping_add((rep * 1000 + ci) as u64);
            let randomized = perturb::randomize_query_graph(&case.result.query, noise_seed);
            if let Some(ap) = case_ap_on_graph(ranker, case, &randomized)? {
                per_case.push(ap);
            }
        }
        reps.push(crate::stats::mean(&per_case));
    }
    Ok(summarize(&reps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_cases, Scenario};
    use biorank_rank::{InEdge, Propagation};
    use biorank_sources::{World, WorldParams};

    fn small_cases() -> Vec<ScenarioCase> {
        let world = World::generate(WorldParams::default());
        build_cases(&world, Scenario::Hypothetical).unwrap()
    }

    #[test]
    fn evaluate_produces_one_result_per_ranker() {
        let cases = small_cases();
        let rankers: Vec<Box<dyn Ranker + Send + Sync>> =
            vec![Box::new(InEdge), Box::new(Propagation::auto())];
        let results = evaluate(&rankers, &cases).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.per_case.len(), 11);
            assert!(r.summary.mean > 0.0 && r.summary.mean <= 1.0);
        }
    }

    #[test]
    fn random_baseline_matches_definition() {
        let cases = small_cases();
        let base = random_baseline(&cases);
        assert_eq!(base.per_case.len(), 11);
        // Scenario 3 random mean reported as 0.29 in the paper; our
        // answer-set sizes are identical so the value is exact.
        assert!(
            (base.summary.mean - 0.29).abs() < 0.03,
            "random mean {}",
            base.summary.mean
        );
    }

    #[test]
    fn rankers_beat_random_on_scenario3() {
        let cases = small_cases();
        let prop = evaluate(
            &[Box::new(Propagation::auto()) as Box<dyn Ranker + Send + Sync>],
            &cases,
        )
        .unwrap();
        let base = random_baseline(&cases);
        assert!(
            prop[0].summary.mean > base.summary.mean,
            "propagation {} must beat random {}",
            prop[0].summary.mean,
            base.summary.mean
        );
    }

    #[test]
    fn sensitivity_with_zero_sigma_equals_default() {
        let cases = small_cases();
        let ranker = Propagation::auto();
        let direct =
            evaluate(&[Box::new(ranker) as Box<dyn Ranker + Send + Sync>], &cases).unwrap();
        let sens = sensitivity_ap(&ranker, &cases, 0.0, 3, 1).unwrap();
        assert!((sens.mean - direct[0].summary.mean).abs() < 1e-12);
        assert!(sens.std_dev < 1e-12, "zero noise has zero spread");
    }

    #[test]
    fn random_assignment_degrades_ranking() {
        let cases = small_cases();
        let ranker = Propagation::auto();
        let default_ap = evaluate(&[Box::new(ranker) as Box<dyn Ranker + Send + Sync>], &cases)
            .unwrap()[0]
            .summary
            .mean;
        let randomized = random_assignment_ap(&ranker, &cases, 5, 3).unwrap();
        assert!(
            randomized.mean < default_ap,
            "random probabilities {} must underperform defaults {default_ap}",
            randomized.mean
        );
    }
}
