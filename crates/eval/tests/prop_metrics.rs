//! Property tests for the evaluation metrics.

use biorank_eval::ap::{average_precision, average_precision_strict, random_ap};
use biorank_eval::perturb;
use biorank_graph::{NodeId, Prob};
use biorank_rank::Ranking;
use proptest::prelude::*;
use rand::SeedableRng;

fn scored_list() -> impl Strategy<Value = (Vec<(NodeId, f64)>, Vec<bool>)> {
    proptest::collection::vec((0u8..=10, proptest::bool::ANY), 1..40).prop_map(|items| {
        let scored: Vec<(NodeId, f64)> = items
            .iter()
            .enumerate()
            .map(|(i, (s, _))| (NodeId::from_index(i), f64::from(*s) / 10.0))
            .collect();
        let relevant: Vec<bool> = items.iter().map(|(_, r)| *r).collect();
        (scored, relevant)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AP is always in [0, 1] (when defined).
    #[test]
    fn ap_is_bounded((scored, relevant) in scored_list()) {
        let ranking = Ranking::rank(scored);
        if let Some(ap) = average_precision(&ranking, |n| relevant[n.index()]) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ap), "ap = {ap}");
        } else {
            prop_assert!(relevant.iter().all(|&r| !r));
        }
    }

    /// A ranking that puts every relevant item strictly first has AP 1.
    #[test]
    fn perfect_ranking_is_ap_one(rel_count in 1usize..10, junk in 1usize..20) {
        let mut scored = Vec::new();
        for i in 0..rel_count {
            scored.push((NodeId::from_index(i), 1000.0 - i as f64));
        }
        for j in 0..junk {
            scored.push((NodeId::from_index(rel_count + j), 10.0 - j as f64));
        }
        let ranking = Ranking::rank(scored);
        let ap = average_precision(&ranking, |n| n.index() < rel_count).unwrap();
        prop_assert!((ap - 1.0).abs() < 1e-12);
    }

    /// Swapping an irrelevant item above a relevant one never increases
    /// strict AP.
    #[test]
    fn demotion_monotonicity(rel in proptest::collection::vec(proptest::bool::ANY, 2..30)) {
        let base = average_precision_strict(&rel);
        // Find an adjacent (relevant, irrelevant) pair and swap it.
        for i in 0..rel.len() - 1 {
            if rel[i] && !rel[i + 1] {
                let mut worse = rel.clone();
                worse.swap(i, i + 1);
                if let (Some(a), Some(b)) = (base, average_precision_strict(&worse)) {
                    prop_assert!(b <= a + 1e-12, "swap at {i}: {a} -> {b}");
                }
            }
        }
    }

    /// Random AP lies strictly between the worst and best AP for the
    /// same (k, n) and matches k/n asymptotics loosely.
    #[test]
    fn random_ap_is_between_extremes(k in 1usize..15, extra in 1usize..30) {
        let n = k + extra;
        let rand = random_ap(k, n).unwrap();
        // Worst AP: all relevant at the bottom.
        let mut worst_rel = vec![false; n];
        for i in 0..k {
            worst_rel[n - 1 - i] = true;
        }
        let worst = average_precision_strict(&worst_rel).unwrap();
        prop_assert!(rand > worst - 1e-12);
        prop_assert!(rand < 1.0);
    }

    /// Log-odds perturbation keeps probabilities valid and is identity
    /// at σ = 0.
    #[test]
    fn perturbation_validity(p0 in 0.0f64..=1.0, sigma in 0.0f64..4.0, seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Prob::clamped(p0);
        let out = perturb::perturb_prob(p, sigma, &mut rng);
        prop_assert!((0.0..=1.0).contains(&out.get()));
        if sigma == 0.0 {
            prop_assert_eq!(out.get(), p.get());
        }
        // Degenerate inputs are fixed points.
        if p.is_zero() || p.is_one() {
            prop_assert_eq!(out.get(), p.get());
        }
    }

    /// Tie-aware AP equals strict AP whenever there are no ties.
    #[test]
    fn tie_aware_reduces_to_strict(rel in proptest::collection::vec(proptest::bool::ANY, 1..30)) {
        let scored: Vec<(NodeId, f64)> = rel
            .iter()
            .enumerate()
            .map(|(i, _)| (NodeId::from_index(i), 100.0 - i as f64))
            .collect();
        let ranking = Ranking::rank(scored);
        let tie_aware = average_precision(&ranking, |n| rel[n.index()]);
        let strict = average_precision_strict(&rel);
        match (tie_aware, strict) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
            (None, None) => {}
            other => prop_assert!(false, "mismatch: {other:?}"),
        }
    }
}
