//! The probabilistic query graph (paper Definition 2.3).
//!
//! `G = (N, E, p, q, s, A)`: a probabilistic entity graph together with a
//! distinguished query node `s` and an answer set `A ⊂ N`. Every ranking
//! semantics in `biorank-rank` consumes this type.

use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::{csr::CsrGraph, reach, Error, NodeId, ProbGraph};

/// A probabilistic entity graph with a query source node and answer set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryGraph {
    graph: ProbGraph,
    source: NodeId,
    answers: Vec<NodeId>,
    /// Lazily built CSR snapshot of the live subgraph, shared by every
    /// estimator batch and fused sweep against this query. Invalidated
    /// by any mutation ([`QueryGraph::graph_mut`], [`QueryGraph::prune`]);
    /// never serialized.
    #[serde(skip)]
    csr: OnceLock<Arc<CsrGraph>>,
}

impl QueryGraph {
    /// Builds a query graph, validating that `source` and all `answers`
    /// are live nodes of `graph` and that the answer set is non-empty and
    /// duplicate-free (duplicates are removed; order is preserved).
    pub fn new(graph: ProbGraph, source: NodeId, answers: Vec<NodeId>) -> Result<Self, Error> {
        if !graph.node_alive(source) {
            return Err(Error::NoSuchNode(source));
        }
        let mut seen = vec![false; graph.node_bound()];
        let mut dedup = Vec::with_capacity(answers.len());
        for a in answers {
            if !graph.node_alive(a) {
                return Err(Error::NoSuchNode(a));
            }
            if !seen[a.index()] {
                seen[a.index()] = true;
                dedup.push(a);
            }
        }
        if dedup.is_empty() {
            return Err(Error::EmptyAnswerSet);
        }
        Ok(QueryGraph {
            graph,
            source,
            answers: dedup,
            csr: OnceLock::new(),
        })
    }

    /// The underlying probabilistic entity graph.
    pub fn graph(&self) -> &ProbGraph {
        &self.graph
    }

    /// Mutable access to the underlying graph.
    ///
    /// Callers must not remove the source or answer nodes; the ranking
    /// algorithms assert liveness.
    pub fn graph_mut(&mut self) -> &mut ProbGraph {
        self.csr = OnceLock::new();
        &mut self.graph
    }

    /// The CSR snapshot of the live subgraph, built on first use and
    /// shared (via `Arc`) across estimator batches, worker threads, and
    /// fused sweeps until the graph is next mutated.
    pub fn csr(&self) -> Arc<CsrGraph> {
        Arc::clone(
            self.csr
                .get_or_init(|| Arc::new(CsrGraph::from_graph(&self.graph))),
        )
    }

    /// The query node `s`.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The answer set `A`, in insertion order.
    pub fn answers(&self) -> &[NodeId] {
        &self.answers
    }

    /// Decomposes into `(graph, source, answers)`.
    pub fn into_parts(self) -> (ProbGraph, NodeId, Vec<NodeId>) {
        (self.graph, self.source, self.answers)
    }

    /// Removes every node not on a `source → answer` path.
    ///
    /// Answers unreachable from the source are kept in the answer set
    /// (they simply score zero under every semantics) but their stranded
    /// evidence subgraphs are dropped. Returns the number of removed
    /// nodes. This mirrors the query-graph construction in the paper: the
    /// mediator only materializes reachable records.
    pub fn prune(&mut self) -> usize {
        self.csr = OnceLock::new();
        let reachable = reach::reachable_from(&self.graph, self.source);
        let kept: Vec<NodeId> = self
            .answers
            .iter()
            .copied()
            .filter(|a| reachable[a.index()])
            .collect();
        let removed = reach::prune_to_relevant(&mut self.graph, self.source, &kept);
        // Re-add unreachable answers as isolated live nodes so that rank
        // vectors still cover them. prune_to_relevant removed them.
        let mut restored = Vec::with_capacity(self.answers.len());
        for &a in &self.answers {
            if self.graph.node_alive(a) {
                restored.push(a);
            }
        }
        self.answers = restored;
        removed
    }

    /// A compacted copy (dense ids) of this query graph.
    pub fn compacted(&self) -> QueryGraph {
        let (g, remap) = self.graph.compact();
        let source = remap[self.source.index()].expect("source must survive compaction");
        let answers = self
            .answers
            .iter()
            .filter_map(|a| remap[a.index()])
            .collect();
        QueryGraph {
            graph: g,
            source,
            answers,
            csr: OnceLock::new(),
        }
    }

    /// Extracts the sub-query-graph relevant to a single answer node.
    ///
    /// This is the unit on which the paper's closed-solution evaluates
    /// reliability: "applying them not to the whole graph, but
    /// individually to each subgraph connecting the source and each target
    /// node" (§3.1(3)). The result is compacted; returns the new graph
    /// plus the mapped source/target ids.
    pub fn single_target(&self, answer: NodeId) -> Result<SingleTarget, Error> {
        if !self.graph.node_alive(answer) {
            return Err(Error::NoSuchNode(answer));
        }
        let mut g = self.graph.clone();
        reach::prune_to_relevant(&mut g, self.source, &[answer]);
        let (dense, remap) = g.compact();
        let source = remap[self.source.index()].expect("source survives");
        let target = remap[answer.index()];
        Ok(SingleTarget {
            graph: dense,
            source,
            target,
        })
    }
}

/// The subgraph connecting the query node to one answer node.
#[derive(Clone, Debug)]
pub struct SingleTarget {
    /// Compacted relevant subgraph.
    pub graph: ProbGraph,
    /// Query node in the compacted graph.
    pub source: NodeId,
    /// Target node in the compacted graph; `None` when the answer was
    /// unreachable from the source (its reliability is 0).
    pub target: Option<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prob;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn two_answer_graph() -> (ProbGraph, NodeId, NodeId, NodeId, NodeId) {
        // s → a → t1, s → t2, plus junk node j hanging off a.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.8));
        let t1 = g.add_node(p(0.7));
        let t2 = g.add_node(p(0.6));
        let j = g.add_node(p(0.5));
        g.add_edge(s, a, p(0.9)).unwrap();
        g.add_edge(a, t1, p(0.9)).unwrap();
        g.add_edge(s, t2, p(0.9)).unwrap();
        g.add_edge(a, j, p(0.9)).unwrap();
        (g, s, a, t1, t2)
    }

    #[test]
    fn new_validates_source_and_answers() {
        let (g, s, _, t1, _) = two_answer_graph();
        let ghost = NodeId::from_index(99);
        assert!(QueryGraph::new(g.clone(), ghost, vec![t1]).is_err());
        assert!(QueryGraph::new(g.clone(), s, vec![ghost]).is_err());
        assert!(matches!(
            QueryGraph::new(g.clone(), s, vec![]),
            Err(Error::EmptyAnswerSet)
        ));
        assert!(QueryGraph::new(g, s, vec![t1]).is_ok());
    }

    #[test]
    fn new_dedups_answers_preserving_order() {
        let (g, s, _, t1, t2) = two_answer_graph();
        let q = QueryGraph::new(g, s, vec![t2, t1, t2]).unwrap();
        assert_eq!(q.answers(), &[t2, t1]);
    }

    #[test]
    fn prune_drops_junk_keeps_answers() {
        let (g, s, a, t1, t2) = two_answer_graph();
        let mut q = QueryGraph::new(g, s, vec![t1, t2]).unwrap();
        let removed = q.prune();
        assert_eq!(removed, 1); // junk node j
        assert!(q.graph().node_alive(a));
        assert_eq!(q.answers(), &[t1, t2]);
    }

    #[test]
    fn prune_drops_unreachable_answers_from_set() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let island = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        let mut q = QueryGraph::new(g, s, vec![t, island]).unwrap();
        q.prune();
        assert_eq!(q.answers(), &[t]);
    }

    #[test]
    fn compacted_remaps_ids() {
        let (g, s, _, t1, t2) = two_answer_graph();
        let mut q = QueryGraph::new(g, s, vec![t1, t2]).unwrap();
        q.prune();
        let c = q.compacted();
        assert_eq!(c.graph().node_count(), 4);
        assert_eq!(c.answers().len(), 2);
        assert!(c.graph().node_alive(c.source()));
        c.graph().check_invariants();
    }

    #[test]
    fn single_target_isolates_one_answer() {
        let (g, s, _, t1, t2) = two_answer_graph();
        let q = QueryGraph::new(g, s, vec![t1, t2]).unwrap();
        let st = q.single_target(t1).unwrap();
        // Relevant subgraph for t1: s → a → t1 (3 nodes, 2 edges).
        assert_eq!(st.graph.node_count(), 3);
        assert_eq!(st.graph.edge_count(), 2);
        assert!(st.target.is_some());
    }

    #[test]
    fn single_target_unreachable_answer() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let island = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![t, island]).unwrap();
        let st = q.single_target(island).unwrap();
        assert!(st.target.is_none());
    }
}
