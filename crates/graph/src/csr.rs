//! Frozen compressed-sparse-row snapshots of probabilistic graphs.
//!
//! [`crate::ProbGraph`] is an arena store tuned for the reduction
//! engine: adjacency is `Vec<Vec<EdgeId>>`, ids are sparse after
//! tombstoning, and every probability lookup chases a pointer. That is
//! the right shape for rewriting, and the wrong shape for the Monte
//! Carlo hot loop, which wants to stream over nodes and edges in flat
//! arrays. [`CsrGraph`] is the read-only counterpart: built once per
//! query, it packs the live subgraph into dense `u32` offset/target
//! arrays with probabilities alongside, and precomputes a topological
//! order when one exists (the paper's query graphs are all convergent
//! workflow DAGs, so the order is almost always available).
//!
//! The word-parallel reliability engine (`biorank_rank::WordMc`) is
//! the primary consumer: one CSR pass propagates 64 Monte Carlo
//! trials at a time through bitmask AND/OR.

use std::sync::OnceLock;

use crate::{topo, NodeId, ProbGraph};

/// Sentinel in the original→dense map for dead (tombstoned) slots.
const DEAD: u32 = u32::MAX;

/// A topologically streamed edge layout of a [`CsrGraph`].
///
/// The Monte Carlo propagation loop visits nodes in topological order,
/// which under dense-id indexing means striding the mask and reach
/// arrays in whatever order the toposort produced — on large worlds
/// every edge is a potential cache miss. The layout renames nodes to
/// their topological *position* and re-groups the edge arrays by
/// source position, so a propagation sweep reads its per-node state,
/// its out-edge targets, and its edge masks as forward streams: the
/// working set moves through L2 once per batch instead of striding the
/// full arrays at random.
///
/// For cyclic snapshots (no topological order) the layout degenerates
/// to the identity renaming with the original CSR edge grouping, so
/// consumers can index through it unconditionally.
#[derive(Clone, Debug)]
pub struct TopoLayout {
    /// Dense node id → position in the propagation sweep.
    pos_of_dense: Vec<u32>,
    /// Position → dense node id (the sweep order itself).
    dense_of_pos: Vec<u32>,
    /// `offsets[p]..offsets[p + 1]` is the layout-edge range of the
    /// node at position `p`; length `node_count + 1`.
    offsets: Vec<u32>,
    /// Target *position* of each layout edge slot.
    targets: Vec<u32>,
    /// CSR edge slot `k` → layout edge slot. Mask drawing walks edges
    /// in pinned CSR order (the RNG schedule) while writing into
    /// layout slots, so the sweep can read them sequentially.
    slot_of_edge: Vec<u32>,
}

impl TopoLayout {
    fn build(csr: &CsrGraph) -> TopoLayout {
        let n = csr.node_count();
        let dense_of_pos: Vec<u32> = match csr.topo_order() {
            Some(order) => order.to_vec(),
            None => (0..n as u32).collect(),
        };
        let mut pos_of_dense = vec![0u32; n];
        for (p, &d) in dense_of_pos.iter().enumerate() {
            pos_of_dense[d as usize] = p as u32;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(csr.edge_count());
        let mut slot_of_edge = vec![0u32; csr.edge_count()];
        offsets.push(0);
        for &d in &dense_of_pos {
            for k in csr.out_range(d) {
                slot_of_edge[k] = targets.len() as u32;
                targets.push(pos_of_dense[csr.target(k) as usize]);
            }
            offsets.push(targets.len() as u32);
        }
        TopoLayout {
            pos_of_dense,
            dense_of_pos,
            offsets,
            targets,
            slot_of_edge,
        }
    }

    /// Sweep position of dense node `d`.
    pub fn position(&self, d: u32) -> u32 {
        self.pos_of_dense[d as usize]
    }

    /// Dense node id at sweep position `p` (the sweep order array).
    pub fn dense_of_pos(&self) -> &[u32] {
        &self.dense_of_pos
    }

    /// Layout-edge range of the node at position `p`.
    pub fn out_range(&self, p: u32) -> std::ops::Range<usize> {
        self.offsets[p as usize] as usize..self.offsets[p as usize + 1] as usize
    }

    /// Target positions, indexed by layout edge slot.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Layout edge slot of CSR edge slot `k`, aligned with the pinned
    /// drawing order.
    pub fn slot_of_edge(&self) -> &[u32] {
        &self.slot_of_edge
    }
}

/// A frozen CSR snapshot of the live subgraph of a [`ProbGraph`].
///
/// Nodes are renumbered densely (`0..node_count()`) in ascending
/// original-id order; edges are grouped by source node in the same
/// order. All arrays are index-aligned: edge slot `k` holds both its
/// target ([`CsrGraph::target`]) and its presence probability
/// ([`CsrGraph::edge_q`]).
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `offsets[i]..offsets[i + 1]` is the out-edge slot range of
    /// dense node `i`; length `node_count() + 1`.
    offsets: Vec<u32>,
    /// Dense target node of each edge slot.
    targets: Vec<u32>,
    /// Presence probability of each edge slot.
    edge_q: Vec<f64>,
    /// Presence probability of each dense node.
    node_p: Vec<f64>,
    /// Dense index → original id.
    orig: Vec<NodeId>,
    /// Original index → dense index (`DEAD` for tombstoned slots).
    dense_of: Vec<u32>,
    /// Dense node indices in topological order; `None` when the live
    /// subgraph is cyclic.
    topo: Option<Vec<u32>>,
    /// Lazily built propagation layout (see [`TopoLayout`]).
    layout: OnceLock<TopoLayout>,
}

impl CsrGraph {
    /// Snapshots the live subgraph of `g`.
    pub fn from_graph(g: &ProbGraph) -> CsrGraph {
        let n = g.node_count();
        let mut orig = Vec::with_capacity(n);
        let mut dense_of = vec![DEAD; g.node_bound()];
        for node in g.nodes() {
            dense_of[node.index()] = orig.len() as u32;
            orig.push(node);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.edge_count());
        let mut edge_q = Vec::with_capacity(g.edge_count());
        let mut node_p = Vec::with_capacity(n);
        offsets.push(0);
        for &node in &orig {
            node_p.push(g.node_p(node).get());
            for e in g.out_edges(node) {
                targets.push(dense_of[g.edge_dst(e).index()]);
                edge_q.push(g.edge_q(e).get());
            }
            offsets.push(targets.len() as u32);
        }
        let topo = topo::toposort(g)
            .ok()
            .map(|order| order.iter().map(|x| dense_of[x.index()]).collect());
        CsrGraph {
            offsets,
            targets,
            edge_q,
            node_p,
            orig,
            dense_of,
            topo,
            layout: OnceLock::new(),
        }
    }

    /// Number of (live) nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.orig.len()
    }

    /// Number of (live) edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Dense index of original node `n`, or `None` if `n` was dead or
    /// out of bounds at snapshot time.
    pub fn dense(&self, n: NodeId) -> Option<u32> {
        match self.dense_of.get(n.index()) {
            Some(&d) if d != DEAD => Some(d),
            _ => None,
        }
    }

    /// Original id of dense node `i`.
    pub fn original(&self, i: u32) -> NodeId {
        self.orig[i as usize]
    }

    /// Presence probability of dense node `i`.
    pub fn node_p(&self, i: u32) -> f64 {
        self.node_p[i as usize]
    }

    /// Out-edge slot range of dense node `i`.
    pub fn out_range(&self, i: u32) -> std::ops::Range<usize> {
        self.offsets[i as usize] as usize..self.offsets[i as usize + 1] as usize
    }

    /// Dense target node of edge slot `k`.
    pub fn target(&self, k: usize) -> u32 {
        self.targets[k]
    }

    /// Presence probability of edge slot `k`.
    pub fn edge_q(&self, k: usize) -> f64 {
        self.edge_q[k]
    }

    /// The full dense target array (hot loops index it directly).
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The full edge-probability array, aligned with
    /// [`CsrGraph::targets`].
    pub fn edge_probs(&self) -> &[f64] {
        &self.edge_q
    }

    /// The full node-probability array, indexed by dense id.
    pub fn node_probs(&self) -> &[f64] {
        &self.node_p
    }

    /// Dense node indices in topological order, or `None` when the
    /// snapshot contains a directed cycle.
    pub fn topo_order(&self) -> Option<&[u32]> {
        self.topo.as_deref()
    }

    /// `true` when the snapshot is acyclic (the single-pass
    /// propagation fast path applies).
    pub fn is_dag(&self) -> bool {
        self.topo.is_some()
    }

    /// The topologically streamed propagation layout, built on first
    /// use and cached for the lifetime of the snapshot.
    pub fn topo_layout(&self) -> &TopoLayout {
        self.layout.get_or_init(|| TopoLayout::build(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prob;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn diamond() -> (ProbGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.8));
        let b = g.add_node(p(0.7));
        let t = g.add_node(p(0.6));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.4)).unwrap();
        g.add_edge(a, t, p(0.3)).unwrap();
        g.add_edge(b, t, p(0.2)).unwrap();
        (g, s, a, b, t)
    }

    #[test]
    fn snapshot_matches_arena_structure() {
        let (g, s, a, b, t) = diamond();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.edge_count(), 4);
        let ds = c.dense(s).unwrap();
        assert_eq!(c.original(ds), s);
        assert_eq!(c.node_p(ds), 1.0);
        assert_eq!(c.node_p(c.dense(t).unwrap()), 0.6);
        // s has two out-edges, to a (q 0.5) and b (q 0.4), in
        // adjacency order.
        let range = c.out_range(ds);
        assert_eq!(range.len(), 2);
        let ends: Vec<(u32, f64)> = range.map(|k| (c.target(k), c.edge_q(k))).collect();
        assert_eq!(ends[0], (c.dense(a).unwrap(), 0.5));
        assert_eq!(ends[1], (c.dense(b).unwrap(), 0.4));
        // t has none.
        assert!(c.out_range(c.dense(t).unwrap()).is_empty());
    }

    #[test]
    fn tombstoned_elements_are_skipped_and_ids_stay_dense() {
        let (mut g, s, a, _, t) = diamond();
        g.remove_node(a);
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.edge_count(), 2); // s → b and b → t survive a's removal
        assert_eq!(c.dense(a), None);
        // Dense ids cover 0..3 contiguously and map back to live ids.
        let mut seen: Vec<NodeId> = (0..3).map(|i| c.original(i)).collect();
        seen.sort();
        assert!(seen.contains(&s) && seen.contains(&t));
        assert_eq!(c.dense(NodeId::from_index(99)), None);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _, _, _, _) = diamond();
        let c = CsrGraph::from_graph(&g);
        let order = c.topo_order().expect("diamond is a DAG");
        assert!(c.is_dag());
        let pos = |i: u32| order.iter().position(|&x| x == i).unwrap();
        for i in 0..c.node_count() as u32 {
            for k in c.out_range(i) {
                assert!(
                    pos(i) < pos(c.target(k)),
                    "edge {i}→{} out of order",
                    c.target(k)
                );
            }
        }
    }

    #[test]
    fn cyclic_graphs_have_no_topo_order() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, a, p(0.5)).unwrap();
        let c = CsrGraph::from_graph(&g);
        assert!(!c.is_dag());
        assert!(c.topo_order().is_none());
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn slice_accessors_are_aligned() {
        let (g, _, _, _, _) = diamond();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.targets().len(), c.edge_probs().len());
        assert_eq!(c.node_probs().len(), c.node_count());
        for i in 0..c.node_count() as u32 {
            for k in c.out_range(i) {
                assert_eq!(c.targets()[k], c.target(k));
                assert_eq!(c.edge_probs()[k], c.edge_q(k));
            }
        }
    }
}
