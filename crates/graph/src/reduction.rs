//! Reliability-preserving graph reductions (paper §3.1(2)).
//!
//! Three rewrite rules, applied to a fixpoint:
//!
//! 1. **Delete inaccessible nodes** — a sink node (no outgoing edges) that
//!    is not a target can never lie on a source→target path; remove it.
//!    We additionally remove *orphan* nodes (no incoming edges, not the
//!    source), which is sound for the same reason and makes the rules
//!    confluent with query graphs that were not pre-pruned.
//! 2. **Collapse serial paths** — a node `x` with a single in-edge `(y,x)`
//!    and single out-edge `(x,z)` is replaced by an edge `(y,z)` with
//!    `q = q(y,x) · p(x) · q(x,z)`.
//! 3. **Collapse parallel paths** — multiple edges `x → y` merge into one
//!    with `q = 1 − ∏ᵢ(1 − qᵢ)`.
//!
//! All three preserve the source–target reliability for every protected
//! node (proved in the network-reliability literature; exercised here by
//! property tests against exact world enumeration). On the paper's
//! scientific-workflow graphs they remove ~78% of elements (§4), which we
//! reproduce in `biorank-experiments fig8`.

use crate::{EdgeId, NodeId, Prob, ProbGraph};

/// Counters describing one [`reduce`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Live nodes before reduction.
    pub nodes_before: usize,
    /// Live edges before reduction.
    pub edges_before: usize,
    /// Live nodes after reduction.
    pub nodes_after: usize,
    /// Live edges after reduction.
    pub edges_after: usize,
    /// Applications of the serial-path rule.
    pub serial_collapses: usize,
    /// Applications of the parallel-path rule (edges merged away).
    pub parallel_merges: usize,
    /// Non-target sinks and non-source orphans deleted.
    pub dead_nodes_deleted: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

impl ReductionStats {
    /// Fraction of nodes+edges removed, in `[0, 1]`.
    ///
    /// The paper reports −78% on its 20 scenario-1 query graphs.
    pub fn shrink_ratio(&self) -> f64 {
        let before = (self.nodes_before + self.edges_before) as f64;
        if before == 0.0 {
            return 0.0;
        }
        let after = (self.nodes_after + self.edges_after) as f64;
        1.0 - after / before
    }
}

/// Applies the three reduction rules to a fixpoint.
///
/// `source` and every node in `protected` (the targets) are never
/// deleted or collapsed. The graph is modified in place; ids of surviving
/// elements are stable. Returns the rule-application statistics.
pub fn reduce(g: &mut ProbGraph, source: NodeId, protected: &[NodeId]) -> ReductionStats {
    let mut stats = ReductionStats {
        nodes_before: g.node_count(),
        edges_before: g.edge_count(),
        ..ReductionStats::default()
    };
    let mut is_protected = vec![false; g.node_bound()];
    if source.index() < is_protected.len() {
        is_protected[source.index()] = true;
    }
    for &t in protected {
        if t.index() < is_protected.len() {
            is_protected[t.index()] = true;
        }
    }

    loop {
        stats.rounds += 1;
        let mut changed = false;
        changed |= delete_dead_nodes(g, source, &is_protected, &mut stats);
        changed |= collapse_serial(g, &is_protected, &mut stats);
        changed |= merge_parallel(g, &mut stats);
        if !changed {
            break;
        }
    }

    stats.nodes_after = g.node_count();
    stats.edges_after = g.edge_count();
    debug_assert!({
        g.check_invariants();
        true
    });
    stats
}

/// Rule 1: delete non-protected sinks and non-source orphans, cascading.
fn delete_dead_nodes(
    g: &mut ProbGraph,
    source: NodeId,
    is_protected: &[bool],
    stats: &mut ReductionStats,
) -> bool {
    let mut worklist: Vec<NodeId> = g
        .nodes()
        .filter(|n| !is_protected[n.index()] && (g.out_degree(*n) == 0 || g.in_degree(*n) == 0))
        .collect();
    let mut any = false;
    while let Some(n) = worklist.pop() {
        if !g.node_alive(n) || is_protected[n.index()] || n == source {
            continue;
        }
        if g.out_degree(n) != 0 && g.in_degree(n) != 0 {
            continue; // degree changed since scheduling
        }
        // Neighbors may become dead once n goes away.
        let neighbors: Vec<NodeId> = g.predecessors(n).chain(g.successors(n)).collect();
        g.remove_node(n);
        stats.dead_nodes_deleted += 1;
        any = true;
        for m in neighbors {
            if g.node_alive(m)
                && !is_protected[m.index()]
                && (g.out_degree(m) == 0 || g.in_degree(m) == 0)
            {
                worklist.push(m);
            }
        }
    }
    any
}

/// Rule 2: collapse every serial node (1 in-edge, 1 out-edge).
fn collapse_serial(g: &mut ProbGraph, is_protected: &[bool], stats: &mut ReductionStats) -> bool {
    let mut any = false;
    let candidates: Vec<NodeId> = g.nodes().filter(|n| !is_protected[n.index()]).collect();
    let mut worklist = candidates;
    while let Some(x) = worklist.pop() {
        if !g.node_alive(x) || is_protected[x.index()] {
            continue;
        }
        if g.in_degree(x) != 1 || g.out_degree(x) != 1 {
            continue;
        }
        let e_in = g.in_edges(x).next().expect("in_degree == 1");
        let e_out = g.out_edges(x).next().expect("out_degree == 1");
        let y = g.edge_src(e_in);
        let z = g.edge_dst(e_out);
        let q = g.edge_q(e_in).and(g.node_p(x)).and(g.edge_q(e_out));
        g.remove_node(x);
        stats.serial_collapses += 1;
        any = true;
        if y != z {
            g.add_edge(y, z, q)
                .expect("serial endpoints are live distinct nodes");
            // y or z may have become serial themselves.
            worklist.push(y);
            worklist.push(z);
        }
        // If y == z the collapse found a 2-cycle through x; the would-be
        // self-loop never affects s→t connectivity, so it is dropped
        // (y/z degrees shrank — they may now be dead or serial).
    }
    any
}

/// Rule 3: merge parallel edges per (src, dst) pair with noisy-or.
fn merge_parallel(g: &mut ProbGraph, stats: &mut ReductionStats) -> bool {
    let mut any = false;
    let nodes: Vec<NodeId> = g.nodes().collect();
    for x in nodes {
        loop {
            // Find one duplicated destination among x's out-edges.
            let out: Vec<EdgeId> = g.out_edges(x).collect();
            if out.len() < 2 {
                break;
            }
            let mut seen: Vec<(NodeId, EdgeId)> = Vec::with_capacity(out.len());
            let mut dup: Option<(EdgeId, EdgeId)> = None;
            for e in out {
                let d = g.edge_dst(e);
                if let Some(&(_, first)) = seen.iter().find(|(dst, _)| *dst == d) {
                    dup = Some((first, e));
                    break;
                }
                seen.push((d, e));
            }
            let Some((e1, e2)) = dup else { break };
            let q = g.edge_q(e1).or(g.edge_q(e2));
            let dst = g.edge_dst(e1);
            g.remove_edge(e1);
            g.remove_edge(e2);
            g.add_edge(x, dst, q)
                .expect("merged edge endpoints are live");
            stats.parallel_merges += 1;
            any = true;
        }
    }
    any
}

/// Outcome of attempting the closed-form reliability evaluation of one
/// source→target subgraph (paper §3.1(3)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClosedForm {
    /// The subgraph fully reduced; the reliability is this value.
    Solved(f64),
    /// Reductions got stuck (e.g. a Wheatstone bridge remains); the
    /// residual graph has this many live nodes and edges.
    Stuck {
        /// Live nodes in the residual graph.
        nodes: usize,
        /// Live edges in the residual graph.
        edges: usize,
    },
}

/// Tries to compute the exact `source → target` reliability purely via
/// reductions.
///
/// The graph is consumed (reduced in place on a clone by callers that
/// need to keep it). Fully reducible instances — per Theorem 3.2, any
/// instance of a reducible schema — end as a single `source → target`
/// edge whose probability, times the endpoint node probabilities, is the
/// reliability `r(t) = p(s) · q(s,t) · p(t)`.
pub fn closed_form(mut g: ProbGraph, source: NodeId, target: NodeId) -> ClosedForm {
    if source == target {
        return ClosedForm::Solved(g.node_p(source).get());
    }
    crate::reach::prune_to_relevant(&mut g, source, &[target]);
    if !g.node_alive(target) {
        return ClosedForm::Solved(0.0);
    }
    match closed_form_in_place(&mut g, source, target) {
        Some(r) => ClosedForm::Solved(r),
        None => ClosedForm::Stuck {
            nodes: g.node_count(),
            edges: g.edge_count(),
        },
    }
}

/// Runs the reduction rules in place and, if the graph became the trivial
/// `source → target` single edge, returns the reliability. Returns `None`
/// when the rules got stuck. Callers must have pruned the graph to the
/// relevant subgraph with a live target first.
pub(crate) fn closed_form_in_place(
    g: &mut ProbGraph,
    source: NodeId,
    target: NodeId,
) -> Option<f64> {
    reduce(g, source, &[target]);
    if g.node_count() == 2 && g.edge_count() == 1 {
        let e = g.edges().next().expect("edge_count == 1");
        let (s, t, q) = g.edge(e);
        debug_assert_eq!((s, t), (source, target));
        Some(g.node_p(s).and(q).and(g.node_p(t)).get())
    } else {
        None
    }
}

/// Builds the Wheatstone bridge of Fig. 2c: the canonical irreducible
/// graph on which the rules get stuck. All probabilities are `prob`.
///
/// Returns `(graph, source, target)`.
pub fn wheatstone(prob: Prob) -> (ProbGraph, NodeId, NodeId) {
    let mut g = ProbGraph::new();
    let s = g.add_labeled_node(Prob::ONE, "s");
    let a = g.add_labeled_node(Prob::ONE, "a");
    let b = g.add_labeled_node(Prob::ONE, "b");
    let t = g.add_labeled_node(Prob::ONE, "t");
    for (u, v) in [(s, a), (s, b), (a, b), (a, t), (b, t)] {
        g.add_edge(u, v, prob).expect("bridge edges are valid");
    }
    (g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    #[test]
    fn serial_chain_reduces_to_single_edge() {
        // s →.8 x(p=.5) →.6 t   ⇒  q = .8·.5·.6 = .24
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let x = g.add_node(p(0.5));
        let t = g.add_node(p(0.9));
        g.add_edge(s, x, p(0.8)).unwrap();
        g.add_edge(x, t, p(0.6)).unwrap();
        let stats = reduce(&mut g, s, &[t]);
        assert_eq!(stats.serial_collapses, 1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let e = g.edges().next().unwrap();
        assert!((g.edge_q(e).get() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_merge_with_noisy_or() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        g.add_edge(s, t, p(0.5)).unwrap();
        let stats = reduce(&mut g, s, &[t]);
        assert_eq!(stats.parallel_merges, 1);
        assert_eq!(g.edge_count(), 1);
        let e = g.edges().next().unwrap();
        assert!((g.edge_q(e).get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn diamond_fully_reduces() {
        // s → a → t and s → b → t, all q=0.5, inner p=1.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(a, t, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        match closed_form(g, s, t) {
            // per-branch 0.25; noisy-or: 1 − 0.75² = 0.4375
            ClosedForm::Solved(r) => assert!((r - 0.4375).abs() < 1e-12),
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn wheatstone_bridge_is_stuck() {
        let (g, s, t) = wheatstone(p(0.5));
        match closed_form(g, s, t) {
            ClosedForm::Stuck { nodes, edges } => {
                assert_eq!(nodes, 4);
                assert_eq!(edges, 5);
            }
            other => panic!("bridge must be irreducible, got {other:?}"),
        }
    }

    #[test]
    fn dead_branches_are_deleted_cascading() {
        // s → t, plus s → a → b (dead chain: b is a non-target sink).
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let a = g.add_node(p(0.5));
        let b = g.add_node(p(0.5));
        g.add_edge(s, t, p(0.5)).unwrap();
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(a, b, p(0.5)).unwrap();
        let stats = reduce(&mut g, s, &[t]);
        assert_eq!(stats.dead_nodes_deleted, 2);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn orphan_nodes_are_deleted() {
        // x → t where x is not the source: x is an orphan.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let x = g.add_node(p(0.5));
        g.add_edge(s, t, p(0.5)).unwrap();
        g.add_edge(x, t, p(0.5)).unwrap();
        let stats = reduce(&mut g, s, &[t]);
        assert!(stats.dead_nodes_deleted >= 1);
        assert!(!g.node_alive(x));
    }

    #[test]
    fn source_and_targets_are_never_removed() {
        // Isolated source and target: nothing to do, but both survive.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        reduce(&mut g, s, &[t]);
        assert!(g.node_alive(s) && g.node_alive(t));
    }

    #[test]
    fn two_cycle_through_serial_node_is_dropped() {
        // y ⇄ x: x serial with in (y,x), out (x,y) — collapse would form a
        // self loop; it must be dropped, then y dies as a dead end.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let y = g.add_node(p(0.5));
        let x = g.add_node(p(0.5));
        g.add_edge(s, t, p(0.5)).unwrap();
        g.add_edge(s, y, p(0.5)).unwrap();
        g.add_edge(y, x, p(0.5)).unwrap();
        g.add_edge(x, y, p(0.5)).unwrap();
        let stats = reduce(&mut g, s, &[t]);
        assert_eq!(g.node_count(), 2, "stats: {stats:?}");
        g.check_invariants();
    }

    #[test]
    fn closed_form_unreachable_target_is_zero() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(0.9));
        let _ = g.add_node(p(0.5));
        assert_eq!(closed_form(g, s, t), ClosedForm::Solved(0.0));
    }

    #[test]
    fn closed_form_source_equals_target() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(0.7));
        assert_eq!(closed_form(g.clone(), s, s), ClosedForm::Solved(0.7));
        let _ = g;
    }

    #[test]
    fn closed_form_includes_node_probs() {
        // s(1) →.8 t(.5): r = 1 · .8 · .5
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(0.5));
        g.add_edge(s, t, p(0.8)).unwrap();
        match closed_form(g, s, t) {
            ClosedForm::Solved(r) => assert!((r - 0.4).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_shrink_ratio() {
        let stats = ReductionStats {
            nodes_before: 100,
            edges_before: 100,
            nodes_after: 11,
            edges_after: 33,
            ..Default::default()
        };
        assert!((stats.shrink_ratio() - 0.78).abs() < 1e-12);
        assert_eq!(ReductionStats::default().shrink_ratio(), 0.0);
    }

    #[test]
    fn long_chain_collapses_in_one_reduce_call() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let mut prev = s;
        for _ in 0..50 {
            let n = g.add_node(p(0.99));
            g.add_edge(prev, n, p(0.9)).unwrap();
            prev = n;
        }
        let t = prev;
        let stats = reduce(&mut g, s, &[t]);
        assert_eq!(stats.serial_collapses, 49);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
