//! Seeded random graph generators.
//!
//! The paper evaluates on "convergent, scientific workflow graphs"
//! (Discussion §5): layered DAGs in which alternative paths fan out from
//! a query node and re-converge on answer nodes. These generators produce
//! such graphs (plus trees and series-parallel graphs used by unit and
//! property tests) deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NodeId, Prob, ProbGraph, QueryGraph};

/// Parameters for [`layered_workflow`].
#[derive(Clone, Debug)]
pub struct WorkflowParams {
    /// Number of intermediate layers between source and answers.
    pub layers: usize,
    /// Nodes per intermediate layer.
    pub width: usize,
    /// Number of answer nodes.
    pub answers: usize,
    /// Probability that a node connects to any given node of the next
    /// layer (fan-out density).
    pub density: f64,
    /// Range of node presence probabilities.
    pub node_prob: (f64, f64),
    /// Range of edge presence probabilities.
    pub edge_prob: (f64, f64),
}

impl Default for WorkflowParams {
    fn default() -> Self {
        WorkflowParams {
            layers: 3,
            width: 12,
            answers: 8,
            density: 0.3,
            node_prob: (0.3, 1.0),
            edge_prob: (0.3, 1.0),
        }
    }
}

fn sample_prob(rng: &mut StdRng, range: (f64, f64)) -> Prob {
    let (lo, hi) = range;
    Prob::clamped(if lo >= hi { lo } else { rng.gen_range(lo..hi) })
}

/// Generates a layered convergent workflow query graph.
///
/// The source sits in layer 0, `layers` intermediate layers follow, and
/// the answer nodes form the final layer. Every node is guaranteed at
/// least one outgoing edge to the next layer (so all answers are
/// plausibly reachable) plus density-controlled extras, which creates the
/// converging/diverging path structure of Fig. 1.
pub fn layered_workflow(params: &WorkflowParams, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ProbGraph::new();
    let source = g.add_labeled_node(Prob::ONE, "query");
    let mut prev: Vec<NodeId> = vec![source];
    for layer in 0..params.layers {
        let mut cur = Vec::with_capacity(params.width);
        for i in 0..params.width {
            let p = sample_prob(&mut rng, params.node_prob);
            cur.push(g.add_labeled_node(p, format!("L{layer}N{i}")));
        }
        connect_layers(&mut g, &mut rng, &prev, &cur, params);
        prev = cur;
    }
    let mut answers = Vec::with_capacity(params.answers);
    for i in 0..params.answers {
        let p = sample_prob(&mut rng, params.node_prob);
        answers.push(g.add_labeled_node(p, format!("answer{i}")));
    }
    connect_layers(&mut g, &mut rng, &prev, &answers, params);
    let mut q = QueryGraph::new(g, source, answers).expect("generated graph is valid");
    q.prune();
    q
}

fn connect_layers(
    g: &mut ProbGraph,
    rng: &mut StdRng,
    from: &[NodeId],
    to: &[NodeId],
    params: &WorkflowParams,
) {
    for &u in from {
        let mut connected = false;
        for &v in to {
            if rng.gen_bool(params.density.clamp(0.0, 1.0)) {
                let q = sample_prob(rng, params.edge_prob);
                g.add_edge(u, v, q).expect("layer edge");
                connected = true;
            }
        }
        if !connected {
            let v = to[rng.gen_range(0..to.len())];
            let q = sample_prob(rng, params.edge_prob);
            g.add_edge(u, v, q).expect("fallback layer edge");
        }
    }
}

/// Generates a random rooted tree with `n` nodes (root is the source).
///
/// Trees are the graphs on which Proposition 3.1 says reliability and
/// propagation coincide; property tests lean on this generator.
pub fn random_tree(
    n: usize,
    seed: u64,
    node_prob: (f64, f64),
    edge_prob: (f64, f64),
) -> (ProbGraph, NodeId) {
    assert!(n >= 1, "tree needs at least a root");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ProbGraph::new();
    let root = g.add_labeled_node(Prob::ONE, "root");
    let mut nodes = vec![root];
    for i in 1..n {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let p = sample_prob(&mut rng, node_prob);
        let child = g.add_labeled_node(p, format!("t{i}"));
        let q = sample_prob(&mut rng, edge_prob);
        g.add_edge(parent, child, q).expect("tree edge");
        nodes.push(child);
    }
    (g, root)
}

/// Generates a random DAG on `n` nodes where each ordered pair `(i, j)`,
/// `i < j`, is an edge with probability `density`. Node 0 is returned as
/// the source.
pub fn random_dag(
    n: usize,
    density: f64,
    seed: u64,
    node_prob: (f64, f64),
    edge_prob: (f64, f64),
) -> (ProbGraph, NodeId) {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ProbGraph::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let p = if i == 0 {
            Prob::ONE
        } else {
            sample_prob(&mut rng, node_prob)
        };
        ids.push(g.add_labeled_node(p, format!("d{i}")));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                let q = sample_prob(&mut rng, edge_prob);
                g.add_edge(ids[i], ids[j], q).expect("dag edge");
            }
        }
    }
    (g, ids[0])
}

/// Generates a *divergent star* query graph: every answer hangs off the
/// source through its own private chain — "entries from different
/// databases cannot be linked together" (paper Discussion §5).
///
/// On such graphs InEdge and PathCount are useless (every answer has
/// exactly one in-edge and one path); only the strength of each chain
/// can rank. Chain `i` has `hops` edges whose probabilities are drawn
/// from `edge_prob`.
pub fn divergent_star(
    answers: usize,
    hops: usize,
    seed: u64,
    node_prob: (f64, f64),
    edge_prob: (f64, f64),
) -> QueryGraph {
    assert!(answers >= 1 && hops >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ProbGraph::new();
    let source = g.add_labeled_node(Prob::ONE, "query");
    let mut answer_ids = Vec::with_capacity(answers);
    for i in 0..answers {
        let mut prev = source;
        for h in 0..hops - 1 {
            let n = g.add_labeled_node(sample_prob(&mut rng, node_prob), format!("chain{i}hop{h}"));
            g.add_edge(prev, n, sample_prob(&mut rng, edge_prob))
                .expect("chain edge");
            prev = n;
        }
        let t = g.add_labeled_node(sample_prob(&mut rng, node_prob), format!("answer{i}"));
        g.add_edge(prev, t, sample_prob(&mut rng, edge_prob))
            .expect("final chain edge");
        answer_ids.push(t);
    }
    QueryGraph::new(g, source, answer_ids).expect("star query graph")
}

/// Builds a series-parallel graph by recursive composition, `depth`
/// levels deep. Series-parallel graphs are exactly the fully reducible
/// ones, so `closed_form` must always solve them — a property test
/// exploits this.
pub fn series_parallel(depth: usize, seed: u64) -> (ProbGraph, NodeId, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ProbGraph::new();
    let s = g.add_labeled_node(Prob::ONE, "s");
    let t = g.add_labeled_node(Prob::clamped(rng.gen_range(0.3..1.0)), "t");
    grow_sp(&mut g, &mut rng, s, t, depth);
    (g, s, t)
}

fn grow_sp(g: &mut ProbGraph, rng: &mut StdRng, u: NodeId, v: NodeId, depth: usize) {
    if depth == 0 {
        let q = Prob::clamped(rng.gen_range(0.1..1.0));
        g.add_edge(u, v, q).expect("sp edge");
        return;
    }
    if rng.gen_bool(0.5) {
        // Series: u → m → v.
        let m = g.add_node(Prob::clamped(rng.gen_range(0.3..1.0)));
        grow_sp(g, rng, u, m, depth - 1);
        grow_sp(g, rng, m, v, depth - 1);
    } else {
        // Parallel: two independent u→v compositions.
        grow_sp(g, rng, u, v, depth - 1);
        grow_sp(g, rng, u, v, depth - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, reduction, topo};

    #[test]
    fn workflow_is_a_dag_with_reachable_answers() {
        let q = layered_workflow(&WorkflowParams::default(), 7);
        assert!(topo::is_dag(q.graph()));
        assert!(!q.answers().is_empty());
        let reach = crate::reach::reachable_from(q.graph(), q.source());
        for &a in q.answers() {
            assert!(reach[a.index()], "answer {a} unreachable");
        }
    }

    #[test]
    fn workflow_is_deterministic_in_seed() {
        let a = layered_workflow(&WorkflowParams::default(), 99);
        let b = layered_workflow(&WorkflowParams::default(), 99);
        assert_eq!(a.graph().node_count(), b.graph().node_count());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let c = layered_workflow(&WorkflowParams::default(), 100);
        // Overwhelmingly likely to differ.
        assert!(
            a.graph().edge_count() != c.graph().edge_count()
                || a.graph().node_count() != c.graph().node_count()
                || {
                    let ea: Vec<_> = a
                        .graph()
                        .edges()
                        .map(|e| a.graph().edge_q(e).get())
                        .collect();
                    let ec: Vec<_> = c
                        .graph()
                        .edges()
                        .map(|e| c.graph().edge_q(e).get())
                        .collect();
                    ea != ec
                }
        );
    }

    #[test]
    fn tree_has_n_minus_one_edges_and_is_dag() {
        let (g, root) = random_tree(40, 3, (0.3, 1.0), (0.3, 1.0));
        assert_eq!(g.node_count(), 40);
        assert_eq!(g.edge_count(), 39);
        assert!(topo::is_dag(&g));
        let reach = crate::reach::reachable_from(&g, root);
        assert!(reach.iter().filter(|&&b| b).count() == 40);
    }

    #[test]
    fn random_dag_is_acyclic() {
        let (g, _) = random_dag(30, 0.2, 5, (0.3, 1.0), (0.3, 1.0));
        assert!(topo::is_dag(&g));
    }

    #[test]
    fn divergent_star_shape() {
        let q = divergent_star(6, 3, 9, (0.3, 1.0), (0.3, 1.0));
        assert_eq!(q.answers().len(), 6);
        // One private chain per answer: n = 1 + answers·hops nodes.
        assert_eq!(q.graph().node_count(), 1 + 6 * 3);
        assert_eq!(q.graph().edge_count(), 6 * 3);
        for &a in q.answers() {
            assert_eq!(q.graph().in_degree(a), 1, "single evidence path");
        }
        assert!(topo::is_dag(q.graph()));
    }

    #[test]
    fn series_parallel_always_solves_closed_form() {
        for seed in 0..20 {
            let (g, s, t) = series_parallel(4, seed);
            match reduction::closed_form(g.clone(), s, t) {
                reduction::ClosedForm::Solved(r) => {
                    assert!((0.0..=1.0).contains(&r), "r = {r}");
                    // Cross-check against factoring.
                    let rf = exact::factoring(&g, s, t, None).unwrap();
                    assert!((r - rf).abs() < 1e-9, "closed {r} vs factoring {rf}");
                }
                reduction::ClosedForm::Stuck { nodes, edges } => {
                    panic!("series-parallel stuck at {nodes} nodes / {edges} edges (seed {seed})")
                }
            }
        }
    }
}
