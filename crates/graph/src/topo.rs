//! Topological ordering, cycle detection and path counting.
//!
//! The paper's query graphs are convergent scientific-workflow DAGs
//! (Discussion §5); two of the five ranking semantics depend on that
//! structure: *PathCount* is only defined on DAGs (cycles yield infinite
//! path counts, §3.5), and *Propagation* reaches its fixpoint after
//! `longest-path` iterations on a DAG (§3.2).

use crate::{Error, NodeId, ProbGraph};

/// Returns live nodes in topological order, or [`Error::CycleDetected`].
///
/// Kahn's algorithm over the live subgraph; stable with respect to node
/// ids (lower ids dequeue first) so results are deterministic.
pub fn toposort(g: &ProbGraph) -> Result<Vec<NodeId>, Error> {
    let bound = g.node_bound();
    let mut indeg = vec![0usize; bound];
    let mut order = Vec::with_capacity(g.node_count());
    for n in g.nodes() {
        indeg[n.index()] = g.in_degree(n);
    }
    // Min-heap on ids for determinism; graphs are small enough that the
    // O(log n) per pop is irrelevant next to the ranking algorithms.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = g
        .nodes()
        .filter(|n| indeg[n.index()] == 0)
        .map(std::cmp::Reverse)
        .collect();
    while let Some(std::cmp::Reverse(n)) = ready.pop() {
        order.push(n);
        for y in g.successors(n) {
            indeg[y.index()] -= 1;
            if indeg[y.index()] == 0 {
                ready.push(std::cmp::Reverse(y));
            }
        }
    }
    if order.len() == g.node_count() {
        Ok(order)
    } else {
        Err(Error::CycleDetected)
    }
}

/// `true` when the live subgraph is acyclic.
pub fn is_dag(g: &ProbGraph) -> bool {
    toposort(g).is_ok()
}

/// Length (in edges) of the longest simple path starting at `s`.
///
/// Used to size the iteration count of the propagation/diffusion
/// fixpoints: on a DAG, propagation is exact after this many rounds.
/// Returns [`Error::CycleDetected`] on cyclic graphs.
pub fn longest_path_from(g: &ProbGraph, s: NodeId) -> Result<usize, Error> {
    let order = toposort(g)?;
    let mut dist = vec![None::<usize>; g.node_bound()];
    if g.node_alive(s) {
        dist[s.index()] = Some(0);
    }
    let mut best = 0usize;
    for &x in &order {
        let Some(dx) = dist[x.index()] else { continue };
        for y in g.successors(x) {
            let cand = dx + 1;
            if dist[y.index()].map_or(true, |d| d < cand) {
                dist[y.index()] = Some(cand);
                best = best.max(cand);
            }
        }
    }
    Ok(best)
}

/// Number of distinct directed paths from `s` to every node.
///
/// `counts[n]` is the number of `s → n` paths (`counts[s] = 1`), counted
/// with edge multiplicity — two parallel edges contribute two paths, in
/// line with the paper's PathCount semantics illustrated in Fig. 4a.
/// Saturates at `u128::MAX` instead of overflowing.
/// Returns [`Error::CycleDetected`] on cyclic graphs (infinite counts).
pub fn count_paths_from(g: &ProbGraph, s: NodeId) -> Result<Vec<u128>, Error> {
    let order = toposort(g)?;
    let mut counts = vec![0u128; g.node_bound()];
    if g.node_alive(s) {
        counts[s.index()] = 1;
    }
    for &x in &order {
        let cx = counts[x.index()];
        if cx == 0 {
            continue;
        }
        for e in g.out_edges(x) {
            let y = g.edge_dst(e);
            counts[y.index()] = counts[y.index()].saturating_add(cx);
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prob;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn diamond() -> (ProbGraph, NodeId, NodeId, NodeId, NodeId) {
        // s → a → t, s → b → t
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        g.add_edge(a, t, p(0.5)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        (g, s, a, b, t)
    }

    #[test]
    fn toposort_orders_diamond() {
        let (g, s, a, b, t) = diamond();
        let order = toposort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(s) < pos(a) && pos(s) < pos(b));
        assert!(pos(a) < pos(t) && pos(b) < pos(t));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn toposort_detects_cycle() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, a, p(0.5)).unwrap();
        assert!(matches!(toposort(&g), Err(Error::CycleDetected)));
        assert!(!is_dag(&g));
    }

    #[test]
    fn toposort_skips_dead_nodes() {
        let (mut g, _, a, _, _) = diamond();
        g.remove_node(a);
        let order = toposort(&g).unwrap();
        assert_eq!(order.len(), 3);
        assert!(!order.contains(&a));
    }

    #[test]
    fn longest_path_on_diamond_is_two() {
        let (g, s, _, _, _) = diamond();
        assert_eq!(longest_path_from(&g, s).unwrap(), 2);
    }

    #[test]
    fn longest_path_chain() {
        let mut g = ProbGraph::new();
        let mut prev = g.add_node(p(1.0));
        let s = prev;
        for _ in 0..9 {
            let n = g.add_node(p(1.0));
            g.add_edge(prev, n, p(0.5)).unwrap();
            prev = n;
        }
        assert_eq!(longest_path_from(&g, s).unwrap(), 9);
        // From the tail, nothing is ahead.
        assert_eq!(longest_path_from(&g, prev).unwrap(), 0);
    }

    #[test]
    fn count_paths_diamond() {
        let (g, s, a, b, t) = diamond();
        let counts = count_paths_from(&g, s).unwrap();
        assert_eq!(counts[s.index()], 1);
        assert_eq!(counts[a.index()], 1);
        assert_eq!(counts[b.index()], 1);
        assert_eq!(counts[t.index()], 2);
    }

    #[test]
    fn count_paths_counts_parallel_edges() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        g.add_edge(s, t, p(0.5)).unwrap();
        let counts = count_paths_from(&g, s).unwrap();
        assert_eq!(counts[t.index()], 2);
    }

    #[test]
    fn count_paths_grows_exponentially_on_ladder() {
        // k stacked diamonds: 2^k paths.
        let mut g = ProbGraph::new();
        let mut cur = g.add_node(p(1.0));
        let s = cur;
        for _ in 0..20 {
            let a = g.add_node(p(1.0));
            let b = g.add_node(p(1.0));
            let j = g.add_node(p(1.0));
            g.add_edge(cur, a, p(0.5)).unwrap();
            g.add_edge(cur, b, p(0.5)).unwrap();
            g.add_edge(a, j, p(0.5)).unwrap();
            g.add_edge(b, j, p(0.5)).unwrap();
            cur = j;
        }
        let counts = count_paths_from(&g, s).unwrap();
        assert_eq!(counts[cur.index()], 1 << 20);
    }

    #[test]
    fn count_paths_rejects_cycles() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, a, p(0.5)).unwrap();
        assert!(count_paths_from(&g, a).is_err());
    }

    #[test]
    fn count_paths_unreachable_is_zero() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let lonely = g.add_node(p(1.0));
        let counts = count_paths_from(&g, s).unwrap();
        assert_eq!(counts[lonely.index()], 0);
    }
}
