//! A validated probability value in `[0, 1]`.
//!
//! The BioRank data model (paper §2) attaches a probability to every node
//! (`p = ps · pr`) and every edge (`q = qs · qr`) of the entity graph.
//! [`Prob`] makes the `[0, 1]` invariant part of the type so the ranking
//! algorithms never have to re-validate, and centralizes the two evidence
//! combinators used throughout the paper: independent conjunction
//! ([`Prob::and`], used by the serial-path reduction) and noisy-or
//! ([`Prob::or`], used by the parallel-path reduction and the propagation
//! semantics).

use std::fmt;
use std::ops::Mul;

use serde::{Deserialize, Serialize};

use crate::Error;

/// A probability, guaranteed to be a finite `f64` in `[0, 1]`.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Prob(f64);

impl Prob {
    /// The impossible event.
    pub const ZERO: Prob = Prob(0.0);
    /// The certain event.
    pub const ONE: Prob = Prob(1.0);
    /// A fair coin.
    pub const HALF: Prob = Prob(0.5);

    /// Creates a probability, rejecting values outside `[0, 1]` and NaN.
    pub fn new(v: f64) -> Result<Self, Error> {
        if v.is_finite() && (0.0..=1.0).contains(&v) {
            Ok(Prob(v))
        } else {
            Err(Error::InvalidProbability(v))
        }
    }

    /// Creates a probability by clamping into `[0, 1]`.
    ///
    /// NaN clamps to 0. Use this for values produced by numeric
    /// transformations (e-value scaling, log-odds perturbation) where tiny
    /// excursions outside the unit interval are expected and benign.
    pub fn clamped(v: f64) -> Self {
        if v.is_nan() {
            Prob(0.0)
        } else {
            Prob(v.clamp(0.0, 1.0))
        }
    }

    /// Returns the inner value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Independent conjunction: `P(A ∧ B) = P(A)·P(B)`.
    #[inline]
    #[must_use]
    pub fn and(self, other: Prob) -> Prob {
        Prob(self.0 * other.0)
    }

    /// Noisy-or (independent disjunction): `1 − (1−a)(1−b)`.
    #[inline]
    #[must_use]
    pub fn or(self, other: Prob) -> Prob {
        // Computed in complement space for numerical stability near 1.
        Prob(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// The complement `1 − p`.
    #[inline]
    #[must_use]
    pub fn complement(self) -> Prob {
        Prob(1.0 - self.0)
    }

    /// `true` when this probability is exactly 1.
    #[inline]
    pub fn is_one(self) -> bool {
        self.0 == 1.0
    }

    /// `true` when this probability is exactly 0.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Noisy-or over an iterator of probabilities.
    ///
    /// Returns [`Prob::ZERO`] for an empty iterator (no evidence at all).
    pub fn any<I: IntoIterator<Item = Prob>>(probs: I) -> Prob {
        let mut fail_all = 1.0f64;
        for p in probs {
            fail_all *= 1.0 - p.0;
        }
        Prob(1.0 - fail_all)
    }

    /// Product over an iterator of probabilities.
    ///
    /// Returns [`Prob::ONE`] for an empty iterator.
    pub fn all<I: IntoIterator<Item = Prob>>(probs: I) -> Prob {
        let mut acc = 1.0f64;
        for p in probs {
            acc *= p.0;
        }
        Prob(acc)
    }
}

impl Mul for Prob {
    type Output = Prob;
    fn mul(self, rhs: Prob) -> Prob {
        self.and(rhs)
    }
}

impl TryFrom<f64> for Prob {
    type Error = Error;
    fn try_from(v: f64) -> Result<Self, Error> {
        Prob::new(v)
    }
}

impl From<Prob> for f64 {
    fn from(p: Prob) -> f64 {
        p.0
    }
}

impl fmt::Debug for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}", prec, self.0)
        } else {
            write!(f, "{:.4}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_unit_interval() {
        assert_eq!(Prob::new(0.0).unwrap().get(), 0.0);
        assert_eq!(Prob::new(1.0).unwrap().get(), 1.0);
        assert_eq!(Prob::new(0.37).unwrap().get(), 0.37);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Prob::new(-0.001).is_err());
        assert!(Prob::new(1.001).is_err());
        assert!(Prob::new(f64::NAN).is_err());
        assert!(Prob::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Prob::clamped(-3.0).get(), 0.0);
        assert_eq!(Prob::clamped(42.0).get(), 1.0);
        assert_eq!(Prob::clamped(f64::NAN).get(), 0.0);
        assert_eq!(Prob::clamped(0.25).get(), 0.25);
    }

    #[test]
    fn and_is_product() {
        let p = Prob::new(0.5).unwrap().and(Prob::new(0.4).unwrap());
        assert!((p.get() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn or_is_noisy_or() {
        let p = Prob::HALF.or(Prob::HALF);
        assert!((p.get() - 0.75).abs() < 1e-12);
        assert_eq!(Prob::ZERO.or(Prob::ONE).get(), 1.0);
    }

    #[test]
    fn any_and_all_handle_empty() {
        assert_eq!(Prob::any(std::iter::empty()).get(), 0.0);
        assert_eq!(Prob::all(std::iter::empty()).get(), 1.0);
    }

    #[test]
    fn any_combines_three() {
        let p = Prob::any([0.5, 0.5, 0.5].map(|v| Prob::new(v).unwrap()));
        assert!((p.get() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn display_uses_requested_precision() {
        let p = Prob::new(0.123456).unwrap();
        assert_eq!(format!("{p:.2}"), "0.12");
        assert_eq!(format!("{p}"), "0.1235");
    }

    #[test]
    fn mul_operator_matches_and() {
        let a = Prob::new(0.3).unwrap();
        let b = Prob::new(0.7).unwrap();
        assert_eq!((a * b).get(), a.and(b).get());
    }
}
