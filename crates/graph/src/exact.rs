//! Exact source–target reliability.
//!
//! Network reliability is #P-hard in general (Valiant 1979, cited in
//! §3.1), so these engines are exponential in the worst case. They exist
//! for two reasons:
//!
//! * [`enumerate`] — brute-force possible-worlds enumeration, the direct
//!   implementation of the semantics ("each subgraph of the network graph
//!   is a world", §3.1). It is the ground truth every other evaluator
//!   (Monte Carlo, reductions, factoring) is tested against. Limited to
//!   ~28 uncertain elements.
//! * [`factoring`] — reduction-accelerated conditioning on edges. On the
//!   paper's workflow-shaped query graphs the reductions do almost all of
//!   the work (Theorem 3.2), so this is fast in practice and serves as
//!   the "closed solution" evaluator `C` in Fig. 8a whenever a graph is
//!   fully reducible, with graceful fallback when it is not.

use crate::{reach, reduction, Error, NodeId, Prob, ProbGraph};

/// Maximum number of uncertain elements [`enumerate`] accepts.
pub const MAX_ENUMERATED_ELEMENTS: usize = 28;

/// Exact reliability by enumerating all possible worlds.
///
/// An element (node or edge) is *uncertain* when its probability is
/// strictly between 0 and 1; certain elements are folded out of the
/// enumeration. Returns [`Error::TooLarge`] when more than
/// [`MAX_ENUMERATED_ELEMENTS`] uncertain elements remain.
pub fn enumerate(g: &ProbGraph, source: NodeId, target: NodeId) -> Result<f64, Error> {
    if !g.node_alive(source) {
        return Err(Error::NoSuchNode(source));
    }
    if !g.node_alive(target) {
        return Err(Error::NoSuchNode(target));
    }
    // Collect uncertain elements. Zero-probability elements are treated
    // as absent outright.
    let mut var_nodes = Vec::new();
    let mut var_edges = Vec::new();
    for n in g.nodes() {
        let p = g.node_p(n).get();
        if p > 0.0 && p < 1.0 {
            var_nodes.push(n);
        }
    }
    for e in g.edges() {
        let q = g.edge_q(e).get();
        if q > 0.0 && q < 1.0 {
            var_edges.push(e);
        }
    }
    let k = var_nodes.len() + var_edges.len();
    if k > MAX_ENUMERATED_ELEMENTS {
        return Err(Error::TooLarge {
            elements: k,
            limit: MAX_ENUMERATED_ELEMENTS,
        });
    }

    let bound = g.node_bound();
    let mut node_on = vec![false; bound];
    let mut edge_on = vec![false; g.edge_bound()];
    for n in g.nodes() {
        node_on[n.index()] = g.node_p(n).is_one();
    }
    for e in g.edges() {
        edge_on[e.index()] = g.edge_q(e).is_one();
    }

    let mut total = 0.0f64;
    let worlds = 1u64 << k;
    let mut stack = Vec::with_capacity(bound);
    let mut seen = vec![false; bound];
    for world in 0..worlds {
        let mut weight = 1.0f64;
        for (bit, &n) in var_nodes.iter().enumerate() {
            let on = world & (1 << bit) != 0;
            let p = g.node_p(n).get();
            node_on[n.index()] = on;
            weight *= if on { p } else { 1.0 - p };
        }
        for (bit, &e) in var_edges.iter().enumerate() {
            let on = world & (1 << (bit + var_nodes.len())) != 0;
            let q = g.edge_q(e).get();
            edge_on[e.index()] = on;
            weight *= if on { q } else { 1.0 - q };
        }
        if weight == 0.0 {
            continue;
        }
        if world_connects(g, source, target, &node_on, &edge_on, &mut stack, &mut seen) {
            total += weight;
        }
    }
    Ok(total)
}

/// DFS in one sampled world: is `target` reachable from `source` through
/// present nodes/edges, with both endpoints present?
fn world_connects(
    g: &ProbGraph,
    source: NodeId,
    target: NodeId,
    node_on: &[bool],
    edge_on: &[bool],
    stack: &mut Vec<NodeId>,
    seen: &mut [bool],
) -> bool {
    seen.fill(false);
    if !node_on[source.index()] || !node_on[target.index()] {
        return false;
    }
    if source == target {
        return true;
    }
    stack.clear();
    stack.push(source);
    seen[source.index()] = true;
    while let Some(x) = stack.pop() {
        for e in g.out_edges(x) {
            if !edge_on[e.index()] {
                continue;
            }
            let y = g.edge_dst(e);
            if !node_on[y.index()] || seen[y.index()] {
                continue;
            }
            if y == target {
                return true;
            }
            seen[y.index()] = true;
            stack.push(y);
        }
    }
    false
}

/// Exact reliability by reductions + edge factoring.
///
/// Algorithm: prune to the relevant subgraph, run the reduction rules,
/// and if the graph is not yet trivial, pick an uncertain out-edge of the
/// source and condition on it:
/// `R = q·R(G | e present) + (1−q)·R(G − e)`.
/// Conditioning an edge `(s, w)` present merges `w` into `s` (directed
/// contraction is sound only at the source, which is always reached).
/// Node probabilities are removed up front by [`reify`].
///
/// `budget` caps the number of factoring branches; `None` means the
/// default of 1 << 22. Returns [`Error::TooLarge`] when exceeded.
pub fn factoring(
    g: &ProbGraph,
    source: NodeId,
    target: NodeId,
    budget: Option<u64>,
) -> Result<f64, Error> {
    if !g.node_alive(source) {
        return Err(Error::NoSuchNode(source));
    }
    if !g.node_alive(target) {
        return Err(Error::NoSuchNode(target));
    }
    if source == target {
        return Ok(g.node_p(source).get());
    }
    let reified = reify(g, &[source, target]);
    let mut budget = budget.unwrap_or(1 << 22);
    // In the reified graph the answer is "out(target) reachable from
    // in(source)"; in(source) presence encodes p(source).
    let (rs, rt) = (reified.input(source), reified.output(target));
    factor_rec(reified.graph, rs, rt, &mut budget)
}

fn factor_rec(
    mut g: ProbGraph,
    source: NodeId,
    target: NodeId,
    budget: &mut u64,
) -> Result<f64, Error> {
    if *budget == 0 {
        return Err(Error::TooLarge {
            elements: usize::MAX,
            limit: 0,
        });
    }
    *budget -= 1;

    reach::prune_to_relevant(&mut g, source, &[target]);
    if !g.node_alive(target) {
        return Ok(0.0);
    }
    match reduction::closed_form_in_place(&mut g, source, target) {
        Some(r) => return Ok(r),
        None => { /* stuck: factor */ }
    }
    // Choose an out-edge of the source to condition on. After reduction
    // the source has ≥ 2 out-edges here (otherwise serial collapse or the
    // trivial case would have fired).
    let e = g
        .out_edges(source)
        .next()
        .expect("reduced non-trivial graph has source out-edges");
    let (_, w, q) = g.edge(e);
    let q = q.get();

    // Branch 1: edge absent.
    let mut g_absent = g.clone();
    g_absent.remove_edge(e);
    let r_absent = if q < 1.0 {
        factor_rec(g_absent, source, target, budget)?
    } else {
        0.0
    };

    // Branch 2: edge present — contract w into source.
    let r_present = if q > 0.0 {
        if w == target {
            // Target reached with certainty in this branch (reified
            // target carries no node probability).
            1.0
        } else {
            contract_into_source(&mut g, source, w);
            factor_rec(g, source, target, budget)?
        }
    } else {
        0.0
    };

    Ok(q * r_present + (1.0 - q) * r_absent)
}

/// Merges node `w` into `source`: `w`'s out-edges are re-sourced at
/// `source`; edges into `w` are dropped (irrelevant once `w` is certainly
/// reached); `w` is removed.
fn contract_into_source(g: &mut ProbGraph, source: NodeId, w: NodeId) {
    debug_assert!(g.node_p(w).is_one(), "contract requires reified nodes");
    let outs: Vec<(NodeId, Prob)> = g
        .out_edges(w)
        .map(|e| (g.edge_dst(e), g.edge_q(e)))
        .collect();
    g.remove_node(w);
    for (dst, q) in outs {
        if dst != source {
            g.add_edge(source, dst, q)
                .expect("contraction endpoints are live");
        }
    }
}

/// A reified copy of a graph: every node `x` with `p(x) < 1` is split
/// into `in(x) → out(x)` with edge probability `p(x)`, making all node
/// probabilities 1 (the standard reduction of node failures to the edge
/// version of the reliability problem, paper §3.1).
pub struct Reified {
    /// The reified graph (all node probabilities are 1).
    pub graph: ProbGraph,
    input_of: Vec<NodeId>,
    output_of: Vec<NodeId>,
}

impl Reified {
    /// The in-node of original node `n` (edges into `n` land here).
    pub fn input(&self, n: NodeId) -> NodeId {
        self.input_of[n.index()]
    }

    /// The out-node of original node `n` (edges out of `n` leave here;
    /// `n` is "present and reached" iff this node is reached).
    pub fn output(&self, n: NodeId) -> NodeId {
        self.output_of[n.index()]
    }
}

/// Reifies node probabilities into edges. Nodes listed in `split_even_if_certain`
/// are split regardless of their probability so callers can rely on
/// having distinct in/out handles for them.
pub fn reify(g: &ProbGraph, split_even_if_certain: &[NodeId]) -> Reified {
    let bound = g.node_bound();
    let mut out_graph =
        ProbGraph::with_capacity(g.node_count() * 2, g.edge_count() + g.node_count());
    let sentinel = NodeId::from_index(0);
    let mut input_of = vec![sentinel; bound];
    let mut output_of = vec![sentinel; bound];
    let force: Vec<bool> = {
        let mut f = vec![false; bound];
        for &n in split_even_if_certain {
            f[n.index()] = true;
        }
        f
    };
    for n in g.nodes() {
        let p = g.node_p(n);
        let label = g.node_label(n).to_string();
        if p.is_one() && !force[n.index()] {
            let v = out_graph.add_labeled_node(Prob::ONE, label);
            input_of[n.index()] = v;
            output_of[n.index()] = v;
        } else {
            let vin = out_graph.add_labeled_node(Prob::ONE, format!("{label}#in"));
            let vout = out_graph.add_labeled_node(Prob::ONE, format!("{label}#out"));
            out_graph
                .add_edge(vin, vout, p)
                .expect("reified split edge");
            input_of[n.index()] = vin;
            output_of[n.index()] = vout;
        }
    }
    for e in g.edges() {
        let (u, v, q) = g.edge(e);
        out_graph
            .add_edge(output_of[u.index()], input_of[v.index()], q)
            .expect("reified edge endpoints exist");
    }
    Reified {
        graph: out_graph,
        input_of,
        output_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    #[test]
    fn single_edge_reliability() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(0.5));
        g.add_edge(s, t, p(0.8)).unwrap();
        let r = enumerate(&g, s, t).unwrap();
        assert!((r - 0.4).abs() < 1e-12);
        let rf = factoring(&g, s, t, None).unwrap();
        assert!((rf - 0.4).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_is_zero() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        assert_eq!(enumerate(&g, s, t).unwrap(), 0.0);
        assert_eq!(factoring(&g, s, t, None).unwrap(), 0.0);
    }

    #[test]
    fn source_equals_target() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(0.3));
        assert!((enumerate(&g, s, s).unwrap() - 0.3).abs() < 1e-12);
        assert!((factoring(&g, s, s, None).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fig4a_serial_parallel_graph() {
        // Fig 4a: s →(0.5) u' then two parallel certain 2-hop paths to u.
        // Reliability = 0.5 (shared first edge dominates).
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let u = g.add_node(p(1.0));
        g.add_edge(s, m, p(0.5)).unwrap();
        g.add_edge(m, a, p(1.0)).unwrap();
        g.add_edge(m, b, p(1.0)).unwrap();
        g.add_edge(a, u, p(1.0)).unwrap();
        g.add_edge(b, u, p(1.0)).unwrap();
        let r = enumerate(&g, s, u).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
        let rf = factoring(&g, s, u, None).unwrap();
        assert!((rf - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wheatstone_bridge_exact_value() {
        // All-0.5 directed Wheatstone bridge (Fig. 4b / Fig. 2c).
        // Known value: paper reports reliability 0.469 for Fig 4b's
        // bridge with q=0.5 everywhere... computed here independently by
        // both engines; they must agree to 1e-12.
        let (g, s, t) = reduction::wheatstone(p(0.5));
        let r1 = enumerate(&g, s, t).unwrap();
        let r2 = factoring(&g, s, t, None).unwrap();
        assert!((r1 - r2).abs() < 1e-12, "enumerate {r1} vs factoring {r2}");
        // Directed bridge, five 0.5 edges:
        // paths s→a→t, s→b→t, s→a→b→t. Exact by conditioning on (a,b):
        // present: (s→a)(a→t or b→t reached via a→b? careful) — rely on
        // the enumeration value instead; just sanity-bound it.
        assert!(r1 > 0.40 && r1 < 0.55, "bridge reliability {r1}");
        // Paper Fig. 4b reports 0.469 for this topology.
        assert!((r1 - 0.46875).abs() < 1e-9);
    }

    #[test]
    fn node_failures_reduce_reliability() {
        // Diamond with flaky middle nodes.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.5));
        let b = g.add_node(p(0.5));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(1.0)).unwrap();
        g.add_edge(s, b, p(1.0)).unwrap();
        g.add_edge(a, t, p(1.0)).unwrap();
        g.add_edge(b, t, p(1.0)).unwrap();
        // P(at least one of a,b alive) = 0.75.
        let r = enumerate(&g, s, t).unwrap();
        assert!((r - 0.75).abs() < 1e-12);
        let rf = factoring(&g, s, t, None).unwrap();
        assert!((rf - 0.75).abs() < 1e-12);
    }

    #[test]
    fn enumerate_rejects_oversized_graphs() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let mut prev = s;
        for _ in 0..40 {
            let n = g.add_node(p(0.5));
            g.add_edge(prev, n, p(0.5)).unwrap();
            prev = n;
        }
        g.add_edge(prev, t, p(0.5)).unwrap();
        assert!(matches!(enumerate(&g, s, t), Err(Error::TooLarge { .. })));
        // Factoring handles it fine (chain reduces to one edge).
        let r = factoring(&g, s, t, None).unwrap();
        assert!(r > 0.0 && r < 1e-9, "0.5^41 ≈ 4.5e-13, got {r}");
    }

    #[test]
    fn reify_splits_uncertain_nodes_only() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(0.5));
        g.add_edge(a, b, p(0.7)).unwrap();
        let r = reify(&g, &[]);
        assert_eq!(r.graph.node_count(), 3); // a, b_in, b_out
        assert_eq!(r.graph.edge_count(), 2);
        assert_eq!(r.input(a), r.output(a));
        assert_ne!(r.input(b), r.output(b));
        for n in r.graph.nodes() {
            assert!(r.graph.node_p(n).is_one());
        }
    }

    #[test]
    fn reify_preserves_reliability() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.6));
        let b = g.add_node(p(0.7));
        let t = g.add_node(p(0.8));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        g.add_edge(a, t, p(0.5)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        let direct = enumerate(&g, s, t).unwrap();
        let re = reify(&g, &[s, t]);
        let via_reified = enumerate(&re.graph, re.input(s), re.output(t)).unwrap();
        assert!(
            (direct - via_reified).abs() < 1e-12,
            "direct {direct} vs reified {via_reified}"
        );
    }
}
