//! The probabilistic entity graph (paper Definition 2.1).
//!
//! `G = (N, E, p, q)` — a labeled directed multigraph where every node
//! carries a presence probability `p : N → [0,1]` and every edge a presence
//! probability `q : E → [0,1]`.
//!
//! The store is arena-style: nodes and edges live in `Vec`s addressed by
//! dense ids, and removal tombstones the slot (keeping all other ids
//! stable) instead of shifting. The graph-reduction engine
//! ([`crate::reduction`]) relies on this: it deletes thousands of elements
//! while holding ids to others. Use [`ProbGraph::compact`] to rebuild a
//! dense graph after heavy reduction.

use serde::{Deserialize, Serialize};

use crate::{EdgeId, Error, NodeId, Prob};

#[derive(Clone, Debug, Serialize, Deserialize)]
struct NodeData {
    p: Prob,
    alive: bool,
    label: Box<str>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct EdgeData {
    src: NodeId,
    dst: NodeId,
    q: Prob,
    alive: bool,
}

/// A directed multigraph with node and edge presence probabilities.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProbGraph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    /// Outgoing edge ids per node slot (alive edges only).
    out: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node slot (alive edges only).
    inn: Vec<Vec<EdgeId>>,
    alive_nodes: usize,
    alive_edges: usize,
}

impl ProbGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity for `n` nodes and `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        ProbGraph {
            nodes: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
            out: Vec::with_capacity(n),
            inn: Vec::with_capacity(n),
            alive_nodes: 0,
            alive_edges: 0,
        }
    }

    /// Adds a node with presence probability `p`; returns its id.
    pub fn add_node(&mut self, p: Prob) -> NodeId {
        self.add_labeled_node(p, "")
    }

    /// Adds a node with a human-readable label (entity key, GO term, ...).
    pub fn add_labeled_node(&mut self, p: Prob, label: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            p,
            alive: true,
            label: label.into().into_boxed_str(),
        });
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.alive_nodes += 1;
        id
    }

    /// Adds a directed edge `src → dst` with presence probability `q`.
    ///
    /// Parallel edges are allowed (the parallel-path reduction merges
    /// them); self-loops are rejected because they can never contribute to
    /// source–target connectivity.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, q: Prob) -> Result<EdgeId, Error> {
        if !self.node_alive(src) {
            return Err(Error::NoSuchNode(src));
        }
        if !self.node_alive(dst) {
            return Err(Error::NoSuchNode(dst));
        }
        if src == dst {
            return Err(Error::SelfLoop(src));
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeData {
            src,
            dst,
            q,
            alive: true,
        });
        self.out[src.index()].push(id);
        self.inn[dst.index()].push(id);
        self.alive_edges += 1;
        Ok(id)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.alive_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.alive_edges
    }

    /// Upper bound (exclusive) on node indices ever allocated.
    ///
    /// Side tables indexed by [`NodeId::index`] should be sized with this,
    /// not with [`ProbGraph::node_count`].
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound (exclusive) on edge indices ever allocated.
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// `true` when `n` refers to a live node.
    pub fn node_alive(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|d| d.alive)
    }

    /// `true` when `e` refers to a live edge.
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|d| d.alive)
    }

    /// Presence probability of node `n`.
    ///
    /// # Panics
    /// Panics if `n` is dead or out of bounds.
    pub fn node_p(&self, n: NodeId) -> Prob {
        let d = &self.nodes[n.index()];
        assert!(d.alive, "access to dead node {n}");
        d.p
    }

    /// Sets the presence probability of node `n`.
    pub fn set_node_p(&mut self, n: NodeId, p: Prob) {
        let d = &mut self.nodes[n.index()];
        assert!(d.alive, "access to dead node {n}");
        d.p = p;
    }

    /// Label of node `n` (empty string when unlabeled).
    pub fn node_label(&self, n: NodeId) -> &str {
        &self.nodes[n.index()].label
    }

    /// Presence probability of edge `e`.
    pub fn edge_q(&self, e: EdgeId) -> Prob {
        let d = &self.edges[e.index()];
        assert!(d.alive, "access to dead edge {e}");
        d.q
    }

    /// Sets the presence probability of edge `e`.
    pub fn set_edge_q(&mut self, e: EdgeId, q: Prob) {
        let d = &mut self.edges[e.index()];
        assert!(d.alive, "access to dead edge {e}");
        d.q = q;
    }

    /// Source node of edge `e`.
    pub fn edge_src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of edge `e`.
    pub fn edge_dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// `(src, dst, q)` of edge `e`.
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, Prob) {
        let d = &self.edges[e.index()];
        assert!(d.alive, "access to dead edge {e}");
        (d.src, d.dst, d.q)
    }

    /// Iterates over live node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Iterates over live edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .map(|(i, _)| EdgeId::from_index(i))
    }

    /// Outgoing live edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out[n.index()].iter().copied()
    }

    /// Incoming live edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.inn[n.index()].iter().copied()
    }

    /// Out-degree of `n` (live edges only).
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out[n.index()].len()
    }

    /// In-degree of `n` (live edges only).
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.inn[n.index()].len()
    }

    /// Successor nodes of `n` (with multiplicity for parallel edges).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(|e| self.edge_dst(e))
    }

    /// Predecessor nodes of `n` (with multiplicity for parallel edges).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(|e| self.edge_src(e))
    }

    /// Removes edge `e` (tombstone). Idempotent.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let Some(d) = self.edges.get_mut(e.index()) else {
            return;
        };
        if !d.alive {
            return;
        }
        d.alive = false;
        let (src, dst) = (d.src, d.dst);
        self.out[src.index()].retain(|&x| x != e);
        self.inn[dst.index()].retain(|&x| x != e);
        self.alive_edges -= 1;
    }

    /// Removes node `n` and all incident edges (tombstone). Idempotent.
    pub fn remove_node(&mut self, n: NodeId) {
        if !self.node_alive(n) {
            return;
        }
        let incident: Vec<EdgeId> = self.out_edges(n).chain(self.in_edges(n)).collect();
        for e in incident {
            self.remove_edge(e);
        }
        self.nodes[n.index()].alive = false;
        self.alive_nodes -= 1;
    }

    /// Applies `f` to every live node probability.
    pub fn map_node_probs(&mut self, mut f: impl FnMut(NodeId, Prob) -> Prob) {
        for i in 0..self.nodes.len() {
            if self.nodes[i].alive {
                let id = NodeId::from_index(i);
                self.nodes[i].p = f(id, self.nodes[i].p);
            }
        }
    }

    /// Applies `f` to every live edge probability.
    pub fn map_edge_probs(&mut self, mut f: impl FnMut(EdgeId, Prob) -> Prob) {
        for i in 0..self.edges.len() {
            if self.edges[i].alive {
                let id = EdgeId::from_index(i);
                self.edges[i].q = f(id, self.edges[i].q);
            }
        }
    }

    /// Rebuilds a dense copy of the live subgraph.
    ///
    /// Returns the new graph and the old→new node id mapping (dead slots
    /// map to `None`).
    pub fn compact(&self) -> (ProbGraph, Vec<Option<NodeId>>) {
        let mut g = ProbGraph::with_capacity(self.alive_nodes, self.alive_edges);
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for (i, d) in self.nodes.iter().enumerate() {
            if d.alive {
                remap[i] = Some(g.add_labeled_node(d.p, d.label.to_string()));
            }
        }
        for d in &self.edges {
            if d.alive {
                let s = remap[d.src.index()].expect("live edge with dead src");
                let t = remap[d.dst.index()].expect("live edge with dead dst");
                g.add_edge(s, t, d.q)
                    .expect("compacted edge endpoints must be live");
            }
        }
        (g, remap)
    }

    /// Asserts internal invariants; used by tests and `debug_assert!` call
    /// sites in the reduction engine.
    pub fn check_invariants(&self) {
        let mut live_edges = 0usize;
        for (i, d) in self.edges.iter().enumerate() {
            if !d.alive {
                continue;
            }
            live_edges += 1;
            let e = EdgeId::from_index(i);
            assert!(self.nodes[d.src.index()].alive, "edge {e} has dead src");
            assert!(self.nodes[d.dst.index()].alive, "edge {e} has dead dst");
            assert!(
                self.out[d.src.index()].contains(&e),
                "edge {e} missing from out-adjacency"
            );
            assert!(
                self.inn[d.dst.index()].contains(&e),
                "edge {e} missing from in-adjacency"
            );
        }
        assert_eq!(live_edges, self.alive_edges, "edge count drift");
        let live_nodes = self.nodes.iter().filter(|d| d.alive).count();
        assert_eq!(live_nodes, self.alive_nodes, "node count drift");
        for (i, adj) in self.out.iter().enumerate() {
            for &e in adj {
                assert!(self.edges[e.index()].alive, "dead edge in out[{i}]");
                assert_eq!(self.edges[e.index()].src.index(), i);
            }
        }
        for (i, adj) in self.inn.iter().enumerate() {
            for &e in adj {
                assert!(self.edges[e.index()].alive, "dead edge in inn[{i}]");
                assert_eq!(self.edges[e.index()].dst.index(), i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    #[test]
    fn empty_graph_has_no_elements() {
        let g = ProbGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn add_node_and_edge_roundtrip() {
        let mut g = ProbGraph::new();
        let a = g.add_labeled_node(p(0.9), "ABCC8");
        let b = g.add_node(p(0.5));
        let e = g.add_edge(a, b, p(0.7)).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_p(a).get(), 0.9);
        assert_eq!(g.node_label(a), "ABCC8");
        assert_eq!(g.edge(e), (a, b, p(0.7)));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 1);
        g.check_invariants();
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        assert!(matches!(g.add_edge(a, a, p(0.5)), Err(Error::SelfLoop(_))));
    }

    #[test]
    fn dangling_edges_are_rejected() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let ghost = NodeId::from_index(99);
        assert!(matches!(
            g.add_edge(a, ghost, p(0.5)),
            Err(Error::NoSuchNode(_))
        ));
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.3)).unwrap();
        g.add_edge(a, b, p(0.4)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 2);
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let e = g.add_edge(a, b, p(0.3)).unwrap();
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.in_degree(b), 0);
        assert!(!g.edge_alive(e));
        // idempotent
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 0);
        g.check_invariants();
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let c = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.3)).unwrap();
        g.add_edge(b, c, p(0.3)).unwrap();
        g.add_edge(a, c, p(0.3)).unwrap();
        g.remove_node(b);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.node_alive(a) && g.node_alive(c));
        g.check_invariants();
    }

    #[test]
    fn ids_stay_stable_across_removal() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(0.1));
        let b = g.add_node(p(0.2));
        let c = g.add_node(p(0.3));
        g.remove_node(b);
        assert_eq!(g.node_p(a).get(), 0.1);
        assert_eq!(g.node_p(c).get(), 0.3);
        let d = g.add_node(p(0.4));
        assert_eq!(d.index(), 3, "tombstoned slots are not reused");
    }

    #[test]
    fn compact_preserves_structure_and_probs() {
        let mut g = ProbGraph::new();
        let a = g.add_labeled_node(p(1.0), "s");
        let b = g.add_node(p(0.5));
        let c = g.add_labeled_node(p(0.9), "t");
        g.add_edge(a, b, p(0.7)).unwrap();
        g.add_edge(b, c, p(0.6)).unwrap();
        g.add_edge(a, c, p(0.2)).unwrap();
        g.remove_node(b);
        let (h, remap) = g.compact();
        assert_eq!(h.node_count(), 2);
        assert_eq!(h.edge_count(), 1);
        let na = remap[a.index()].unwrap();
        let nc = remap[c.index()].unwrap();
        assert!(remap[b.index()].is_none());
        assert_eq!(h.node_label(na), "s");
        assert_eq!(h.node_label(nc), "t");
        let e = h.edges().next().unwrap();
        assert_eq!(h.edge(e), (na, nc, p(0.2)));
        h.check_invariants();
    }

    #[test]
    fn map_probs_visits_only_live_elements() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(0.5));
        let b = g.add_node(p(0.5));
        let c = g.add_node(p(0.5));
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, c, p(0.5)).unwrap();
        g.remove_node(c);
        let mut nodes_seen = 0;
        g.map_node_probs(|_, pr| {
            nodes_seen += 1;
            Prob::clamped(pr.get() * 2.0)
        });
        assert_eq!(nodes_seen, 2);
        assert_eq!(g.node_p(a).get(), 1.0);
        let mut edges_seen = 0;
        g.map_edge_probs(|_, q| {
            edges_seen += 1;
            q
        });
        assert_eq!(edges_seen, 1);
    }

    #[test]
    fn successors_and_predecessors() {
        let mut g = ProbGraph::new();
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let c = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(a, c, p(0.5)).unwrap();
        g.add_edge(b, c, p(0.5)).unwrap();
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<_> = g.predecessors(c).collect();
        assert_eq!(pred, vec![a, b]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut g = ProbGraph::new();
        let a = g.add_labeled_node(p(0.9), "x");
        let b = g.add_node(p(0.4));
        g.add_edge(a, b, p(0.25)).unwrap();
        // serde is wired up mainly so downstream crates can snapshot
        // worlds; check it via the bincode-free serde_test-less route of
        // cloning through Debug equality on a compact round trip.
        let (h, _) = g.compact();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
    }
}
