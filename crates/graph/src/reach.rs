//! Reachability utilities over [`ProbGraph`].
//!
//! Exploratory queries (paper Definition 2.2) retrieve everything
//! reachable from the query node; the ranking algorithms then operate on
//! the *relevant* subgraph — nodes that lie on at least one path from the
//! source to some answer node. This module provides forward/backward
//! closures and the relevant-subgraph extraction.

use crate::{NodeId, ProbGraph};

/// Nodes reachable from `s` (including `s`), as a dense bitmap indexed by
/// [`NodeId::index`].
pub fn reachable_from(g: &ProbGraph, s: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_bound()];
    if !g.node_alive(s) {
        return seen;
    }
    let mut stack = vec![s];
    seen[s.index()] = true;
    while let Some(x) = stack.pop() {
        for y in g.successors(x) {
            if !seen[y.index()] {
                seen[y.index()] = true;
                stack.push(y);
            }
        }
    }
    seen
}

/// Nodes from which some node in `targets` is reachable (including the
/// targets themselves), as a dense bitmap.
pub fn coreachable(g: &ProbGraph, targets: &[NodeId]) -> Vec<bool> {
    let mut seen = vec![false; g.node_bound()];
    let mut stack = Vec::with_capacity(targets.len());
    for &t in targets {
        if g.node_alive(t) && !seen[t.index()] {
            seen[t.index()] = true;
            stack.push(t);
        }
    }
    while let Some(x) = stack.pop() {
        for y in g.predecessors(x) {
            if !seen[y.index()] {
                seen[y.index()] = true;
                stack.push(y);
            }
        }
    }
    seen
}

/// `true` when a directed path `s → t` exists (ignoring probabilities).
pub fn has_path(g: &ProbGraph, s: NodeId, t: NodeId) -> bool {
    if s == t {
        return g.node_alive(s);
    }
    reachable_from(g, s)
        .get(t.index())
        .copied()
        .unwrap_or(false)
}

/// Removes every node that is not on some `s → target` path.
///
/// A node is *relevant* iff it is reachable from `s` **and** co-reaches at
/// least one target. The source and reachable targets are always kept.
/// Returns the number of removed nodes.
pub fn prune_to_relevant(g: &mut ProbGraph, s: NodeId, targets: &[NodeId]) -> usize {
    let fwd = reachable_from(g, s);
    let mut keep_targets: Vec<NodeId> = targets
        .iter()
        .copied()
        .filter(|t| fwd.get(t.index()).copied().unwrap_or(false))
        .collect();
    keep_targets.sort_unstable();
    keep_targets.dedup();
    let bwd = coreachable(g, &keep_targets);
    let doomed: Vec<NodeId> = g
        .nodes()
        .filter(|n| *n != s && !(fwd[n.index()] && bwd[n.index()]))
        .collect();
    let removed = doomed.len();
    for n in doomed {
        g.remove_node(n);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prob;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// s → a → t, plus stranded node `x` and dead-end branch a → d.
    fn diamond_with_junk() -> (ProbGraph, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.5));
        let t = g.add_node(p(0.5));
        let d = g.add_node(p(0.5)); // reachable, does not co-reach t
        let x = g.add_node(p(0.5)); // completely stranded
        g.add_edge(s, a, p(0.9)).unwrap();
        g.add_edge(a, t, p(0.9)).unwrap();
        g.add_edge(a, d, p(0.9)).unwrap();
        (g, s, a, t, d, x)
    }

    #[test]
    fn reachable_from_explores_forward_only() {
        let (g, s, a, t, d, x) = diamond_with_junk();
        let r = reachable_from(&g, s);
        assert!(r[s.index()] && r[a.index()] && r[t.index()] && r[d.index()]);
        assert!(!r[x.index()]);
        let r2 = reachable_from(&g, t);
        assert!(r2[t.index()] && !r2[s.index()]);
    }

    #[test]
    fn coreachable_explores_backward() {
        let (g, s, a, t, d, x) = diamond_with_junk();
        let c = coreachable(&g, &[t]);
        assert!(c[t.index()] && c[a.index()] && c[s.index()]);
        assert!(!c[d.index()] && !c[x.index()]);
    }

    #[test]
    fn has_path_basic() {
        let (g, s, _, t, _, x) = diamond_with_junk();
        assert!(has_path(&g, s, t));
        assert!(!has_path(&g, t, s));
        assert!(!has_path(&g, s, x));
        assert!(has_path(&g, s, s));
    }

    #[test]
    fn prune_keeps_only_st_paths() {
        let (mut g, s, a, t, d, x) = diamond_with_junk();
        let removed = prune_to_relevant(&mut g, s, &[t]);
        assert_eq!(removed, 2);
        assert!(g.node_alive(s) && g.node_alive(a) && g.node_alive(t));
        assert!(!g.node_alive(d) && !g.node_alive(x));
        g.check_invariants();
    }

    #[test]
    fn prune_with_unreachable_target_empties_graph() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0)); // no edge s → t
        let removed = prune_to_relevant(&mut g, s, &[t]);
        assert_eq!(removed, 1);
        assert!(g.node_alive(s));
        assert!(!g.node_alive(t));
    }

    #[test]
    fn prune_with_multiple_targets_keeps_union() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.5));
        let t1 = g.add_node(p(0.5));
        let t2 = g.add_node(p(0.5));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(a, t1, p(0.5)).unwrap();
        g.add_edge(s, t2, p(0.5)).unwrap();
        let removed = prune_to_relevant(&mut g, s, &[t1, t2]);
        assert_eq!(removed, 0);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn reachability_respects_removed_edges() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let e = g.add_edge(s, t, p(0.5)).unwrap();
        assert!(has_path(&g, s, t));
        g.remove_edge(e);
        assert!(!has_path(&g, s, t));
    }
}
