//! Typed identifiers for graph elements.
//!
//! Nodes and edges are addressed by dense `u32` indices wrapped in newtypes
//! so that the two id spaces cannot be confused. Ids are stable for the
//! lifetime of a [`crate::ProbGraph`]: removing an element tombstones its
//! slot rather than shifting later ids.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`crate::ProbGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge in a [`crate::ProbGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node.
    ///
    /// Useful for indexing side tables sized with
    /// [`crate::ProbGraph::node_bound`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw index.
    ///
    /// The caller is responsible for the index being in bounds for the
    /// graph it is used with; out-of-bounds ids cause accessor panics.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl EdgeId {
    /// Returns the raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an `EdgeId` from a raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(format!("{n}"), "n42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e}"), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
