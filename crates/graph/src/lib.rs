//! # biorank-graph
//!
//! Probabilistic entity and query graphs — the data-model substrate of
//! the BioRank reproduction ("Integrating and Ranking Uncertain
//! Scientific Data", Detwiler et al., ICDE 2009).
//!
//! The paper represents integrated scientific data as a *probabilistic
//! entity graph* `G = (N, E, p, q)` (Definition 2.1): records become
//! nodes with presence probability `p(i) = ps(i)·pr(i)`, relationships
//! become edges with `q(i,j) = qs(i,j)·qr(i,j)`. An exploratory query
//! turns this into a *probabilistic query graph* (Definition 2.3) with a
//! query node `s` and an answer set `A`.
//!
//! This crate provides:
//!
//! * [`ProbGraph`] / [`QueryGraph`] — tombstoning arena graph store with
//!   per-node/per-edge probabilities.
//! * [`reach`] — reachability closures and relevant-subgraph pruning.
//! * [`topo`] — toposort, longest paths, and s→t path counting (the
//!   backbone of the PathCount ranking semantics).
//! * [`reduction`] — the three reliability-preserving rewrite rules of
//!   §3.1(2) and the closed-form evaluator of §3.1(3).
//! * [`csr`] — frozen compressed-sparse-row snapshots: the flat,
//!   cache-friendly counterpart of the arena store that the
//!   word-parallel Monte Carlo engine streams over.
//! * [`exact`] — ground-truth reliability via world enumeration, plus a
//!   reduction-accelerated factoring evaluator.
//! * [`generate`] — seeded workflow/tree/DAG/series-parallel generators.
//!
//! ```
//! use biorank_graph::{exact, reduction, Prob, ProbGraph};
//!
//! // A diamond: two 0.25-probability paths from s to t.
//! let mut g = ProbGraph::new();
//! let s = g.add_node(Prob::ONE);
//! let a = g.add_node(Prob::ONE);
//! let b = g.add_node(Prob::ONE);
//! let t = g.add_node(Prob::ONE);
//! for (u, v) in [(s, a), (s, b), (a, t), (b, t)] {
//!     g.add_edge(u, v, Prob::HALF).unwrap();
//! }
//! // Exact source–target reliability: 1 − (1 − 0.25)² = 0.4375.
//! let r = exact::enumerate(&g, s, t).unwrap();
//! assert!((r - 0.4375).abs() < 1e-12);
//! // The reduction rules solve the same value in closed form.
//! assert_eq!(
//!     reduction::closed_form(g, s, t),
//!     reduction::ClosedForm::Solved(r)
//! );
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod graph;
mod ids;
mod prob;
mod query;

pub mod csr;
pub mod exact;
pub mod generate;
pub mod reach;
pub mod reduction;
pub mod topo;

pub use graph::ProbGraph;
pub use ids::{EdgeId, NodeId};
pub use prob::Prob;
pub use query::{QueryGraph, SingleTarget};

use std::fmt;

/// Errors produced by graph construction and the exact evaluators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A probability value outside `[0, 1]` (or NaN).
    InvalidProbability(f64),
    /// An operation referenced a node that does not exist or was removed.
    NoSuchNode(NodeId),
    /// Self-loops are rejected: they can never affect s→t connectivity.
    SelfLoop(NodeId),
    /// A query graph requires at least one answer node.
    EmptyAnswerSet,
    /// The graph contains a directed cycle where a DAG is required.
    CycleDetected,
    /// An exact computation exceeded its size budget.
    TooLarge {
        /// Number of uncertain elements (or `usize::MAX` when a branch
        /// budget, rather than an element count, was exhausted).
        elements: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProbability(v) => {
                write!(f, "invalid probability {v}: must be finite and in [0, 1]")
            }
            Error::NoSuchNode(n) => write!(f, "node {n} does not exist or was removed"),
            Error::SelfLoop(n) => write!(f, "self-loop on node {n} rejected"),
            Error::EmptyAnswerSet => write!(f, "query graph requires a non-empty answer set"),
            Error::CycleDetected => write!(f, "graph contains a directed cycle"),
            Error::TooLarge { elements, limit } => write!(
                f,
                "exact computation too large: {elements} uncertain elements (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = Error::InvalidProbability(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = Error::TooLarge {
            elements: 40,
            limit: 28,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("28"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::CycleDetected);
    }
}
