//! Property tests pinning the graph-level reliability machinery against
//! brute-force possible-worlds enumeration.
//!
//! These are the core soundness guarantees of paper §3.1: the reduction
//! rules and the factoring evaluator must preserve exact source–target
//! reliability on *arbitrary* graphs, not just the workflow shapes the
//! paper evaluates on.

use biorank_graph::{exact, reach, reduction, NodeId, Prob, ProbGraph};
use proptest::prelude::*;

/// A compact generator of small random digraphs with probabilities.
/// Keeps the uncertain-element count within `exact::enumerate`'s budget.
fn small_graph() -> impl Strategy<Value = (ProbGraph, NodeId, NodeId)> {
    // nodes: 2..=7, edge list over ordered pairs, probs quantized to
    // multiples of 1/8 so world weights are exactly representable.
    (2usize..=7)
        .prop_flat_map(|n| {
            let probs = proptest::collection::vec(0u8..=8, n);
            let edges = proptest::collection::vec(((0usize..n), (0usize..n), 1u8..=8), 0..=12);
            (Just(n), probs, edges)
        })
        .prop_map(|(n, probs, edges)| {
            let mut g = ProbGraph::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    let p = if i == 0 {
                        Prob::ONE // source certain, like the query node
                    } else {
                        Prob::new(f64::from(probs[i]) / 8.0).unwrap()
                    };
                    g.add_node(p)
                })
                .collect();
            for (u, v, q) in edges {
                if u != v {
                    let _ = g.add_edge(ids[u], ids[v], Prob::new(f64::from(q) / 8.0).unwrap());
                }
            }
            (g, ids[0], ids[n - 1])
        })
        .prop_filter("stay within enumeration budget", |(g, _, _)| {
            let uncertain = g
                .nodes()
                .filter(|&x| {
                    let p = g.node_p(x).get();
                    p > 0.0 && p < 1.0
                })
                .count()
                + g.edges()
                    .filter(|&e| {
                        let q = g.edge_q(e).get();
                        q > 0.0 && q < 1.0
                    })
                    .count();
            uncertain <= 18
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Factoring (reductions + conditioning) equals world enumeration.
    #[test]
    fn factoring_matches_enumeration((g, s, t) in small_graph()) {
        let truth = exact::enumerate(&g, s, t).unwrap();
        let fast = exact::factoring(&g, s, t, None).unwrap();
        prop_assert!((truth - fast).abs() < 1e-9,
            "enumerate {truth} vs factoring {fast}");
    }

    /// The reduction rules preserve reliability for the protected target.
    #[test]
    fn reductions_preserve_reliability((g, s, t) in small_graph()) {
        let before = exact::enumerate(&g, s, t).unwrap();
        let mut reduced = g.clone();
        reach::prune_to_relevant(&mut reduced, s, &[t]);
        if reduced.node_alive(t) {
            reduction::reduce(&mut reduced, s, &[t]);
            let after = exact::enumerate(&reduced, s, t).unwrap();
            prop_assert!((before - after).abs() < 1e-9,
                "before {before} vs after reduction {after}");
        } else {
            prop_assert!(before.abs() < 1e-12);
        }
    }

    /// Pruning away irrelevant nodes never changes reliability.
    #[test]
    fn pruning_preserves_reliability((g, s, t) in small_graph()) {
        let before = exact::enumerate(&g, s, t).unwrap();
        let mut pruned = g.clone();
        reach::prune_to_relevant(&mut pruned, s, &[t]);
        if pruned.node_alive(t) {
            let after = exact::enumerate(&pruned, s, t).unwrap();
            prop_assert!((before - after).abs() < 1e-12);
        } else {
            prop_assert!(before.abs() < 1e-12);
        }
    }

    /// Reification (node splits) preserves reliability.
    #[test]
    fn reify_preserves_reliability((g, s, t) in small_graph()) {
        let before = exact::enumerate(&g, s, t).unwrap();
        let re = exact::reify(&g, &[s, t]);
        let after = exact::enumerate(&re.graph, re.input(s), re.output(t)).unwrap();
        prop_assert!((before - after).abs() < 1e-9,
            "direct {before} vs reified {after}");
    }

    /// Reliability is monotone in edge probabilities: raising any q can
    /// only increase r(t).
    #[test]
    fn reliability_monotone_in_edge_probs((g, s, t) in small_graph()) {
        let before = exact::enumerate(&g, s, t).unwrap();
        let mut boosted = g.clone();
        boosted.map_edge_probs(|_, q| Prob::clamped(q.get() + 0.125));
        let after = exact::enumerate(&boosted, s, t).unwrap();
        prop_assert!(after >= before - 1e-12, "boost lowered r: {before} → {after}");
    }

    /// compact() preserves reliability (ids change, semantics don't).
    #[test]
    fn compact_preserves_reliability((g, s, t) in small_graph()) {
        let before = exact::enumerate(&g, s, t).unwrap();
        let (dense, remap) = g.compact();
        let s2 = remap[s.index()].unwrap();
        let t2 = remap[t.index()].unwrap();
        let after = exact::enumerate(&dense, s2, t2).unwrap();
        prop_assert!((before - after).abs() < 1e-12);
    }
}
