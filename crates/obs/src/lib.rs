//! # biorank-obs
//!
//! Hand-rolled, dependency-free observability primitives for the
//! serving layer — the same `vendor/`-era stand-in philosophy as the
//! rest of the workspace: the container is offline, the surface we
//! need is small, and ~500 lines beat a crate dependency.
//!
//! Three pieces:
//!
//! * [`MetricsRegistry`] — a named registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log₂-scale [`Histogram`]s.
//!   Registration takes a write lock once per name; the returned
//!   `Arc` handles are lock-free on the hot path (callers cache them
//!   at construction, or pay one read-lock map probe per request —
//!   never per trial). [`MetricsRegistry::snapshot`] materializes a
//!   point-in-time [`MetricsSnapshot`] without stopping writers.
//! * [`TraceRecorder`] / [`TraceSpan`] — per-request stage timing: a
//!   plain `Vec` of `(stage, nanos)` pairs a request thread fills in
//!   as it moves through the serve path, echoed to the client when it
//!   opted in with `trace: true`.
//! * [`SlowQueryLog`] — a bounded in-memory ring buffer of the most
//!   recent queries that exceeded a latency threshold, for the
//!   `metrics` admin op to expose.
//!
//! Counter and histogram updates are relaxed atomics: totals are
//! exact once writers quiesce (every test's situation after its
//! responses arrive), and transiently-torn cross-metric reads are an
//! accepted property of snapshot-on-read observability.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins atomic gauge (resident counts, budgets).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count of a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `i ≥ 1` holds values in `[2^(i−1), 2^i)` — 64 powers cover
/// the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂-scale histogram for latencies (nanoseconds)
/// and trial counts.
///
/// Recording is one `leading_zeros` plus three relaxed atomic adds —
/// no locks, no allocation — so it is safe on the per-request hot
/// path. Bucket boundaries are powers of two: the resolution matches
/// how latency distributions are actually read (is it 1 µs or 1 ms?),
/// and bucket selection is branch-free.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` lands in: 0 for 0, otherwise
    /// `⌊log₂ value⌋ + 1`.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` of bucket `i` (bucket 0
    /// is the degenerate `[0, 1)`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), 1u64 << i),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy, keeping only occupied buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for i in 0..HISTOGRAM_BUCKETS {
            let n = self.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                let (lo, hi) = Self::bucket_range(i);
                buckets.push(HistogramBucket { lo, hi, count: n });
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    /// Resets every bucket and the totals to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One occupied bucket of a [`HistogramSnapshot`]: `count`
/// observations fell in `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Exclusive upper bound of the bucket.
    pub hi: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Occupied buckets in ascending value order.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named registry of counters, gauges, and histograms.
///
/// One instance per scope: each `QueryEngine` owns one (per-world
/// metrics die with the engine at swap, exactly like its caches), and
/// the service owns one for cross-world concerns (connections,
/// tenancy events, wire timings).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Register-on-first-use lookup: a read-lock probe on the hot path,
/// upgrading to a write lock only the first time a name appears.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics registry").get(name) {
        return Arc::clone(found);
    }
    let mut map = map.write().expect("metrics registry");
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric (names stay registered, so
    /// cached handles keep working).
    pub fn reset(&self) {
        for c in self.counters.read().expect("metrics registry").values() {
            c.reset();
        }
        for g in self.gauges.read().expect("metrics registry").values() {
            g.set(0);
        }
        for h in self.histograms.read().expect("metrics registry").values() {
            h.reset();
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter total for `name` (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram snapshot for `name` (empty when never
    /// registered).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }
}

/// One named stage of a request's execution with its wall-clock cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage name (`cache`, `graph`, `estimate`, `certify`, `insert`,
    /// `serialize`, ...).
    pub stage: String,
    /// Wall-clock nanoseconds the stage took.
    pub nanos: u64,
}

/// Collects [`TraceSpan`]s for one request.
///
/// Plain single-threaded state — a request is executed by one worker,
/// so there is nothing to synchronize. Construction is free when
/// disabled: spans pushed into a disabled recorder are dropped, so
/// call sites never branch.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    enabled: bool,
    spans: Vec<TraceSpan>,
}

impl TraceRecorder {
    /// A recorder; `enabled: false` drops every span pushed into it.
    pub fn new(enabled: bool) -> Self {
        TraceRecorder {
            enabled,
            spans: Vec::new(),
        }
    }

    /// Whether spans are being kept.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a measured span.
    pub fn span(&mut self, stage: &str, nanos: u64) {
        if self.enabled {
            self.spans.push(TraceSpan {
                stage: stage.to_string(),
                nanos,
            });
        }
    }

    /// Times `f` and records it as `stage`, returning both `f`'s
    /// result and the measured nanoseconds (so callers can feed the
    /// same measurement into a histogram whether or not the recorder
    /// keeps the span).
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> (T, u64) {
        let start = Instant::now();
        let out = f();
        let nanos = start.elapsed().as_nanos() as u64;
        self.span(stage, nanos);
        (out, nanos)
    }

    /// The collected spans, consuming the recorder.
    pub fn into_spans(self) -> Vec<TraceSpan> {
        self.spans
    }
}

/// One entry of the [`SlowQueryLog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// World the query ran against.
    pub world: String,
    /// The query's `value` field (e.g. the protein name).
    pub value: String,
    /// Ranking method (wire spelling).
    pub method: String,
    /// Wall-clock execution time in microseconds.
    pub micros: u64,
    /// Whether the ranking came from the result cache.
    pub cached: bool,
}

/// A bounded ring buffer of the most recent slow queries.
///
/// Push is a short mutex hold on an already-slow path (the query it
/// records just blew the latency threshold), so contention is not a
/// concern by construction.
#[derive(Debug)]
pub struct SlowQueryLog {
    entries: Mutex<VecDeque<SlowQueryEntry>>,
    capacity: usize,
}

/// Default [`SlowQueryLog`] capacity.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 32;

impl Default for SlowQueryLog {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_LOG_CAPACITY)
    }
}

impl SlowQueryLog {
    /// An empty log keeping at most `capacity` entries (the oldest
    /// falls out first).
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Appends an entry, evicting the oldest past capacity.
    pub fn push(&self, entry: SlowQueryEntry) {
        let mut entries = self.entries.lock().expect("slow query log");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The resident entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.entries
            .lock()
            .expect("slow query log")
            .iter()
            .cloned()
            .collect()
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.entries.lock().expect("slow query log").clear();
    }
}

// The registry crosses worker threads by design; prove it at compile
// time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<SlowQueryLog>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // 0 is its own bucket; every other value lands in
        // [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_index(v));
            assert!(lo <= v, "{v} below its bucket [{lo}, {hi})");
            // Bucket 64's upper bound saturates at u64::MAX, which is
            // also a member — treat the top bucket as closed.
            assert!(v < hi || (hi == u64::MAX && v == u64::MAX));
        }
    }

    #[test]
    fn histogram_snapshot_keeps_occupied_buckets_only() {
        let h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert!((s.mean() - 251.5).abs() < 1e-9);
        assert_eq!(
            s.buckets,
            vec![
                HistogramBucket {
                    lo: 0,
                    hi: 1,
                    count: 1
                },
                HistogramBucket {
                    lo: 2,
                    hi: 4,
                    count: 2
                },
                HistogramBucket {
                    lo: 512,
                    hi: 1024,
                    count: 1
                },
            ]
        );
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn registry_interns_names_and_snapshots() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("queries");
        let b = reg.counter("queries");
        assert!(Arc::ptr_eq(&a, &b), "one counter per name");
        a.inc();
        b.inc();
        reg.gauge("resident").set(3);
        reg.histogram("latency").record(100);
        let s = reg.snapshot();
        assert_eq!(s.counter("queries"), 2);
        assert_eq!(s.counter("never-registered"), 0);
        assert_eq!(s.gauges.get("resident"), Some(&3));
        assert_eq!(s.histogram("latency").count, 1);
        assert_eq!(s.histogram("absent").count, 0);
        reg.reset();
        let s = reg.snapshot();
        assert_eq!(s.counter("queries"), 0);
        assert_eq!(s.histogram("latency").count, 0);
        // Cached handles survive a reset.
        a.inc();
        assert_eq!(reg.snapshot().counter("queries"), 1);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("hits");
                    let h = reg.histogram("lat");
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        let s = reg.snapshot();
        assert_eq!(s.counter("hits"), 8000);
        let h = s.histogram("lat");
        assert_eq!(h.count, 8000);
        assert_eq!(h.sum, 8 * (999 * 1000 / 2));
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 8000);
    }

    #[test]
    fn trace_recorder_respects_enabled_flag() {
        let mut on = TraceRecorder::new(true);
        let (v, nanos) = on.time("stage", || 41 + 1);
        assert_eq!(v, 42);
        let spans = on.into_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "stage");
        assert_eq!(spans[0].nanos, nanos);

        let mut off = TraceRecorder::new(false);
        let (v, _) = off.time("stage", || 7);
        assert_eq!(v, 7);
        off.span("manual", 5);
        assert!(off.into_spans().is_empty());
    }

    #[test]
    fn slow_query_log_is_a_ring() {
        let log = SlowQueryLog::new(2);
        let entry = |n: u64| SlowQueryEntry {
            world: "default".into(),
            value: format!("P{n}"),
            method: "mc".into(),
            micros: n,
            cached: false,
        };
        log.push(entry(1));
        log.push(entry(2));
        log.push(entry(3));
        let got = log.entries();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].micros, 2, "oldest entry evicted first");
        assert_eq!(got[1].micros, 3);
        log.clear();
        assert!(log.entries().is_empty());
    }
}
