//! The diffusion semantics (paper §3.3, Algorithm 3.3).
//!
//! Diffusion keeps propagation's locality but accumulates evidence
//! *additively* and only lets relevance "flow" downhill: relevance moves
//! from `x` to `y` along `(x,y)` only to the extent that `r(x)` exceeds
//! the incoming level `r̄(y)`:
//!
//! ```text
//! r̄(y) = Σ_{(x,y)∈E} max((r(x) − r̄(y)) · q(x,y), 0)
//! r(y)  = r̄(y) · p(y),      r(s) = 1
//! ```
//!
//! `r̄(y)` is defined implicitly; the paper solves it with an inner
//! iterative loop (`solve` in Algorithm 3.3, O(nm) total). We solve it
//! exactly by bisection: `f(v) = Σ max((r(x)−v)·q, 0) − v` is continuous
//! and strictly decreasing with `f(0) ≥ 0`, so it has a unique root in
//! `[0, Σ r(x)·q]`. An ablation bench compares bisection against the
//! paper's fixed-point inner loop.
//!
//! Diffusion "tends to favor nodes that have fewer stronger paths over
//! nodes with more but weaker paths" and is strongly path-length
//! dependent — exactly the behaviour scenario 2 exposes.

use biorank_graph::{topo, QueryGraph};

use crate::{Error, Ranker, Scores};

/// How the implicit `r̄(y)` equation is solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerSolver {
    /// Exact bisection on the monotone residual (default).
    Bisection,
    /// The paper's fixed-point iteration `v ← Σ max((r(x)−v)q, 0)`,
    /// damped by ½ to guarantee convergence, stopped at `1e-12` or 200
    /// rounds.
    FixedPoint,
}

/// Algorithm 3.3: relevance diffusion.
#[derive(Clone, Copy, Debug)]
pub struct Diffusion {
    /// Outer iterations. `None` = automatic (longest path on DAGs,
    /// [`Diffusion::DEFAULT_CYCLIC_ITERATIONS`] otherwise).
    pub iterations: Option<usize>,
    /// Inner solver choice.
    pub solver: InnerSolver,
}

impl Diffusion {
    /// Outer iterations used on cyclic graphs in automatic mode.
    pub const DEFAULT_CYCLIC_ITERATIONS: usize = 100;

    /// Automatic iteration count with exact bisection (recommended).
    pub fn auto() -> Self {
        Diffusion {
            iterations: None,
            solver: InnerSolver::Bisection,
        }
    }

    /// Fixed outer iteration count.
    pub fn with_iterations(n: usize) -> Self {
        Diffusion {
            iterations: Some(n),
            solver: InnerSolver::Bisection,
        }
    }

    /// Uses the paper's inner fixed-point loop instead of bisection.
    #[must_use]
    pub fn with_solver(mut self, solver: InnerSolver) -> Self {
        self.solver = solver;
        self
    }

    fn resolve_iterations(&self, q: &QueryGraph) -> usize {
        match self.iterations {
            Some(n) => n,
            None => topo::longest_path_from(q.graph(), q.source())
                .map(|l| l.max(1))
                .unwrap_or(Self::DEFAULT_CYCLIC_ITERATIONS),
        }
    }
}

impl Default for Diffusion {
    fn default() -> Self {
        Self::auto()
    }
}

/// Solves `v = Σᵢ max((rᵢ − v)·qᵢ, 0)` for `v ≥ 0`.
///
/// `inputs` are the `(r(x), q(x,y))` pairs of the incoming edges.
fn solve_rbar(inputs: &[(f64, f64)], solver: InnerSolver) -> f64 {
    let hi0: f64 = inputs.iter().map(|&(r, q)| (r * q).max(0.0)).sum();
    if hi0 <= 0.0 {
        return 0.0;
    }
    let f = |v: f64| -> f64 {
        inputs
            .iter()
            .map(|&(r, q)| ((r - v) * q).max(0.0))
            .sum::<f64>()
            - v
    };
    match solver {
        InnerSolver::Bisection => {
            let (mut lo, mut hi) = (0.0f64, hi0);
            // f(0) = hi0 > 0, f(hi0) ≤ 0 (each term ≤ r·q yet −v = −hi0).
            for _ in 0..100 {
                let mid = 0.5 * (lo + hi);
                if f(mid) > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
                if hi - lo < 1e-14 {
                    break;
                }
            }
            0.5 * (lo + hi)
        }
        InnerSolver::FixedPoint => {
            let mut v = 0.0f64;
            for _ in 0..200 {
                let next: f64 = inputs.iter().map(|&(r, q)| ((r - v) * q).max(0.0)).sum();
                // Damping keeps the iteration from oscillating when the
                // sum of edge weights exceeds 1.
                let damped = 0.5 * (v + next);
                if (damped - v).abs() < 1e-12 {
                    v = damped;
                    break;
                }
                v = damped;
            }
            v
        }
    }
}

impl Ranker for Diffusion {
    fn name(&self) -> &'static str {
        "Diff"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        let g = q.graph();
        let s = q.source();
        let bound = g.node_bound();
        let iterations = self.resolve_iterations(q);

        let mut r = vec![0.0f64; bound];
        r[s.index()] = 1.0;
        let mut next = r.clone();
        let mut inputs: Vec<(f64, f64)> = Vec::new();
        for _ in 0..iterations {
            for y in g.nodes() {
                if y == s {
                    continue;
                }
                inputs.clear();
                for e in g.in_edges(y) {
                    let x = g.edge_src(e);
                    inputs.push((r[x.index()], g.edge_q(e).get()));
                }
                let rbar = solve_rbar(&inputs, self.solver);
                next[y.index()] = rbar * g.node_p(y).get();
            }
            std::mem::swap(&mut r, &mut next);
        }
        Ok(Scores::from_vec(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{NodeId, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// Fig. 4a graph.
    fn fig4a() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let u = g.add_node(p(1.0));
        g.add_edge(s, m, p(0.5)).unwrap();
        g.add_edge(m, a, p(1.0)).unwrap();
        g.add_edge(m, b, p(1.0)).unwrap();
        g.add_edge(a, u, p(1.0)).unwrap();
        g.add_edge(b, u, p(1.0)).unwrap();
        (QueryGraph::new(g, s, vec![u]).unwrap(), u)
    }

    #[test]
    fn fig4a_diffusion_is_0_11() {
        // Paper Fig. 4a: diffusion r = 0.11. Analytically:
        // r̄(m) solves r̄ = (1−r̄)·0.5 ⇒ 1/3; r(m) = 1/3.
        // r̄(a) = r̄(b) solves r̄ = (1/3 − r̄)·1 ⇒ 1/6.
        // r̄(u) solves r̄ = 2·(1/6 − r̄) ⇒ 1/9 ≈ 0.111.
        let (q, u) = fig4a();
        let r = Diffusion::auto().score(&q).unwrap().get(u);
        assert!((r - 1.0 / 9.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn single_edge_splits_relevance() {
        // s →1.0 t: r̄(t) solves v = (1 − v)·1 ⇒ 0.5.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, t, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let r = Diffusion::auto().score(&q).unwrap().get(t);
        assert!((r - 0.5).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn no_incoming_flow_is_zero() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let island = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![t, island]).unwrap();
        let scores = Diffusion::auto().score(&q).unwrap();
        assert_eq!(scores.get(island), 0.0);
    }

    #[test]
    fn fixed_point_matches_bisection() {
        let (q, u) = fig4a();
        let bis = Diffusion::auto().score(&q).unwrap().get(u);
        let fp = Diffusion::auto()
            .with_solver(InnerSolver::FixedPoint)
            .score(&q)
            .unwrap()
            .get(u);
        assert!(
            (bis - fp).abs() < 1e-6,
            "bisection {bis} vs fixed point {fp}"
        );
    }

    #[test]
    fn favors_one_strong_path_over_many_weak() {
        // Target A: one strong direct path (q=0.9).
        // Target B: three weak 1-hop paths (q=0.3 each).
        // Propagation would score B ≈ 1−0.7³ = 0.657 < 0.9, diffusion
        // even more decisively: A gets 0.45, B gets r̄ = 3(0.3)(1−...)
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.9)).unwrap();
        for _ in 0..3 {
            let m = g.add_node(p(1.0));
            g.add_edge(s, m, p(0.3)).unwrap();
            g.add_edge(m, b, p(0.3)).unwrap();
        }
        let q = QueryGraph::new(g, s, vec![a, b]).unwrap();
        let scores = Diffusion::auto().score(&q).unwrap();
        assert!(
            scores.get(a) > scores.get(b),
            "diffusion must favor the strong path: a={} b={}",
            scores.get(a),
            scores.get(b)
        );
    }

    #[test]
    fn node_probability_scales_result() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(0.4));
        g.add_edge(s, t, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let r = Diffusion::auto().score(&q).unwrap().get(t);
        assert!((r - 0.5 * 0.4).abs() < 1e-9);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, a, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![b]).unwrap();
        let r = Diffusion::auto().score(&q).unwrap();
        assert!(r.get(b) > 0.0 && r.get(b) <= 1.0);
    }

    #[test]
    fn solve_rbar_empty_and_zero_inputs() {
        assert_eq!(solve_rbar(&[], InnerSolver::Bisection), 0.0);
        assert_eq!(solve_rbar(&[(0.0, 0.5)], InnerSolver::Bisection), 0.0);
        assert_eq!(solve_rbar(&[(0.5, 0.0)], InnerSolver::Bisection), 0.0);
    }

    #[test]
    fn solve_rbar_is_a_root() {
        let inputs = [(0.8, 0.7), (0.3, 0.9), (0.6, 0.2)];
        for solver in [InnerSolver::Bisection, InnerSolver::FixedPoint] {
            let v = solve_rbar(&inputs, solver);
            let back: f64 = inputs.iter().map(|&(r, q)| ((r - v) * q).max(0.0)).sum();
            assert!((back - v).abs() < 1e-6, "{solver:?}: v={v}, f(v)+v={back}");
        }
    }
}
